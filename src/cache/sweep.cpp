#include "cache/sweep.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace tdt::cache {

void merge_into(LevelStats& into, const LevelStats& from) {
  into.read_hits += from.read_hits;
  into.read_misses += from.read_misses;
  into.write_hits += from.write_hits;
  into.write_misses += from.write_misses;
  into.compulsory += from.compulsory;
  into.capacity += from.capacity;
  into.conflict += from.conflict;
  into.writebacks += from.writebacks;
  into.evictions += from.evictions;
  into.prefetches += from.prefetches;
  into.prefetch_hits += from.prefetch_hits;
}

ReplacementPolicy parse_replacement_policy(std::string_view text) {
  if (text == "lru") return ReplacementPolicy::Lru;
  if (text == "fifo") return ReplacementPolicy::Fifo;
  if (text == "random") return ReplacementPolicy::Random;
  if (text == "rr") return ReplacementPolicy::RoundRobin;
  throw_config_error("unknown replacement policy '" + std::string(text) +
                     "' (expected lru|fifo|random|rr)");
}

PrefetchPolicy parse_prefetch_policy(std::string_view text) {
  if (text == "none") return PrefetchPolicy::None;
  if (text == "always") return PrefetchPolicy::Always;
  if (text == "miss") return PrefetchPolicy::Miss;
  if (text == "tagged") return PrefetchPolicy::Tagged;
  throw_config_error("unknown prefetch policy '" + std::string(text) +
                     "' (expected none|always|miss|tagged)");
}

namespace {

// "8k" -> 8192, "2M" -> 2097152, "64" -> 64.
std::uint64_t parse_size_value(std::string_view text, std::string_view key) {
  std::uint64_t scale = 1;
  if (!text.empty()) {
    const char last = text.back();
    if (last == 'k' || last == 'K') scale = 1024;
    if (last == 'm' || last == 'M') scale = 1024 * 1024;
    if (scale != 1) text.remove_suffix(1);
  }
  const auto value = parse_uint(text);
  if (!value.has_value()) {
    throw_config_error("sweep key '" + std::string(key) +
                       "' expects an unsigned size, got '" + std::string(text) +
                       "'");
  }
  return *value * scale;
}

void apply_override(CacheConfig& config, std::string_view key,
                    std::string_view value) {
  if (key == "size") {
    config.size = parse_size_value(value, key);
  } else if (key == "block") {
    config.block_size = parse_size_value(value, key);
  } else if (key == "assoc") {
    const auto v = parse_uint(value);
    if (!v.has_value()) {
      throw_config_error("sweep key 'assoc' expects an unsigned value, got '" +
                         std::string(value) + "'");
    }
    config.assoc = static_cast<std::uint32_t>(*v);
  } else if (key == "repl" || key == "replacement") {
    config.replacement = parse_replacement_policy(value);
  } else if (key == "prefetch") {
    config.prefetch = parse_prefetch_policy(value);
  } else {
    throw_config_error("unknown sweep key '" + std::string(key) +
                       "' (expected size|block|assoc|repl|prefetch)");
  }
}

}  // namespace

std::string SweepPoint::label() const {
  return levels.empty() ? std::string("<empty>") : levels.front().describe();
}

std::vector<SweepPoint> parse_sweep_spec(
    std::string_view spec, const CacheConfig& base,
    const std::vector<CacheConfig>& extra_levels,
    std::vector<std::string>* warnings) {
  if (trim(spec).empty()) {
    throw_config_error("sweep spec is empty");
  }
  std::vector<SweepPoint> points;
  std::size_t point_index = 0;
  for (std::string_view point_spec : split(spec, ';')) {
    CacheConfig config = base;
    point_spec = trim(point_spec);
    if (!point_spec.empty()) {
      for (std::string_view override_spec : split(point_spec, ',')) {
        override_spec = trim(override_spec);
        if (override_spec.empty()) continue;
        const std::size_t eq = override_spec.find('=');
        if (eq == std::string_view::npos) {
          throw_config_error("sweep override '" + std::string(override_spec) +
                             "' is not key=value");
        }
        apply_override(config, override_spec.substr(0, eq),
                       override_spec.substr(eq + 1));
      }
    }
    config.validate();
    SweepPoint point;
    point.levels.push_back(std::move(config));
    point.levels.insert(point.levels.end(), extra_levels.begin(),
                        extra_levels.end());
    // Two spellings can resolve to the same configuration ("assoc=1" vs
    // "size=32k,assoc=1" under the default base); keep the first.
    bool duplicate = false;
    for (const SweepPoint& existing : points) {
      if (existing.levels == point.levels) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      if (warnings != nullptr) {
        warnings->push_back("duplicate sweep point " +
                            std::to_string(point_index) + " ('" +
                            point.label() + "') dropped");
      }
    } else {
      points.push_back(std::move(point));
    }
    ++point_index;
  }
  if (points.empty()) {
    throw_config_error("sweep spec is empty");
  }
  return points;
}

ParallelSweep::ParallelSweep(std::vector<SweepPoint> points,
                             SimOptions base_options, PageMapSpec page_map)
    : points_(std::move(points)) {
  for (const SweepPoint& point : points_) {
    SimOptions options = base_options;
    if (page_map.policy != PagePolicy::Identity) {
      mappers_.emplace_back(page_map.policy, page_map.page_size,
                            page_map.frames, page_map.seed);
      options.page_mapper = &mappers_.back();
    }
    hierarchies_.emplace_back(point.levels);
    sims_.emplace_back(hierarchies_.back(), options);
  }
}

std::vector<trace::TraceSink*> ParallelSweep::sinks() {
  std::vector<trace::TraceSink*> out;
  out.reserve(sims_.size());
  for (TraceCacheSim& sim : sims_) out.push_back(&sim);
  return out;
}

LevelStats ParallelSweep::merged_l1() const {
  LevelStats merged;
  for (const CacheHierarchy& h : hierarchies_) {
    merge_into(merged, h.l1().stats());
  }
  return merged;
}

std::string ParallelSweep::report() const {
  std::string out;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    out += "=== sweep point " + std::to_string(i) + ": " + points_[i].label() +
           " ===\n";
    out += hierarchies_[i].report();
  }
  TextTable table({"point", "config", "accesses", "misses", "miss ratio"});
  table.set_align(1, Align::Left);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const LevelStats& s = hierarchies_[i].l1().stats();
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.4f", s.miss_ratio());
    table.add_row({std::to_string(i), points_[i].label(),
                   std::to_string(s.accesses()), std::to_string(s.misses()),
                   ratio});
  }
  out += "sweep summary:\n" + table.render();
  const LevelStats merged = merged_l1();
  out += "merged L1 totals: " + std::to_string(merged.accesses()) +
         " accesses, " + std::to_string(merged.misses()) + " misses\n";
  return out;
}

}  // namespace tdt::cache
