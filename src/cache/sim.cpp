#include "cache/sim.hpp"

namespace tdt::cache {

using trace::AccessKind;

TraceCacheSim::TraceCacheSim(CacheHierarchy& hierarchy, SimOptions options)
    : hierarchy_(&hierarchy), options_(options) {}

void TraceCacheSim::add_observer(AccessObserver* observer) {
  observers_.push_back(observer);
}

void TraceCacheSim::on_record(const trace::TraceRecord& rec) { step(rec); }

void TraceCacheSim::push_batch(std::span<const trace::TraceRecord> batch) {
  // One virtual call per batch; the per-record work stays non-virtual.
  for (const trace::TraceRecord& rec : batch) step(rec);
}

void TraceCacheSim::step(const trace::TraceRecord& rec) {
  if (rec.kind == AccessKind::Instr && options_.ignore_instr) return;
  CacheLevel& l1 = hierarchy_->l1();

  const std::uint64_t address = options_.page_mapper != nullptr
                                    ? options_.page_mapper->translate(rec.address)
                                    : rec.address;
  const bool is_write =
      rec.kind == AccessKind::Store || rec.kind == AccessKind::Modify;
  if (rec.kind == AccessKind::Modify && options_.modify_is_read_write) {
    // DineroIV-style: the read part first (classified), then the write.
    l1.access_range(address, rec.size, /*is_write=*/false);
  }
  const AccessOutcome outcome = l1.access_range(address, rec.size, is_write);
  ++simulated_;
  for (AccessObserver* obs : observers_) obs->on_access(rec, outcome);
}

void TraceCacheSim::on_end() {
  for (AccessObserver* obs : observers_) obs->on_done();
}

void TraceCacheSim::simulate(std::span<const trace::TraceRecord> records) {
  push_batch(records);
  on_end();
}

}  // namespace tdt::cache
