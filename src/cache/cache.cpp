#include "cache/cache.hpp"

#include "util/error.hpp"

namespace tdt::cache {

std::string_view to_string(MissClass c) noexcept {
  switch (c) {
    case MissClass::None: return "hit";
    case MissClass::Compulsory: return "compulsory";
    case MissClass::Capacity: return "capacity";
    case MissClass::Conflict: return "conflict";
  }
  return "?";
}

CacheLevel::CacheLevel(CacheConfig config, CacheLevel* next)
    : config_(std::move(config)), next_(next), rng_(config_.random_seed) {
  config_.validate();
  lines_.assign(config_.num_sets() * config_.effective_assoc(), Line{});
  rr_cursor_.assign(config_.num_sets(), 0);
  set_stats_.assign(config_.num_sets(), SetStats{});
}

void CacheLevel::reset() {
  for (Line& l : lines_) l = Line{};
  rr_cursor_.assign(config_.num_sets(), 0);
  set_stats_.assign(config_.num_sets(), SetStats{});
  stats_ = LevelStats{};
  clock_ = 0;
  ever_seen_.clear();
  shadow_lru_.clear();
  shadow_index_.clear();
  rng_ = Xoshiro256(config_.random_seed);
}

void CacheLevel::flush() {
  for (Line& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
  rr_cursor_.assign(config_.num_sets(), 0);
}

CacheLevel::Line* CacheLevel::find_line(std::uint64_t set,
                                        std::uint64_t block) {
  const std::uint32_t ways = config_.effective_assoc();
  Line* base = &lines_[set * ways];
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (base[w].valid && base[w].block == block) return &base[w];
  }
  return nullptr;
}

std::uint32_t CacheLevel::pick_victim(std::uint64_t set) {
  const std::uint32_t ways = config_.effective_assoc();
  Line* base = &lines_[set * ways];
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (!base[w].valid) return w;
  }
  switch (config_.replacement) {
    case ReplacementPolicy::Lru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < ways; ++w) {
        if (base[w].last_use < base[victim].last_use) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::Fifo: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < ways; ++w) {
        if (base[w].fill_time < base[victim].fill_time) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::Random:
      return static_cast<std::uint32_t>(rng_.next_below(ways));
    case ReplacementPolicy::RoundRobin: {
      const std::uint32_t victim = rr_cursor_[set];
      rr_cursor_[set] = (victim + 1) % ways;
      return victim;
    }
  }
  return 0;
}

void CacheLevel::touch_shadow(std::uint64_t block) {
  // Fully associative LRU of the same block capacity; used to separate
  // capacity misses (miss here too) from conflict misses (hit here).
  if (auto it = shadow_index_.find(block); it != shadow_index_.end()) {
    shadow_lru_.erase(it->second);
  } else if (shadow_lru_.size() >= config_.num_blocks()) {
    shadow_index_.erase(shadow_lru_.back());
    shadow_lru_.pop_back();
  }
  shadow_lru_.push_front(block);
  shadow_index_[block] = shadow_lru_.begin();
}

MissClass CacheLevel::classify_miss(std::uint64_t block) {
  if (!ever_seen_.contains(block)) return MissClass::Compulsory;
  if (!shadow_index_.contains(block)) return MissClass::Capacity;
  return MissClass::Conflict;
}

void CacheLevel::prefetch_block(std::uint64_t block) {
  const std::uint64_t set = block % config_.num_sets();
  if (find_line(set, block) != nullptr) return;  // already resident
  ++stats_.prefetches;
  if (next_ != nullptr) {
    next_->access(block * config_.block_size, /*is_write=*/false);
  }
  const std::uint32_t way = pick_victim(set);
  Line& victim = lines_[set * config_.effective_assoc() + way];
  if (victim.valid) {
    ++stats_.evictions;
    if (victim.dirty) {
      ++stats_.writebacks;
      if (next_ != nullptr) {
        next_->access(victim.block * config_.block_size, /*is_write=*/true);
      }
    }
  }
  victim.valid = true;
  victim.block = block;
  victim.dirty = false;
  victim.last_use = clock_;
  victim.fill_time = clock_;
  victim.prefetched = true;
  ever_seen_.insert(block);
}

void CacheLevel::maybe_prefetch(std::uint64_t block, bool demand_hit,
                                bool hit_on_prefetched) {
  switch (config_.prefetch) {
    case PrefetchPolicy::None:
      return;
    case PrefetchPolicy::Always:
      prefetch_block(block + 1);
      return;
    case PrefetchPolicy::Miss:
      if (!demand_hit) prefetch_block(block + 1);
      return;
    case PrefetchPolicy::Tagged:
      // First demand reference to a block: a demand miss, or the first
      // demand hit on a line the prefetcher brought in.
      if (!demand_hit || hit_on_prefetched) prefetch_block(block + 1);
      return;
  }
}

AccessOutcome CacheLevel::access(std::uint64_t address, bool is_write) {
  ++clock_;
  const std::uint64_t block = config_.block_of(address);
  const std::uint64_t set = block % config_.num_sets();

  AccessOutcome out;
  out.set = set;
  out.block = block;

  bool hit_on_prefetched = false;
  Line* line = find_line(set, block);
  if (line != nullptr) {
    out.hit = true;
    if (line->prefetched) {
      hit_on_prefetched = true;
      line->prefetched = false;
      ++stats_.prefetch_hits;
    }
    line->last_use = clock_;
    if (is_write) {
      if (config_.write == WritePolicy::WriteThrough) {
        if (next_ != nullptr) next_->access(address, /*is_write=*/true);
      } else {
        line->dirty = true;
      }
      ++stats_.write_hits;
    } else {
      ++stats_.read_hits;
    }
    ++set_stats_[set].hits;
  } else {
    out.hit = false;
    out.miss_class = classify_miss(block);
    switch (out.miss_class) {
      case MissClass::Compulsory: ++stats_.compulsory; break;
      case MissClass::Capacity: ++stats_.capacity; break;
      case MissClass::Conflict: ++stats_.conflict; break;
      case MissClass::None: break;
    }
    if (is_write) {
      ++stats_.write_misses;
    } else {
      ++stats_.read_misses;
    }
    ++set_stats_[set].misses;

    const bool allocate =
        !is_write || config_.alloc == AllocPolicy::WriteAllocate;
    if (is_write && (config_.write == WritePolicy::WriteThrough || !allocate)) {
      // The write itself goes to the next level.
      if (next_ != nullptr) next_->access(address, /*is_write=*/true);
    }
    if (allocate) {
      // Demand fetch from the next level.
      if (next_ != nullptr) next_->access(address, /*is_write=*/false);
      const std::uint32_t way = pick_victim(set);
      Line& victim = lines_[set * config_.effective_assoc() + way];
      if (victim.valid) {
        out.evicted = true;
        out.evicted_block = victim.block;
        ++stats_.evictions;
        if (victim.dirty) {
          out.writeback = true;
          ++stats_.writebacks;
          if (next_ != nullptr) {
            next_->access(victim.block * config_.block_size,
                          /*is_write=*/true);
          }
        }
      }
      victim.valid = true;
      victim.block = block;
      victim.dirty =
          is_write && config_.write == WritePolicy::WriteBack;
      victim.last_use = clock_;
      victim.fill_time = clock_;
      victim.prefetched = false;
    }
  }

  ever_seen_.insert(block);
  touch_shadow(block);
  maybe_prefetch(block, out.hit, hit_on_prefetched);
  return out;
}

AccessOutcome CacheLevel::access_range(std::uint64_t address,
                                       std::uint64_t size, bool is_write) {
  internal_check(size > 0, "access_range of zero bytes");
  const std::uint64_t first_block = config_.block_of(address);
  const std::uint64_t last_block = config_.block_of(address + size - 1);
  AccessOutcome first = access(address, is_write);
  for (std::uint64_t b = first_block + 1; b <= last_block; ++b) {
    access(b * config_.block_size, is_write);
  }
  return first;
}

bool CacheLevel::contains_block(std::uint64_t block) const {
  const std::uint64_t set = block % config_.num_sets();
  const std::uint32_t ways = config_.effective_assoc();
  const Line* base = &lines_[set * ways];
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (base[w].valid && base[w].block == block) return true;
  }
  return false;
}

std::uint32_t CacheLevel::set_occupancy(std::uint64_t set) const {
  const std::uint32_t ways = config_.effective_assoc();
  const Line* base = &lines_[set * ways];
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (base[w].valid) ++n;
  }
  return n;
}

}  // namespace tdt::cache
