// One cache level: the trace-driven simulator core, modelled on DineroIV.
// Tracks hits/misses globally, per set, and per access kind; classifies
// every miss as compulsory, capacity, or conflict (via an infinite-seen
// set and a same-capacity fully-associative LRU shadow); supports
// write-back/write-through and allocate policies and four replacement
// policies including the PPC440's round-robin.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/config.hpp"
#include "util/rng.hpp"

namespace tdt::cache {

/// Classification of one access.
enum class MissClass : std::uint8_t {
  None,        ///< the access hit
  Compulsory,  ///< first touch of the block, ever
  Capacity,    ///< would miss even in a fully associative cache
  Conflict,    ///< set conflict: fully associative cache would have hit
};

[[nodiscard]] std::string_view to_string(MissClass c) noexcept;

/// What happened on one block access.
struct AccessOutcome {
  bool hit = false;
  MissClass miss_class = MissClass::None;
  std::uint64_t set = 0;
  std::uint64_t block = 0;  ///< block number (address / block_size)
  bool evicted = false;
  std::uint64_t evicted_block = 0;
  bool writeback = false;  ///< eviction was dirty (write-back caches)
};

/// Aggregate counters for one level.
struct LevelStats {
  std::uint64_t read_hits = 0, read_misses = 0;
  std::uint64_t write_hits = 0, write_misses = 0;
  std::uint64_t compulsory = 0, capacity = 0, conflict = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetches = 0;     ///< lines brought in by the prefetcher
  std::uint64_t prefetch_hits = 0;  ///< demand hits on prefetched lines

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return read_hits + write_hits;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return read_misses + write_misses;
  }
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits() + misses();
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(n);
  }

  [[nodiscard]] bool operator==(const LevelStats&) const = default;
};

/// Per-set hit/miss counters (the series plotted in the paper's figures).
struct SetStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] bool operator==(const SetStats&) const = default;
};

/// A single cache level. On misses and dirty evictions the access is
/// propagated to `next` (when non-null), simulating a hierarchy.
class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config, CacheLevel* next = nullptr);

  /// Accesses one block-aligned region containing `address`. `size` must
  /// not cross a block boundary — use access_range for arbitrary spans.
  AccessOutcome access(std::uint64_t address, bool is_write);

  /// Accesses an arbitrary [address, address+size) span, splitting on
  /// block boundaries. Returns the outcome of the first block (the
  /// record's primary access) — follow-on blocks update stats only.
  AccessOutcome access_range(std::uint64_t address, std::uint64_t size,
                             bool is_write);

  /// Invalidates all lines and zeroes statistics.
  void reset();

  /// Invalidates all lines but keeps statistics (cold restart).
  void flush();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LevelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<SetStats>& set_stats() const noexcept {
    return set_stats_;
  }
  [[nodiscard]] CacheLevel* next() const noexcept { return next_; }

  /// True when `block` (block number) currently resides in the cache.
  [[nodiscard]] bool contains_block(std::uint64_t block) const;

  /// Number of valid lines currently in `set`.
  [[nodiscard]] std::uint32_t set_occupancy(std::uint64_t set) const;

 private:
  struct Line {
    std::uint64_t block = 0;
    std::uint64_t last_use = 0;   // LRU
    std::uint64_t fill_time = 0;  // FIFO
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  // filled by the prefetcher, untouched since
  };

  Line* find_line(std::uint64_t set, std::uint64_t block);
  std::uint32_t pick_victim(std::uint64_t set);
  MissClass classify_miss(std::uint64_t block);
  void touch_shadow(std::uint64_t block);

  /// Fills `block` ahead of demand (no stats beyond prefetch counters,
  /// no classification); evictions it causes are real.
  void prefetch_block(std::uint64_t block);
  /// Issues the configured prefetch after a demand access.
  void maybe_prefetch(std::uint64_t block, bool demand_hit,
                      bool hit_on_prefetched);

  CacheConfig config_;
  CacheLevel* next_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::vector<std::uint32_t> rr_cursor_;
  LevelStats stats_;
  std::vector<SetStats> set_stats_;
  std::uint64_t clock_ = 0;
  Xoshiro256 rng_;

  // Miss classification state.
  std::unordered_set<std::uint64_t> ever_seen_;
  std::list<std::uint64_t> shadow_lru_;  // fully associative, same capacity
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      shadow_index_;
};

}  // namespace tdt::cache
