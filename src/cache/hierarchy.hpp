// A multi-level cache hierarchy: owns CacheLevels chained so that misses
// and write-backs at level i propagate to level i+1. A trailing implicit
// "memory" absorbs the last level's traffic.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/cache.hpp"

namespace tdt::cache {

/// Owning container of chained cache levels.
class CacheHierarchy {
 public:
  /// Builds levels from first (closest to the CPU) to last. Must be
  /// non-empty.
  explicit CacheHierarchy(std::vector<CacheConfig> configs);

  /// Convenience single-level hierarchy.
  explicit CacheHierarchy(CacheConfig config);

  [[nodiscard]] std::size_t depth() const noexcept { return levels_.size(); }

  [[nodiscard]] CacheLevel& level(std::size_t i) { return *levels_[i]; }
  [[nodiscard]] const CacheLevel& level(std::size_t i) const {
    return *levels_[i];
  }

  /// First (L1) level — the one trace accesses enter through.
  [[nodiscard]] CacheLevel& l1() { return *levels_.front(); }
  [[nodiscard]] const CacheLevel& l1() const { return *levels_.front(); }

  /// Resets all levels (lines and statistics).
  void reset();

  /// Renders a stats report across all levels.
  [[nodiscard]] std::string report() const;

 private:
  // Levels stored back-to-front internally so construction can pass the
  // already-built next pointer; accessors re-map to front-first order.
  std::vector<std::unique_ptr<CacheLevel>> levels_;
};

}  // namespace tdt::cache
