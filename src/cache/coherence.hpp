// Multi-core private caches with MESI coherence (atomic-bus model). The
// paper's traces carry a thread id per record; this substrate turns that
// into a multicore simulation where layout transformations become
// coherence tools — e.g. padding falsely-shared counters apart, a
// transformation the rule engine expresses directly.
//
// Protocol (snooping, atomic transactions):
//   read  miss: fetch; remote M writes back and drops to S; state = S if
//               any remote copy survives, else E.
//   write hit on M: silent.  on E: upgrade to M.  on S: invalidate remote
//               copies, upgrade to M.
//   write miss: invalidate all remote copies (remote M writes back),
//               fill in M.
// Evictions write back M lines.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/config.hpp"

namespace tdt::cache {

/// MESI line states.
enum class Mesi : std::uint8_t { Invalid, Shared, Exclusive, Modified };

[[nodiscard]] std::string_view to_string(Mesi m) noexcept;

/// Per-core counters.
struct CoreStats {
  std::uint64_t read_hits = 0, read_misses = 0;
  std::uint64_t write_hits = 0, write_misses = 0;
  std::uint64_t upgrades = 0;        ///< S->M transitions (write on Shared)
  std::uint64_t invalidations = 0;   ///< lines this core lost to remote writes
  std::uint64_t coherence_misses = 0;///< misses on remotely-invalidated lines
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return read_hits + write_hits;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return read_misses + write_misses;
  }
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits() + misses();
  }
};

/// What one access did, for observers.
struct CoherenceOutcome {
  bool hit = false;
  std::uint32_t core = 0;
  std::uint64_t block = 0;
  std::uint64_t set = 0;
  std::uint32_t invalidated = 0;  ///< remote copies invalidated by this access
  bool coherence_miss = false;
  Mesi new_state = Mesi::Invalid;
};

/// N identical private caches kept coherent by MESI snooping.
class MesiSystem {
 public:
  /// `config` describes each private cache; `cores` >= 1.
  MesiSystem(CacheConfig config, std::uint32_t cores);

  /// Performs one access by `core`. Accesses spanning blocks are split by
  /// the caller (see MultiCoreSim).
  CoherenceOutcome access(std::uint32_t core, std::uint64_t address,
                          bool is_write);

  [[nodiscard]] std::uint32_t cores() const noexcept {
    return static_cast<std::uint32_t>(per_core_.size());
  }
  [[nodiscard]] const CoreStats& core_stats(std::uint32_t core) const;
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  /// Sum of invalidations across cores.
  [[nodiscard]] std::uint64_t total_invalidations() const noexcept;

  /// Current state of `block` in `core`'s cache (Invalid when absent).
  [[nodiscard]] Mesi state_of(std::uint32_t core, std::uint64_t block) const;

  /// Renders per-core statistics.
  [[nodiscard]] std::string report() const;

 private:
  struct Line {
    std::uint64_t block = 0;
    std::uint64_t last_use = 0;
    Mesi state = Mesi::Invalid;
  };

  struct Core {
    std::vector<Line> lines;
    CoreStats stats;
    // Blocks whose copy was invalidated by a remote writer; a subsequent
    // miss on them is a coherence miss.
    std::unordered_map<std::uint64_t, bool> invalidated_blocks;
  };

  Line* find_line(Core& core, std::uint64_t block);
  Line& victim_line(Core& core, std::uint64_t set);

  CacheConfig config_;
  std::vector<Core> per_core_;
  std::uint64_t clock_ = 0;
};

}  // namespace tdt::cache
