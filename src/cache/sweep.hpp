// Configuration sweeps over a single trace pass. A ParallelSweep owns one
// fully independent simulation per sweep point — its own PageMapper,
// CacheHierarchy and TraceCacheSim — and exposes the simulators as
// TraceSinks, so a trace::ParallelFanOut can drive N cache configurations
// from one streaming read of the trace. Because every point owns all of
// its mutable state and sees the full stream in trace order, per-point
// results are bit-identical to running each configuration sequentially;
// merging (merged_l1, report) happens only after the pass completes, in
// deterministic point order.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/page_map.hpp"
#include "cache/sim.hpp"

namespace tdt::cache {

/// Accumulates `from` into `into` field by field (deterministic merge of
/// per-worker / per-point statistics).
void merge_into(LevelStats& into, const LevelStats& from);

/// Parses "lru" | "fifo" | "random" | "rr". Throws Error{Config}.
[[nodiscard]] ReplacementPolicy parse_replacement_policy(std::string_view text);

/// Parses "none" | "always" | "miss" | "tagged". Throws Error{Config}.
[[nodiscard]] PrefetchPolicy parse_prefetch_policy(std::string_view text);

/// Virtual->physical translation settings shared by all sweep points
/// (each point still gets its *own* PageMapper instance, since mappers
/// are stateful).
struct PageMapSpec {
  PagePolicy policy = PagePolicy::Identity;
  std::uint64_t page_size = 4096;
  std::uint64_t frames = 0;
  std::uint64_t seed = 1;
};

/// One configuration to simulate: a full hierarchy (L1 first).
struct SweepPoint {
  std::vector<CacheConfig> levels;

  /// Human-readable tag, e.g. "L1 32 KiB, 32 B blocks, 1-way, lru".
  [[nodiscard]] std::string label() const;
};

/// Parses a sweep specification into concrete points. The spec is a
/// ';'-separated list of points; each point is a ','-separated list of
/// `key=value` overrides applied to `base`:
///
///   "assoc=1;assoc=2;size=8k,assoc=4;block=64"
///
/// Keys: size (accepts k/K/m/M suffixes), block, assoc, repl|replacement
/// (lru|fifo|random|rr), prefetch (none|always|miss|tagged). An empty
/// point means "base unchanged". `extra_levels` (e.g. a shared L2) is
/// appended to every point. Points that resolve to a configuration
/// already present in the list are dropped (simulating the same hierarchy
/// twice wastes a worker and skews merged totals); each drop appends a
/// message to `warnings` when non-null. Throws Error{Config} on unknown
/// keys or invalid geometry.
[[nodiscard]] std::vector<SweepPoint> parse_sweep_spec(
    std::string_view spec, const CacheConfig& base,
    const std::vector<CacheConfig>& extra_levels = {},
    std::vector<std::string>* warnings = nullptr);

/// Owns the per-point simulation state for a one-pass sweep.
class ParallelSweep {
 public:
  explicit ParallelSweep(std::vector<SweepPoint> points,
                         SimOptions base_options = {},
                         PageMapSpec page_map = {});

  ParallelSweep(const ParallelSweep&) = delete;
  ParallelSweep& operator=(const ParallelSweep&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// One sink per point, in point order — feed these to ParallelFanOut.
  [[nodiscard]] std::vector<trace::TraceSink*> sinks();

  [[nodiscard]] const SweepPoint& point(std::size_t i) const {
    return points_[i];
  }
  [[nodiscard]] CacheHierarchy& hierarchy(std::size_t i) {
    return hierarchies_[i];
  }
  [[nodiscard]] const CacheHierarchy& hierarchy(std::size_t i) const {
    return hierarchies_[i];
  }
  [[nodiscard]] TraceCacheSim& sim(std::size_t i) { return sims_[i]; }

  /// Sum of every point's L1 stats (merged in point order).
  [[nodiscard]] LevelStats merged_l1() const;

  /// Per-point hierarchy reports followed by a cross-point summary table.
  [[nodiscard]] std::string report() const;

 private:
  std::vector<SweepPoint> points_;
  // deques: stable element addresses; sims hold pointers to hierarchies
  // and mappers, and sinks() hands out pointers to sims.
  std::deque<PageMapper> mappers_;
  std::deque<CacheHierarchy> hierarchies_;
  std::deque<TraceCacheSim> sims_;
};

}  // namespace tdt::cache
