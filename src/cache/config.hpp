// Cache geometry and policy configuration, DineroIV-style. Presets cover
// the two machines the paper simulates: a 32 KiB direct-mapped cache with
// 32-byte blocks (Figures 3-7) and the PowerPC 440 L1 (32 KiB, 64-way,
// 32-byte lines, round-robin eviction; Figures 10-11).
#pragma once

#include <cstdint>
#include <string>

namespace tdt::cache {

/// Victim selection within a set.
enum class ReplacementPolicy : std::uint8_t {
  Lru,         ///< least recently used
  Fifo,        ///< oldest fill evicted first
  Random,      ///< uniform random victim (deterministic xoshiro stream)
  RoundRobin,  ///< per-set cursor, PPC440-style
};

/// Write-hit handling.
enum class WritePolicy : std::uint8_t {
  WriteBack,     ///< dirty lines written to the next level on eviction
  WriteThrough,  ///< every write forwarded immediately
};

/// Write-miss handling.
enum class AllocPolicy : std::uint8_t {
  WriteAllocate,    ///< write misses fill the line
  NoWriteAllocate,  ///< write misses bypass the cache
};

/// Sequential (next-block) hardware prefetching, as in DineroIV's
/// -Tfetch options.
enum class PrefetchPolicy : std::uint8_t {
  None,    ///< demand fetches only
  Always,  ///< prefetch block+1 on every access
  Miss,    ///< prefetch block+1 on every demand miss
  Tagged,  ///< prefetch block+1 on the first demand reference to a block
           ///< (demand miss or first hit on a prefetched line)
};

[[nodiscard]] std::string_view to_string(PrefetchPolicy p) noexcept;

[[nodiscard]] std::string_view to_string(ReplacementPolicy p) noexcept;
[[nodiscard]] std::string_view to_string(WritePolicy p) noexcept;
[[nodiscard]] std::string_view to_string(AllocPolicy p) noexcept;

/// Geometry + policies of one cache level.
struct CacheConfig {
  std::string name = "L1";
  std::uint64_t size = 32 * 1024;  ///< total data bytes
  std::uint64_t block_size = 32;   ///< line size in bytes (power of two)
  std::uint32_t assoc = 1;         ///< ways per set; 0 = fully associative
  ReplacementPolicy replacement = ReplacementPolicy::Lru;
  WritePolicy write = WritePolicy::WriteBack;
  AllocPolicy alloc = AllocPolicy::WriteAllocate;
  std::uint64_t random_seed = 1;   ///< seed for ReplacementPolicy::Random
  PrefetchPolicy prefetch = PrefetchPolicy::None;

  /// Throws Error{Config} unless sizes are powers of two and consistent.
  void validate() const;

  [[nodiscard]] std::uint64_t num_blocks() const noexcept {
    return size / block_size;
  }
  [[nodiscard]] std::uint32_t effective_assoc() const noexcept {
    return assoc == 0 ? static_cast<std::uint32_t>(num_blocks()) : assoc;
  }
  [[nodiscard]] std::uint64_t num_sets() const noexcept {
    return num_blocks() / effective_assoc();
  }
  [[nodiscard]] std::uint64_t block_of(std::uint64_t address) const noexcept {
    return address / block_size;
  }
  [[nodiscard]] std::uint64_t set_of(std::uint64_t address) const noexcept {
    return block_of(address) % num_sets();
  }

  /// One-line description, e.g. "L1 32 KiB, 32 B blocks, 1-way, lru".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

/// The direct-mapped cache of Figures 3-7: 32 KiB, 32 B blocks, 1-way.
[[nodiscard]] CacheConfig paper_direct_mapped();

/// The PowerPC 440 L1 of Figures 10-11: 32 KiB, 32 B lines, 64-way,
/// round-robin (paper §IV-A.3: "64 ways per set ... round-robin eviction";
/// 16 sets).
[[nodiscard]] CacheConfig ppc440();

/// A typical modern L1D for the extension studies: 32 KiB, 64 B, 8-way LRU.
[[nodiscard]] CacheConfig modern_l1();

/// A 256 KiB, 64 B, 8-way LRU L2 for hierarchy studies.
[[nodiscard]] CacheConfig modern_l2();

}  // namespace tdt::cache
