#include "cache/coherence.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace tdt::cache {

std::string_view to_string(Mesi m) noexcept {
  switch (m) {
    case Mesi::Invalid: return "I";
    case Mesi::Shared: return "S";
    case Mesi::Exclusive: return "E";
    case Mesi::Modified: return "M";
  }
  return "?";
}

MesiSystem::MesiSystem(CacheConfig config, std::uint32_t cores)
    : config_(std::move(config)) {
  config_.validate();
  internal_check(cores >= 1, "MesiSystem needs at least one core");
  per_core_.resize(cores);
  for (Core& c : per_core_) {
    c.lines.assign(config_.num_sets() * config_.effective_assoc(), Line{});
  }
}

MesiSystem::Line* MesiSystem::find_line(Core& core, std::uint64_t block) {
  const std::uint64_t set = block % config_.num_sets();
  const std::uint32_t ways = config_.effective_assoc();
  Line* base = &core.lines[set * ways];
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (base[w].state != Mesi::Invalid && base[w].block == block) {
      return &base[w];
    }
  }
  return nullptr;
}

MesiSystem::Line& MesiSystem::victim_line(Core& core, std::uint64_t set) {
  const std::uint32_t ways = config_.effective_assoc();
  Line* base = &core.lines[set * ways];
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (base[w].state == Mesi::Invalid) return base[w];
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  return *victim;  // LRU
}

CoherenceOutcome MesiSystem::access(std::uint32_t core_id,
                                    std::uint64_t address, bool is_write) {
  internal_check(core_id < per_core_.size(), "core id out of range");
  ++clock_;
  Core& self = per_core_[core_id];
  const std::uint64_t block = config_.block_of(address);
  const std::uint64_t set = block % config_.num_sets();

  CoherenceOutcome out;
  out.core = core_id;
  out.block = block;
  out.set = set;

  Line* line = find_line(self, block);
  if (line != nullptr) {
    out.hit = true;
    line->last_use = clock_;
    if (!is_write) {
      ++self.stats.read_hits;
      out.new_state = line->state;
      return out;
    }
    ++self.stats.write_hits;
    if (line->state == Mesi::Shared) {
      // Upgrade: invalidate every remote copy.
      ++self.stats.upgrades;
      for (std::uint32_t other = 0; other < per_core_.size(); ++other) {
        if (other == core_id) continue;
        if (Line* remote = find_line(per_core_[other], block)) {
          remote->state = Mesi::Invalid;
          per_core_[other].invalidated_blocks[block] = true;
          ++per_core_[other].stats.invalidations;
          ++out.invalidated;
        }
      }
    }
    line->state = Mesi::Modified;
    out.new_state = Mesi::Modified;
    return out;
  }

  // Miss.
  out.hit = false;
  if (auto it = self.invalidated_blocks.find(block);
      it != self.invalidated_blocks.end()) {
    out.coherence_miss = true;
    ++self.stats.coherence_misses;
    self.invalidated_blocks.erase(it);
  }
  (is_write ? self.stats.write_misses : self.stats.read_misses)++;

  // Snoop the other cores.
  bool any_remote_copy = false;
  for (std::uint32_t other = 0; other < per_core_.size(); ++other) {
    if (other == core_id) continue;
    Line* remote = find_line(per_core_[other], block);
    if (remote == nullptr) continue;
    if (is_write) {
      if (remote->state == Mesi::Modified) {
        ++per_core_[other].stats.writebacks;
      }
      remote->state = Mesi::Invalid;
      per_core_[other].invalidated_blocks[block] = true;
      ++per_core_[other].stats.invalidations;
      ++out.invalidated;
    } else {
      if (remote->state == Mesi::Modified) {
        ++per_core_[other].stats.writebacks;
      }
      remote->state = Mesi::Shared;
      any_remote_copy = true;
    }
  }

  // Fill, evicting the LRU way if needed.
  Line& victim = victim_line(self, set);
  if (victim.state == Mesi::Modified) {
    ++self.stats.writebacks;
  }
  victim.block = block;
  victim.last_use = clock_;
  victim.state = is_write ? Mesi::Modified
                          : (any_remote_copy ? Mesi::Shared : Mesi::Exclusive);
  out.new_state = victim.state;
  return out;
}

const CoreStats& MesiSystem::core_stats(std::uint32_t core) const {
  internal_check(core < per_core_.size(), "core id out of range");
  return per_core_[core].stats;
}

std::uint64_t MesiSystem::total_invalidations() const noexcept {
  std::uint64_t total = 0;
  for (const Core& c : per_core_) total += c.stats.invalidations;
  return total;
}

Mesi MesiSystem::state_of(std::uint32_t core, std::uint64_t block) const {
  internal_check(core < per_core_.size(), "core id out of range");
  // const_cast-free scan.
  const std::uint64_t set = block % config_.num_sets();
  const std::uint32_t ways = config_.effective_assoc();
  const Line* base = &per_core_[core].lines[set * ways];
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (base[w].state != Mesi::Invalid && base[w].block == block) {
      return base[w].state;
    }
  }
  return Mesi::Invalid;
}

std::string MesiSystem::report() const {
  std::string out = "MESI system: " + std::to_string(per_core_.size()) +
                    " cores x (" + config_.describe() + ")\n";
  for (std::uint32_t c = 0; c < per_core_.size(); ++c) {
    const CoreStats& s = per_core_[c].stats;
    out += "  core " + std::to_string(c) + ": " + std::to_string(s.hits()) +
           " hits, " + std::to_string(s.misses()) + " misses (" +
           std::to_string(s.coherence_misses) + " coherence), " +
           std::to_string(s.invalidations) + " invalidations received, " +
           std::to_string(s.upgrades) + " upgrades\n";
  }
  return out;
}

}  // namespace tdt::cache
