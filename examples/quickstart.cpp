// Quickstart: the three-step cycle of the paper's Figure 2 in ~40 lines.
//
//   1. Trace a program (here: the paper's Listing 1 example) with the
//      synthetic tracer — the Gleipnir stand-in.
//   2. Feed the trace to the cache simulator — the modified-DineroIV
//      stand-in — with per-variable statistics attached.
//   3. Print what the paper's tooling reports: the trace itself, overall
//      cache statistics, and per-variable hit/miss accounting.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "tdt/tdt.hpp"

int main() {
  using namespace tdt;

  // Step 1 — trace. The kernel is the paper's Listing 1: global structs,
  // locals, and a call to foo(StrcParam[]).
  layout::TypeTable types;
  trace::TraceContext ctx;
  const tracer::Program program = tracer::make_listing1(types);
  const std::vector<trace::TraceRecord> records =
      tracer::run_program(types, ctx, program);

  std::puts("=== first 12 trace lines (Gleipnir format) ===");
  for (std::size_t i = 0; i < records.size() && i < 12; ++i) {
    std::puts(ctx.format_record(records[i]).c_str());
  }
  std::printf("... (%zu records total)\n\n", records.size());

  // Step 2 — simulate on the paper's 32 KiB direct-mapped cache.
  cache::CacheHierarchy hierarchy(cache::paper_direct_mapped());
  cache::TraceCacheSim sim(hierarchy);
  analysis::VarStatsCollector vars(ctx);
  sim.add_observer(&vars);
  sim.simulate(records);

  // Step 3 — report.
  std::puts("=== cache statistics ===");
  std::fputs(hierarchy.report().c_str(), stdout);
  std::puts("=== per-variable / per-function statistics ===");
  std::fputs(vars.report().c_str(), stdout);
  return 0;
}
