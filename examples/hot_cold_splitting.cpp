// Hot/cold splitting (the paper's transformation T2) on a workload shaped
// like the particle systems that motivate it: a tight integration loop
// touches only the hot field of every particle on every step, while the
// cold metadata is visited once at the end. The inline layout drags the
// cold bytes through the cache on every step; outlining them behind a
// pointer shrinks the hot stream.
//
// This example also shows the programmatic AST API: the kernel is built
// by hand rather than taken from the kernel library.
//
// Build & run:  ./build/examples/hot_cold_splitting
#include <cstdio>

#include "tdt/tdt.hpp"

namespace {

using namespace tdt;
using namespace tdt::tracer;

constexpr std::int64_t kParticles = 512;
constexpr std::int64_t kSteps = 8;

/// struct Particle { int mVel; struct mMeta { 3 doubles + tag }; } — the
/// cold metadata dominates the 40-byte element;
/// for (s < kSteps) for (i < kParticles) p[i].mVel += 1;
/// for (i < kParticles) { p[i].mMeta.mMass = i; p[i].mMeta.mTag = i; }
Program make_particles(layout::TypeTable& types) {
  const auto t_int = types.int_type();
  const auto meta = types.define_struct(
      "mMeta", {{"mMass", types.double_type()},
                {"mPosX", types.double_type()},
                {"mPosY", types.double_type()},
                {"mTag", t_int}});
  const auto particle = types.define_struct(
      "Particle", {{"mVel", t_int}, {"mMeta", meta}});

  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "lParticles",
      types.array_of(particle, static_cast<std::uint64_t>(kParticles))));
  body.push_back(decl_local("lI", t_int));
  body.push_back(decl_local("lS", t_int));
  body.push_back(start_instr());

  // Hot phase: kSteps sweeps over mVel only.
  std::vector<StmtPtr> hot;
  hot.push_back(modify(LValue("lParticles").index(rd("lI")).field("mVel"),
                       lit(1)));
  std::vector<StmtPtr> sweep;
  sweep.push_back(count_loop("lI", lit(kParticles), block(std::move(hot))));
  body.push_back(count_loop("lS", lit(kSteps), block(std::move(sweep))));

  // Cold phase: one pass over the metadata.
  std::vector<StmtPtr> cold;
  cold.push_back(
      assign(LValue("lParticles").index(rd("lI")).field("mMeta").field("mMass"),
             cast_real(rd("lI"))));
  cold.push_back(
      assign(LValue("lParticles").index(rd("lI")).field("mMeta").field("mTag"),
             rd("lI")));
  body.push_back(count_loop("lI", lit(kParticles), block(std::move(cold))));

  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

std::string rules_text() {
  const std::string n = std::to_string(kParticles);
  return "in:\n"
         "struct mMeta { double mMass; double mPosX; double mPosY; int mTag; };\n"
         "struct lParticles {\n"
         "  int mVel;\n"
         "  struct mMeta;\n"
         "}[" + n + "];\n"
         "out:\n"
         "struct lMetaPool { double mMass; double mPosX; double mPosY; int mTag; }[" + n + "];\n"
         "struct lHot {\n"
         "  int mVel;\n"
         "  + mMeta:lMetaPool;\n"
         "}[" + n + "];\n";
}

std::uint64_t hot_phase_misses(const analysis::SimulationResult& sim,
                               const std::string& variable) {
  std::uint64_t misses = 0;
  for (const analysis::SetCell& c : sim.per_set.at(variable)) {
    misses += c.misses;
  }
  return misses;
}

}  // namespace

int main() {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(rules_text());

  const auto result =
      analysis::run_experiment(types, ctx, make_particles(types),
                               cache::CacheConfig{
                                   "small-l1", 4096, 32, 1,
                                   cache::ReplacementPolicy::Lru,
                                   cache::WritePolicy::WriteBack,
                                   cache::AllocPolicy::WriteAllocate, 1},
                               &rules);

  std::printf("particles: %lld, hot sweeps: %lld\n", (long long)kParticles,
              (long long)kSteps);
  std::printf("trace records: %zu -> %zu (%llu pointer loads inserted)\n\n",
              result.original.size(), result.transformed.size(),
              static_cast<unsigned long long>(result.transform_stats.inserted));

  const std::uint64_t before = hot_phase_misses(result.before, "lParticles");
  const std::uint64_t after = hot_phase_misses(result.after, "lHot") +
                              hot_phase_misses(result.after, "lMetaPool");
  std::printf("structure misses before (inline): %llu\n",
              static_cast<unsigned long long>(before));
  std::printf("structure misses after (outlined): %llu\n",
              static_cast<unsigned long long>(after));
  std::printf("hot stream footprint: %lld x 40 B inline vs %lld x 16 B "
              "outlined elements\n\n",
              (long long)kParticles, (long long)kParticles);

  std::printf("L1 miss ratio before %.4f -> after %.4f\n",
              result.before.l1.miss_ratio(), result.after.l1.miss_ratio());
  std::puts(before > after
                ? "outlining reduced structure misses (hot loop dominates)"
                : "outlining did not pay off at these parameters");
  return 0;
}
