// Multicore study: find false sharing with the MESI simulation and fix it
// with a trace transformation — no source change, only a rule.
//
// Two worker threads increment their own counters, which the original
// layout packs into one cache line. The MESI system shows the line
// ping-ponging between the cores; the false-sharing detector attributes
// the invalidations to the counters; a stride rule pads the counters onto
// separate lines and the coherence traffic disappears.
//
// Build & run:  ./build/examples/false_sharing
#include <cstdio>

#include "tdt/tdt.hpp"

namespace {

using namespace tdt;
using namespace tdt::tracer;

constexpr std::int64_t kIterations = 512;
constexpr std::uint32_t kThreads = 2;

Program make_worker(layout::TypeTable& types, std::int64_t slot) {
  Program prog;
  prog.globals.push_back({"counters", types.array_of(types.int_type(), 16)});
  FunctionDef main_fn;
  main_fn.name = "worker";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("lI", types.int_type()));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(modify(LValue("counters").index(lit(slot)), lit(1)));
  body.push_back(count_loop("lI", lit(kIterations), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  // The interpreter enters at `main`; alias it.
  prog.functions.push_back(FunctionDef{});
  prog.functions.back().name = "main";
  std::vector<StmtPtr> main_body;
  main_body.push_back(call("worker", {}));
  prog.functions.back().body = block(std::move(main_body));
  return prog;
}

void simulate(const trace::TraceContext& ctx,
              const std::vector<trace::TraceRecord>& records,
              const char* title) {
  cache::CacheConfig cfg;
  cfg.size = 32768;
  cfg.block_size = 32;
  cfg.assoc = 8;
  cache::MesiSystem sys(cfg, kThreads);
  cache::MultiCoreSim sim(sys, ctx);
  sim.simulate(records);
  std::printf("=== %s ===\n", title);
  std::fputs(sim.report().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  trace::TraceContext ctx;
  InterpOptions opts;
  opts.emit_zzq_marker = false;
  std::vector<std::vector<trace::TraceRecord>> per_thread;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    layout::TypeTable types;
    // Per-thread stacks 1 MiB apart; globals shared.
    opts.address_space.stack_base = 0x7ff000000ULL - t * 0x100000ULL;
    per_thread.push_back(run_program(types, ctx, make_worker(types, t), opts));
  }
  const auto packed = trace::interleave_threads(std::move(per_thread));
  simulate(ctx, packed, "packed counters (one shared line)");

  const core::RuleSet rules = core::parse_rules(R"(
in:
int counters[16]:spreadCounters;
out:
int spreadCounters[128(lI*8)];
)");
  core::TransformStats stats;
  const auto spread = core::transform_trace(rules, ctx, packed, {}, &stats);
  std::printf("transformation: %llu counter accesses remapped 32 B apart\n\n",
              (unsigned long long)stats.rewritten);
  simulate(ctx, spread, "spread counters (one line per thread)");
  return 0;
}
