// Set pinning (the paper's transformation T3) on the PowerPC 440 cache:
// a contiguous array walk that normally spreads over all 16 sets is
// remapped by a stride rule so every access lands in one set, trading
// 16x address-space footprint for isolation from the rest of the cache.
//
// Prints the per-set tables of Figures 10 and 11 plus the ASCII chart.
//
// Build & run:  ./build/examples/set_pinning
#include <cstdio>

#include "tdt/tdt.hpp"

namespace {

constexpr std::int64_t kLen = 1024;
constexpr std::int64_t kSets = 16;

std::string rules_text() {
  return "in:\n"
         "int lContiguousArray[" + std::to_string(kLen) +
         "]:lSetHashingArray;\n"
         "out:\n"
         "int lSetHashingArray[" + std::to_string(kLen * kSets) +
         "((lI/8)*(16*8)+(lI%8))];\n"
         "inject:\n"
         "L lITEMSPERLINE 4;\n"
         "L lITEMSPERLINE 4;\n"
         "L lITEMSPERLINE 4;\n";
}

void simulate_and_chart(const tdt::trace::TraceContext& ctx,
                        const std::vector<tdt::trace::TraceRecord>& records,
                        const std::string& variable, const char* title) {
  using namespace tdt;
  cache::CacheHierarchy hierarchy(cache::ppc440());
  cache::TraceCacheSim sim(hierarchy);
  analysis::SetActivityCollector sets(ctx, cache::ppc440().num_sets());
  sim.add_observer(&sets);
  sim.simulate(records);

  std::printf("=== %s ===\n", title);
  std::fputs(analysis::set_table(sets, {variable}).c_str(), stdout);
  std::fputs(analysis::ascii_chart(sets, variable, 48).c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace tdt;

  layout::TypeTable types;
  trace::TraceContext ctx;
  std::printf("cache: %s\n\n", cache::ppc440().describe().c_str());

  const auto original =
      tracer::run_program(types, ctx, tracer::make_t3_contiguous(types, kLen));
  simulate_and_chart(ctx, original, "lContiguousArray",
                     "Figure 10: contiguous walk (sets 0..15)");

  const core::RuleSet rules = core::parse_rules(rules_text());
  core::TransformStats stats;
  const auto transformed =
      core::transform_trace(rules, ctx, original, {}, &stats);
  std::printf("transformed: %llu remapped, %llu index-arithmetic loads "
              "injected\n\n",
              static_cast<unsigned long long>(stats.rewritten),
              static_cast<unsigned long long>(stats.inserted));
  simulate_and_chart(ctx, transformed, "lSetHashingArray",
                     "Figure 11: pinned walk (single set)");
  return 0;
}
