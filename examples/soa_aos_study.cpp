// Layout study: the paper's transformation T1 end to end.
//
// A structure-of-arrays kernel (Listing 4) is traced once; the Listing 5
// rule rewrites the trace into an array-of-structures layout during
// simulation, with no change to the "program". The example prints the
// per-set activity before and after (Figures 3/4), an excerpt of the
// trace diff (Figure 5), and the cache statistics delta.
//
// Build & run:  ./build/examples/soa_aos_study
#include <cstdio>

#include "tdt/tdt.hpp"

namespace {

constexpr std::int64_t kLen = 1024;

std::string rules_text() {
  const std::string n = std::to_string(kLen);
  return "in:\n"
         "struct lSoA {\n"
         "  int mX[" + n + "];\n"
         "  double mY[" + n + "];\n"
         "};\n"
         "out:\n"
         "struct lAoS {\n"
         "  int mX;\n"
         "  double mY;\n"
         "}[" + n + "];\n";
}

void print_series(const tdt::analysis::SimulationResult& sim,
                  const std::string& variable, const char* title) {
  std::printf("--- %s: per-set activity of %s ---\n", title,
              variable.c_str());
  std::uint64_t hits = 0, misses = 0, active = 0;
  for (const tdt::analysis::SetCell& cell : sim.per_set.at(variable)) {
    hits += cell.hits;
    misses += cell.misses;
    active += (cell.hits + cell.misses) != 0;
  }
  std::printf("active sets: %llu of %llu   hits: %llu   misses: %llu\n\n",
              static_cast<unsigned long long>(active),
              static_cast<unsigned long long>(sim.num_sets),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
}

}  // namespace

int main() {
  using namespace tdt;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(rules_text());
  std::puts("=== transformation rule (paper Listing 5) ===");
  std::fputs(core::render_rule(rules.types(), rules.rules()[0]).c_str(),
             stdout);

  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t1_soa(types, kLen),
      cache::paper_direct_mapped(), &rules);

  std::printf("\ntrace: %zu records; %llu rewritten, %llu inserted\n\n",
              result.original.size(),
              static_cast<unsigned long long>(result.transform_stats.rewritten),
              static_cast<unsigned long long>(result.transform_stats.inserted));

  print_series(result.before, "lSoA", "before (Figure 3)");
  print_series(result.after, "lAoS", "after (Figure 4)");

  std::puts("=== trace diff excerpt (Figure 5) ===");
  const auto entries =
      trace::diff_traces(result.original, result.transformed);
  std::fputs(trace::render_side_by_side(ctx, result.original,
                                        result.transformed, entries, 16)
                 .c_str(),
             stdout);
  const auto summary = trace::summarize(entries);
  std::printf("\nsame %llu, modified %llu, inserted %llu, deleted %llu\n",
              static_cast<unsigned long long>(summary.same),
              static_cast<unsigned long long>(summary.modified),
              static_cast<unsigned long long>(summary.inserted),
              static_cast<unsigned long long>(summary.deleted));

  std::printf("\nmiss ratio before %.4f -> after %.4f\n",
              result.before.l1.miss_ratio(), result.after.l1.miss_ratio());
  return 0;
}
