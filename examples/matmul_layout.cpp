// Scientific-kernel study: dense matmul loop orders on a small cache, the
// kind of "effects of data-structure layouts on program memory behavior"
// study the paper's introduction motivates. Uses per-variable statistics
// and the conflict report of the modified simulator to show WHY ijk loses:
// column-wise walks of B thrash, and B's lines evict C's.
//
// Build & run:  ./build/examples/matmul_layout
#include <cstdio>

#include "tdt/tdt.hpp"

namespace {

struct RunResult {
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::string var_report;
  std::string conflict_report;
  std::string advice;
};

RunResult run_order(bool ikj, std::int64_t n) {
  using namespace tdt;
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, tracer::make_matmul(types, n, ikj));

  cache::CacheHierarchy hierarchy(
      {cache::CacheConfig{"l1", 4096, 64, 2, cache::ReplacementPolicy::Lru,
                          cache::WritePolicy::WriteBack,
                          cache::AllocPolicy::WriteAllocate, 1},
       cache::modern_l2()});
  cache::TraceCacheSim sim(hierarchy);
  analysis::VarStatsCollector vars(ctx);
  analysis::ConflictCollector conflicts(ctx);
  analysis::AdjacencyCollector adjacency(ctx, 64);
  sim.add_observer(&vars);
  sim.add_observer(&conflicts);
  sim.add_observer(&adjacency);
  sim.simulate(records);

  RunResult out;
  out.l1_misses = hierarchy.l1().stats().misses();
  out.l2_misses = hierarchy.level(1).stats().misses();
  out.var_report = vars.report();
  out.conflict_report = conflicts.report(6);
  out.advice = analysis::render(analysis::advise(vars, conflicts, {}, &adjacency));
  return out;
}

}  // namespace

int main() {
  constexpr std::int64_t kN = 32;
  std::printf("dense %lldx%lld matmul, 4 KiB 2-way L1 + 256 KiB L2\n\n",
              (long long)kN, (long long)kN);

  const RunResult ijk = run_order(false, kN);
  const RunResult ikj = run_order(true, kN);

  std::puts("=== ijk order (B walked column-wise) ===");
  std::printf("L1 misses: %llu   L2 misses: %llu\n",
              static_cast<unsigned long long>(ijk.l1_misses),
              static_cast<unsigned long long>(ijk.l2_misses));
  std::fputs(ijk.var_report.c_str(), stdout);
  std::puts("top eviction pairs:");
  std::fputs(ijk.conflict_report.c_str(), stdout);
  std::fputs(ijk.advice.c_str(), stdout);

  std::puts("\n=== ikj order (all row-wise) ===");
  std::printf("L1 misses: %llu   L2 misses: %llu\n",
              static_cast<unsigned long long>(ikj.l1_misses),
              static_cast<unsigned long long>(ikj.l2_misses));
  std::fputs(ikj.var_report.c_str(), stdout);

  std::printf("\nloop-order speed-up proxy (L1 miss reduction): %.2fx\n",
              static_cast<double>(ijk.l1_misses) /
                  static_cast<double>(ikj.l1_misses));
  return 0;
}
