/* Paper Listing 6's structure with a genuinely cold nested member: the
 * hot field is walked every element, every round, while mRarelyUsed is
 * touched on only every 32nd element. This is the trace the tdtune
 * autotuner's T2 hot/cold outlining is meant to discover (tests/analysis
 * and the cli_tdtune smoke test drive it end to end). */
#define LEN 4096
#define ROUNDS 4
#define COLD 128

int main(int aArgc, char **aArgv) {
  typedef struct {
    int mFrequentlyUsed;
    struct { double mY; int mZ; } mRarelyUsed;
  } MyInlineStruct;

  MyInlineStruct lS1[LEN];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int lR = 0; lR < ROUNDS; lR++) {
    for (int lI = 0; lI < LEN; lI++) {
      lS1[lI].mFrequentlyUsed = lI;
    }
    for (int lJ = 0; lJ < COLD; lJ++) {
      lS1[lJ * 32].mRarelyUsed.mY = lJ;
      lS1[lJ * 32].mRarelyUsed.mZ = lJ;
    }
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
