/* Paper Listing 9 ("Transformation 3A" source): contiguous array walk.
 * Matches rules/t3_set_pinning.rules at LEN = 1024. */
#define LEN 1024

int main(int aArgc, char **aArgv) {
  int lContiguousArray[LEN];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int lI = 0; lI < LEN; lI++) {
    lContiguousArray[lI] = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
