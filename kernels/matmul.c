/* Dense matrix multiply (ijk order) — the scientific-kernel workload the
 * paper's introduction motivates. Swap the two inner loops (ikj) to see
 * the loop-order effect in examples/matmul_layout. */
#define N 24

double A[N][N];
double B[N][N];
double C[N][N];

int main(void) {
  int i;
  int j;
  int k;
  GLEIPNIR_START_INSTRUMENTATION;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      for (k = 0; k < N; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
