/* Paper Listing 4 ("Transformation 1A" source): structure-of-arrays walk.
 * Matches rules/t1_soa_to_aos.rules at LEN = 1024. */
#define LEN 1024

int main(int aArgc, char **aArgv) {
  typedef struct {
    int mX[LEN];
    double mY[LEN];
  } MyStructOfArrays;
  MyStructOfArrays lSoA;
  GLEIPNIR_START_INSTRUMENTATION;
  for (int lI = 0; lI < LEN; lI++) {
    lSoA.mX[lI] = (int)lI;
    lSoA.mY[lI] = (double)lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
