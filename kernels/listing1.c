/* Paper Listing 1: the running example with globals, nested structures,
 * and a function call through an array parameter. */
struct _typeA {
  double dl;
  int myArray[10];
};
struct _typeA glStruct;
struct _typeA glStructArray[10];

int glScalar;
int glArray[10];

void foo(struct _typeA StrcParam[]) {
  int i;
  for (i = 0; i < 2; i++) {
    glStructArray[i].dl = glScalar;
    glStructArray[i].myArray[i] = glArray[i + 1];
    StrcParam[i].dl = glArray[i];
  }
  return;
}

int main(void) {
  GLEIPNIR_START_INSTRUMENTATION;

  struct _typeA lcStrcArray[5];
  int i, lcScalar, lcArray[10];

  glScalar = 321;
  lcScalar = 123;

  for (i = 0; i < 2; i++)
    lcArray[i] = glScalar;

  foo(lcStrcArray);

  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
