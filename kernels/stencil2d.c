/* 5-point stencil with branch-handled boundaries: exercises if-statements
 * and 2D indexing in the kernel language. */
#define N 32

double grid[N][N];
double next[N][N];

int main(void) {
  int i;
  int j;
  GLEIPNIR_START_INSTRUMENTATION;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      if (i == 0) {
        next[i][j] = grid[i][j];
      } else if (i == N - 1) {
        next[i][j] = grid[i][j];
      } else if (j == 0) {
        next[i][j] = grid[i][j];
      } else if (j == N - 1) {
        next[i][j] = grid[i][j];
      } else {
        next[i][j] = (grid[i - 1][j] + grid[i + 1][j] + grid[i][j - 1]
                      + grid[i][j + 1] + grid[i][j]) / 5.0;
      }
    }
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
