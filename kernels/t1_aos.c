/* Paper Listing 3 ("Transformation 1B" source): array-of-structures walk,
 * the hand-written target layout of transformation T1. */
#define LEN 1024

int main(int aArgc, char **aArgv) {
  typedef struct {
    int mX;
    double mY;
  } MyStruct;
  MyStruct lAoS[LEN];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int lI = 0; lI < LEN; lI++) {
    lAoS[lI].mX = (int)lI;
    lAoS[lI].mY = (double)lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
