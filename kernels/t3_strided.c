/* Paper Listing 10 ("Transformation 3B" source): hand-strided set-pinning
 * walk for the PowerPC 440 cache (16 sets, 32-byte lines). The index
 * formula follows the rule form (lI/IPL)*(SETS*IPL)+(lI%IPL); see
 * EXPERIMENTS.md for the discrepancy in the paper's Listing 10 text. */
#define LEN 1024
#define SETS 16
#define CACHELINE 32

int main(int aArgc, char **aArgv) {
  const int lITEMSPERLINE = CACHELINE / sizeof(int);
  int lSetHashingArray[LEN * SETS];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int lI = 0; lI < LEN; lI++) {
    lSetHashingArray[(lI / lITEMSPERLINE) * (SETS * lITEMSPERLINE)
                     + (lI % lITEMSPERLINE)] = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
