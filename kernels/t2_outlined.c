/* Paper Listing 7 ("Transformation 2B" source): hand-outlined version
 * with the rarely-used struct behind a pointer. */
#define LEN 1024

int main(int aArgc, char **aArgv) {
  typedef struct { double mY; int mZ; } RarelyUsed;
  typedef struct {
    int mFrequentlyUsed;
    RarelyUsed *mRarelyUsed;
  } MyOutlinedStruct;

  RarelyUsed lStorageForRarelyUsed[LEN];
  MyOutlinedStruct lS2[LEN];

  for (int lI = 0; lI < LEN; lI++) {
    lS2[lI].mRarelyUsed = lStorageForRarelyUsed + lI;
  }

  GLEIPNIR_START_INSTRUMENTATION;
  for (int lI = 0; lI < LEN; lI++) {
    lS2[lI].mFrequentlyUsed = lI;
    lS2[lI].mRarelyUsed->mY = lI;
    lS2[lI].mRarelyUsed->mZ = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
