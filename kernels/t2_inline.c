/* Paper Listing 6 ("Transformation 2A" source): nested hot/cold struct.
 * Matches rules/t2_outline_rarely_used.rules at LEN = 1024. */
#define LEN 1024

int main(int aArgc, char **aArgv) {
  typedef struct {
    int mFrequentlyUsed;
    struct { double mY; int mZ; } mRarelyUsed;
  } MyInlineStruct;

  MyInlineStruct lS1[LEN];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int lI = 0; lI < LEN; lI++) {
    lS1[lI].mFrequentlyUsed = lI;
    lS1[lI].mRarelyUsed.mY = lI;
    lS1[lI].mRarelyUsed.mZ = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
