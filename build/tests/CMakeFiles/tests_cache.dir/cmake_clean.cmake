file(REMOVE_RECURSE
  "CMakeFiles/tests_cache.dir/cache/cache_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/cache_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/classify_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/classify_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/coherence_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/coherence_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/config_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/config_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/hierarchy_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/hierarchy_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/multicore_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/multicore_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/page_map_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/page_map_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/policies_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/policies_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/prefetch_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/prefetch_test.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/sim_test.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/sim_test.cpp.o.d"
  "tests_cache"
  "tests_cache.pdb"
  "tests_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
