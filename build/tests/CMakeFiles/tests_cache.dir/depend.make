# Empty dependencies file for tests_cache.
# This may be replaced when dependencies are built.
