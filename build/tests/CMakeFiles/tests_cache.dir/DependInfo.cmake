
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/cache_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/cache_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/cache_test.cpp.o.d"
  "/root/repo/tests/cache/classify_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/classify_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/classify_test.cpp.o.d"
  "/root/repo/tests/cache/coherence_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/coherence_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/coherence_test.cpp.o.d"
  "/root/repo/tests/cache/config_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/config_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/config_test.cpp.o.d"
  "/root/repo/tests/cache/hierarchy_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/hierarchy_test.cpp.o.d"
  "/root/repo/tests/cache/multicore_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/multicore_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/multicore_test.cpp.o.d"
  "/root/repo/tests/cache/page_map_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/page_map_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/page_map_test.cpp.o.d"
  "/root/repo/tests/cache/policies_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/policies_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/policies_test.cpp.o.d"
  "/root/repo/tests/cache/prefetch_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/prefetch_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/prefetch_test.cpp.o.d"
  "/root/repo/tests/cache/sim_test.cpp" "tests/CMakeFiles/tests_cache.dir/cache/sim_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cache.dir/cache/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tdt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tdt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tracer/CMakeFiles/tdt_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/tdt_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tdt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
