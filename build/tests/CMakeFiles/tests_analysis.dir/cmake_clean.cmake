file(REMOVE_RECURSE
  "CMakeFiles/tests_analysis.dir/analysis/advisor_test.cpp.o"
  "CMakeFiles/tests_analysis.dir/analysis/advisor_test.cpp.o.d"
  "CMakeFiles/tests_analysis.dir/analysis/experiment_test.cpp.o"
  "CMakeFiles/tests_analysis.dir/analysis/experiment_test.cpp.o.d"
  "CMakeFiles/tests_analysis.dir/analysis/report_test.cpp.o"
  "CMakeFiles/tests_analysis.dir/analysis/report_test.cpp.o.d"
  "CMakeFiles/tests_analysis.dir/analysis/set_activity_test.cpp.o"
  "CMakeFiles/tests_analysis.dir/analysis/set_activity_test.cpp.o.d"
  "CMakeFiles/tests_analysis.dir/analysis/var_stats_test.cpp.o"
  "CMakeFiles/tests_analysis.dir/analysis/var_stats_test.cpp.o.d"
  "tests_analysis"
  "tests_analysis.pdb"
  "tests_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
