# Empty dependencies file for tests_analysis.
# This may be replaced when dependencies are built.
