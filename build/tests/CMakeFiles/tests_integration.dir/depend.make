# Empty dependencies file for tests_integration.
# This may be replaced when dependencies are built.
