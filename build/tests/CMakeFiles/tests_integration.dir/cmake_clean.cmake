file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/integration/dynamic_structures_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/dynamic_structures_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/false_sharing_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/false_sharing_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/fuzz_robustness_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/fuzz_robustness_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/golden_trace_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/golden_trace_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/kernel_sources_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/kernel_sources_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/listing1_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/listing1_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/paper_t1_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/paper_t1_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/paper_t2_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/paper_t2_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/paper_t3_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/paper_t3_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/rules_files_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/rules_files_test.cpp.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
