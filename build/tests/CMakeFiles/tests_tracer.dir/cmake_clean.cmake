file(REMOVE_RECURSE
  "CMakeFiles/tests_tracer.dir/tracer/control_flow_test.cpp.o"
  "CMakeFiles/tests_tracer.dir/tracer/control_flow_test.cpp.o.d"
  "CMakeFiles/tests_tracer.dir/tracer/interp_test.cpp.o"
  "CMakeFiles/tests_tracer.dir/tracer/interp_test.cpp.o.d"
  "CMakeFiles/tests_tracer.dir/tracer/kernels_test.cpp.o"
  "CMakeFiles/tests_tracer.dir/tracer/kernels_test.cpp.o.d"
  "CMakeFiles/tests_tracer.dir/tracer/parser_test.cpp.o"
  "CMakeFiles/tests_tracer.dir/tracer/parser_test.cpp.o.d"
  "tests_tracer"
  "tests_tracer.pdb"
  "tests_tracer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
