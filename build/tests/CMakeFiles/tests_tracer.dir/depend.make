# Empty dependencies file for tests_tracer.
# This may be replaced when dependencies are built.
