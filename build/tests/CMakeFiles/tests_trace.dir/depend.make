# Empty dependencies file for tests_trace.
# This may be replaced when dependencies are built.
