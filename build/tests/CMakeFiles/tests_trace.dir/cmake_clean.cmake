file(REMOVE_RECURSE
  "CMakeFiles/tests_trace.dir/trace/binary_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/binary_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/diff_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/diff_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/din_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/din_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/reader_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/reader_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/record_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/record_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/sink_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/sink_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/stats_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/stats_test.cpp.o.d"
  "CMakeFiles/tests_trace.dir/trace/writer_test.cpp.o"
  "CMakeFiles/tests_trace.dir/trace/writer_test.cpp.o.d"
  "tests_trace"
  "tests_trace.pdb"
  "tests_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
