file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/util/error_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/error_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/flags_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/flags_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/lexer_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/lexer_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/small_vector_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/small_vector_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/string_pool_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/string_pool_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/string_util_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/string_util_test.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/table_test.cpp.o"
  "CMakeFiles/tests_util.dir/util/table_test.cpp.o.d"
  "tests_util"
  "tests_util.pdb"
  "tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
