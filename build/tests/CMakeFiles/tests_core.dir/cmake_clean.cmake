file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/formula_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/formula_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/mapping_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/mapping_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/reorder_property_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/reorder_property_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/rule_parser_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/rule_parser_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/rules_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/rules_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/transformer_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/transformer_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
