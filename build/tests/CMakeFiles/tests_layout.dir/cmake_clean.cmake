file(REMOVE_RECURSE
  "CMakeFiles/tests_layout.dir/layout/decl_parser_test.cpp.o"
  "CMakeFiles/tests_layout.dir/layout/decl_parser_test.cpp.o.d"
  "CMakeFiles/tests_layout.dir/layout/path_test.cpp.o"
  "CMakeFiles/tests_layout.dir/layout/path_test.cpp.o.d"
  "CMakeFiles/tests_layout.dir/layout/type_test.cpp.o"
  "CMakeFiles/tests_layout.dir/layout/type_test.cpp.o.d"
  "tests_layout"
  "tests_layout.pdb"
  "tests_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
