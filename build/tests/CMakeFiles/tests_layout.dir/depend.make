# Empty dependencies file for tests_layout.
# This may be replaced when dependencies are built.
