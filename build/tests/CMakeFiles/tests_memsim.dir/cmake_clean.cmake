file(REMOVE_RECURSE
  "CMakeFiles/tests_memsim.dir/memsim/address_space_test.cpp.o"
  "CMakeFiles/tests_memsim.dir/memsim/address_space_test.cpp.o.d"
  "CMakeFiles/tests_memsim.dir/memsim/symbol_table_test.cpp.o"
  "CMakeFiles/tests_memsim.dir/memsim/symbol_table_test.cpp.o.d"
  "tests_memsim"
  "tests_memsim.pdb"
  "tests_memsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
