# Empty dependencies file for tests_memsim.
# This may be replaced when dependencies are built.
