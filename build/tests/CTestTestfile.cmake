# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_util[1]_include.cmake")
include("/root/repo/build/tests/tests_layout[1]_include.cmake")
include("/root/repo/build/tests/tests_trace[1]_include.cmake")
include("/root/repo/build/tests/tests_memsim[1]_include.cmake")
include("/root/repo/build/tests/tests_tracer[1]_include.cmake")
include("/root/repo/build/tests/tests_cache[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_analysis[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
add_test(cli.gtracer_dinerosim_t1 "/usr/bin/cmake" "-DGTRACER=/root/repo/build/src/tools/gtracer" "-DDINEROSIM=/root/repo/build/src/tools/dinerosim" "-DTRACEDIFF=/root/repo/build/src/tools/tracediff" "-DTRACEINFO=/root/repo/build/src/tools/traceinfo" "-DRULES=/root/repo/rules/t1_soa_to_aos.rules" "-DWORKDIR=/root/repo/build/tests/cli_t1" "-P" "/root/repo/tests/cli_smoke.cmake")
set_tests_properties(cli.gtracer_dinerosim_t1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;92;add_test;/root/repo/tests/CMakeLists.txt;0;")
