file(REMOVE_RECURSE
  "CMakeFiles/set_pinning.dir/set_pinning.cpp.o"
  "CMakeFiles/set_pinning.dir/set_pinning.cpp.o.d"
  "set_pinning"
  "set_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
