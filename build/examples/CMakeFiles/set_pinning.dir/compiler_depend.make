# Empty compiler generated dependencies file for set_pinning.
# This may be replaced when dependencies are built.
