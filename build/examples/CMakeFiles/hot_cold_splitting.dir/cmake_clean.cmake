file(REMOVE_RECURSE
  "CMakeFiles/hot_cold_splitting.dir/hot_cold_splitting.cpp.o"
  "CMakeFiles/hot_cold_splitting.dir/hot_cold_splitting.cpp.o.d"
  "hot_cold_splitting"
  "hot_cold_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_cold_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
