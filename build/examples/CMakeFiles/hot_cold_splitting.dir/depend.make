# Empty dependencies file for hot_cold_splitting.
# This may be replaced when dependencies are built.
