# Empty dependencies file for false_sharing.
# This may be replaced when dependencies are built.
