file(REMOVE_RECURSE
  "CMakeFiles/false_sharing.dir/false_sharing.cpp.o"
  "CMakeFiles/false_sharing.dir/false_sharing.cpp.o.d"
  "false_sharing"
  "false_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
