# Empty dependencies file for soa_aos_study.
# This may be replaced when dependencies are built.
