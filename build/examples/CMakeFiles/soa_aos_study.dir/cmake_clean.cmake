file(REMOVE_RECURSE
  "CMakeFiles/soa_aos_study.dir/soa_aos_study.cpp.o"
  "CMakeFiles/soa_aos_study.dir/soa_aos_study.cpp.o.d"
  "soa_aos_study"
  "soa_aos_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soa_aos_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
