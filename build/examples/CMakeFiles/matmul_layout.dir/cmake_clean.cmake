file(REMOVE_RECURSE
  "CMakeFiles/matmul_layout.dir/matmul_layout.cpp.o"
  "CMakeFiles/matmul_layout.dir/matmul_layout.cpp.o.d"
  "matmul_layout"
  "matmul_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
