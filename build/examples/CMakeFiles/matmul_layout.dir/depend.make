# Empty dependencies file for matmul_layout.
# This may be replaced when dependencies are built.
