file(REMOVE_RECURSE
  "../bench/bench_throughput"
  "../bench/bench_throughput.pdb"
  "CMakeFiles/bench_throughput.dir/bench_throughput.cpp.o"
  "CMakeFiles/bench_throughput.dir/bench_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
