# Empty dependencies file for bench_fig05_t1_diff.
# This may be replaced when dependencies are built.
