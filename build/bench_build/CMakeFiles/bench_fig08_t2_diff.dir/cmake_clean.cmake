file(REMOVE_RECURSE
  "../bench/bench_fig08_t2_diff"
  "../bench/bench_fig08_t2_diff.pdb"
  "CMakeFiles/bench_fig08_t2_diff.dir/bench_fig08_t2_diff.cpp.o"
  "CMakeFiles/bench_fig08_t2_diff.dir/bench_fig08_t2_diff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_t2_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
