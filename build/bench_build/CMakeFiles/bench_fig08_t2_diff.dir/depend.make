# Empty dependencies file for bench_fig08_t2_diff.
# This may be replaced when dependencies are built.
