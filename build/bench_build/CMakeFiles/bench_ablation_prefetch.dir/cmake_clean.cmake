file(REMOVE_RECURSE
  "../bench/bench_ablation_prefetch"
  "../bench/bench_ablation_prefetch.pdb"
  "CMakeFiles/bench_ablation_prefetch.dir/bench_ablation_prefetch.cpp.o"
  "CMakeFiles/bench_ablation_prefetch.dir/bench_ablation_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
