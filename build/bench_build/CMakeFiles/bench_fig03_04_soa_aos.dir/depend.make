# Empty dependencies file for bench_fig03_04_soa_aos.
# This may be replaced when dependencies are built.
