file(REMOVE_RECURSE
  "../bench/bench_fig03_04_soa_aos"
  "../bench/bench_fig03_04_soa_aos.pdb"
  "CMakeFiles/bench_fig03_04_soa_aos.dir/bench_fig03_04_soa_aos.cpp.o"
  "CMakeFiles/bench_fig03_04_soa_aos.dir/bench_fig03_04_soa_aos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_04_soa_aos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
