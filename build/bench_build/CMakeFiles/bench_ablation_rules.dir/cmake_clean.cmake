file(REMOVE_RECURSE
  "../bench/bench_ablation_rules"
  "../bench/bench_ablation_rules.pdb"
  "CMakeFiles/bench_ablation_rules.dir/bench_ablation_rules.cpp.o"
  "CMakeFiles/bench_ablation_rules.dir/bench_ablation_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
