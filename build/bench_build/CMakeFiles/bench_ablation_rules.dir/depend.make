# Empty dependencies file for bench_ablation_rules.
# This may be replaced when dependencies are built.
