file(REMOVE_RECURSE
  "../bench/bench_ablation_policies"
  "../bench/bench_ablation_policies.pdb"
  "CMakeFiles/bench_ablation_policies.dir/bench_ablation_policies.cpp.o"
  "CMakeFiles/bench_ablation_policies.dir/bench_ablation_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
