# Empty dependencies file for bench_ablation_policies.
# This may be replaced when dependencies are built.
