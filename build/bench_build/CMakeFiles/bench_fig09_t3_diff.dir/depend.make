# Empty dependencies file for bench_fig09_t3_diff.
# This may be replaced when dependencies are built.
