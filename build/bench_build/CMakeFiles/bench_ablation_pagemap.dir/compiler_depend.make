# Empty compiler generated dependencies file for bench_ablation_pagemap.
# This may be replaced when dependencies are built.
