file(REMOVE_RECURSE
  "../bench/bench_ablation_pagemap"
  "../bench/bench_ablation_pagemap.pdb"
  "CMakeFiles/bench_ablation_pagemap.dir/bench_ablation_pagemap.cpp.o"
  "CMakeFiles/bench_ablation_pagemap.dir/bench_ablation_pagemap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pagemap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
