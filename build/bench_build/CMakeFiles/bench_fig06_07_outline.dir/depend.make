# Empty dependencies file for bench_fig06_07_outline.
# This may be replaced when dependencies are built.
