
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig06_07_outline.cpp" "bench_build/CMakeFiles/bench_fig06_07_outline.dir/bench_fig06_07_outline.cpp.o" "gcc" "bench_build/CMakeFiles/bench_fig06_07_outline.dir/bench_fig06_07_outline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tdt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tdt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tracer/CMakeFiles/tdt_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/tdt_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tdt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
