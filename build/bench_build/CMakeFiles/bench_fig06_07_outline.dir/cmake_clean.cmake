file(REMOVE_RECURSE
  "../bench/bench_fig06_07_outline"
  "../bench/bench_fig06_07_outline.pdb"
  "CMakeFiles/bench_fig06_07_outline.dir/bench_fig06_07_outline.cpp.o"
  "CMakeFiles/bench_fig06_07_outline.dir/bench_fig06_07_outline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_07_outline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
