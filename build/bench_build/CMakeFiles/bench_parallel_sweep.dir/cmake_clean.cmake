file(REMOVE_RECURSE
  "../bench/bench_parallel_sweep"
  "../bench/bench_parallel_sweep.pdb"
  "CMakeFiles/bench_parallel_sweep.dir/bench_parallel_sweep.cpp.o"
  "CMakeFiles/bench_parallel_sweep.dir/bench_parallel_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
