# Empty compiler generated dependencies file for bench_parallel_sweep.
# This may be replaced when dependencies are built.
