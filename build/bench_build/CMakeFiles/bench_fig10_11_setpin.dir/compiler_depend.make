# Empty compiler generated dependencies file for bench_fig10_11_setpin.
# This may be replaced when dependencies are built.
