file(REMOVE_RECURSE
  "../bench/bench_fig10_11_setpin"
  "../bench/bench_fig10_11_setpin.pdb"
  "CMakeFiles/bench_fig10_11_setpin.dir/bench_fig10_11_setpin.cpp.o"
  "CMakeFiles/bench_fig10_11_setpin.dir/bench_fig10_11_setpin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_setpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
