# Empty dependencies file for bench_ablation_padding.
# This may be replaced when dependencies are built.
