file(REMOVE_RECURSE
  "../bench/bench_ablation_padding"
  "../bench/bench_ablation_padding.pdb"
  "CMakeFiles/bench_ablation_padding.dir/bench_ablation_padding.cpp.o"
  "CMakeFiles/bench_ablation_padding.dir/bench_ablation_padding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
