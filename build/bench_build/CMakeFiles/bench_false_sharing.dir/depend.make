# Empty dependencies file for bench_false_sharing.
# This may be replaced when dependencies are built.
