file(REMOVE_RECURSE
  "../bench/bench_false_sharing"
  "../bench/bench_false_sharing.pdb"
  "CMakeFiles/bench_false_sharing.dir/bench_false_sharing.cpp.o"
  "CMakeFiles/bench_false_sharing.dir/bench_false_sharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
