file(REMOVE_RECURSE
  "../bench/bench_ablation_assoc"
  "../bench/bench_ablation_assoc.pdb"
  "CMakeFiles/bench_ablation_assoc.dir/bench_ablation_assoc.cpp.o"
  "CMakeFiles/bench_ablation_assoc.dir/bench_ablation_assoc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
