# Empty dependencies file for bench_ablation_assoc.
# This may be replaced when dependencies are built.
