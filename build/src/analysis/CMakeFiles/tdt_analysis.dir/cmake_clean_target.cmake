file(REMOVE_RECURSE
  "libtdt_analysis.a"
)
