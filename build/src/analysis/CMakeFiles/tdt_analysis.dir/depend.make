# Empty dependencies file for tdt_analysis.
# This may be replaced when dependencies are built.
