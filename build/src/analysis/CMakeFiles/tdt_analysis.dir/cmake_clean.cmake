file(REMOVE_RECURSE
  "CMakeFiles/tdt_analysis.dir/advisor.cpp.o"
  "CMakeFiles/tdt_analysis.dir/advisor.cpp.o.d"
  "CMakeFiles/tdt_analysis.dir/experiment.cpp.o"
  "CMakeFiles/tdt_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/tdt_analysis.dir/report.cpp.o"
  "CMakeFiles/tdt_analysis.dir/report.cpp.o.d"
  "CMakeFiles/tdt_analysis.dir/set_activity.cpp.o"
  "CMakeFiles/tdt_analysis.dir/set_activity.cpp.o.d"
  "CMakeFiles/tdt_analysis.dir/var_stats.cpp.o"
  "CMakeFiles/tdt_analysis.dir/var_stats.cpp.o.d"
  "libtdt_analysis.a"
  "libtdt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
