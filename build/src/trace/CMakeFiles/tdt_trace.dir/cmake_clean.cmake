file(REMOVE_RECURSE
  "CMakeFiles/tdt_trace.dir/binary.cpp.o"
  "CMakeFiles/tdt_trace.dir/binary.cpp.o.d"
  "CMakeFiles/tdt_trace.dir/diff.cpp.o"
  "CMakeFiles/tdt_trace.dir/diff.cpp.o.d"
  "CMakeFiles/tdt_trace.dir/din.cpp.o"
  "CMakeFiles/tdt_trace.dir/din.cpp.o.d"
  "CMakeFiles/tdt_trace.dir/reader.cpp.o"
  "CMakeFiles/tdt_trace.dir/reader.cpp.o.d"
  "CMakeFiles/tdt_trace.dir/record.cpp.o"
  "CMakeFiles/tdt_trace.dir/record.cpp.o.d"
  "CMakeFiles/tdt_trace.dir/stats.cpp.o"
  "CMakeFiles/tdt_trace.dir/stats.cpp.o.d"
  "CMakeFiles/tdt_trace.dir/writer.cpp.o"
  "CMakeFiles/tdt_trace.dir/writer.cpp.o.d"
  "libtdt_trace.a"
  "libtdt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
