file(REMOVE_RECURSE
  "libtdt_trace.a"
)
