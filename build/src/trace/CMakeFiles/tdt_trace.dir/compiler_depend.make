# Empty compiler generated dependencies file for tdt_trace.
# This may be replaced when dependencies are built.
