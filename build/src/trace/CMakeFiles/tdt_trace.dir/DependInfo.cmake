
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary.cpp" "src/trace/CMakeFiles/tdt_trace.dir/binary.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/binary.cpp.o.d"
  "/root/repo/src/trace/diff.cpp" "src/trace/CMakeFiles/tdt_trace.dir/diff.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/diff.cpp.o.d"
  "/root/repo/src/trace/din.cpp" "src/trace/CMakeFiles/tdt_trace.dir/din.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/din.cpp.o.d"
  "/root/repo/src/trace/reader.cpp" "src/trace/CMakeFiles/tdt_trace.dir/reader.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/reader.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/tdt_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/tdt_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/writer.cpp" "src/trace/CMakeFiles/tdt_trace.dir/writer.cpp.o" "gcc" "src/trace/CMakeFiles/tdt_trace.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
