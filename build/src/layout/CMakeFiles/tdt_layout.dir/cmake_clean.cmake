file(REMOVE_RECURSE
  "CMakeFiles/tdt_layout.dir/decl_parser.cpp.o"
  "CMakeFiles/tdt_layout.dir/decl_parser.cpp.o.d"
  "CMakeFiles/tdt_layout.dir/path.cpp.o"
  "CMakeFiles/tdt_layout.dir/path.cpp.o.d"
  "CMakeFiles/tdt_layout.dir/type.cpp.o"
  "CMakeFiles/tdt_layout.dir/type.cpp.o.d"
  "libtdt_layout.a"
  "libtdt_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
