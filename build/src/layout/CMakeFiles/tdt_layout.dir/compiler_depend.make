# Empty compiler generated dependencies file for tdt_layout.
# This may be replaced when dependencies are built.
