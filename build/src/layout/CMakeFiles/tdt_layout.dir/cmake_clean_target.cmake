file(REMOVE_RECURSE
  "libtdt_layout.a"
)
