file(REMOVE_RECURSE
  "CMakeFiles/tdt_cache.dir/cache.cpp.o"
  "CMakeFiles/tdt_cache.dir/cache.cpp.o.d"
  "CMakeFiles/tdt_cache.dir/coherence.cpp.o"
  "CMakeFiles/tdt_cache.dir/coherence.cpp.o.d"
  "CMakeFiles/tdt_cache.dir/config.cpp.o"
  "CMakeFiles/tdt_cache.dir/config.cpp.o.d"
  "CMakeFiles/tdt_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/tdt_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/tdt_cache.dir/multicore.cpp.o"
  "CMakeFiles/tdt_cache.dir/multicore.cpp.o.d"
  "CMakeFiles/tdt_cache.dir/page_map.cpp.o"
  "CMakeFiles/tdt_cache.dir/page_map.cpp.o.d"
  "CMakeFiles/tdt_cache.dir/sim.cpp.o"
  "CMakeFiles/tdt_cache.dir/sim.cpp.o.d"
  "libtdt_cache.a"
  "libtdt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
