file(REMOVE_RECURSE
  "libtdt_cache.a"
)
