
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/cache/CMakeFiles/tdt_cache.dir/cache.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/cache.cpp.o.d"
  "/root/repo/src/cache/coherence.cpp" "src/cache/CMakeFiles/tdt_cache.dir/coherence.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/coherence.cpp.o.d"
  "/root/repo/src/cache/config.cpp" "src/cache/CMakeFiles/tdt_cache.dir/config.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/config.cpp.o.d"
  "/root/repo/src/cache/hierarchy.cpp" "src/cache/CMakeFiles/tdt_cache.dir/hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/hierarchy.cpp.o.d"
  "/root/repo/src/cache/multicore.cpp" "src/cache/CMakeFiles/tdt_cache.dir/multicore.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/multicore.cpp.o.d"
  "/root/repo/src/cache/page_map.cpp" "src/cache/CMakeFiles/tdt_cache.dir/page_map.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/page_map.cpp.o.d"
  "/root/repo/src/cache/sim.cpp" "src/cache/CMakeFiles/tdt_cache.dir/sim.cpp.o" "gcc" "src/cache/CMakeFiles/tdt_cache.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdt_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
