# Empty dependencies file for tdt_cache.
# This may be replaced when dependencies are built.
