file(REMOVE_RECURSE
  "CMakeFiles/tdt_tracer.dir/ast.cpp.o"
  "CMakeFiles/tdt_tracer.dir/ast.cpp.o.d"
  "CMakeFiles/tdt_tracer.dir/interp.cpp.o"
  "CMakeFiles/tdt_tracer.dir/interp.cpp.o.d"
  "CMakeFiles/tdt_tracer.dir/kernels.cpp.o"
  "CMakeFiles/tdt_tracer.dir/kernels.cpp.o.d"
  "CMakeFiles/tdt_tracer.dir/parser.cpp.o"
  "CMakeFiles/tdt_tracer.dir/parser.cpp.o.d"
  "libtdt_tracer.a"
  "libtdt_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
