file(REMOVE_RECURSE
  "libtdt_tracer.a"
)
