# Empty compiler generated dependencies file for tdt_tracer.
# This may be replaced when dependencies are built.
