
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracer/ast.cpp" "src/tracer/CMakeFiles/tdt_tracer.dir/ast.cpp.o" "gcc" "src/tracer/CMakeFiles/tdt_tracer.dir/ast.cpp.o.d"
  "/root/repo/src/tracer/interp.cpp" "src/tracer/CMakeFiles/tdt_tracer.dir/interp.cpp.o" "gcc" "src/tracer/CMakeFiles/tdt_tracer.dir/interp.cpp.o.d"
  "/root/repo/src/tracer/kernels.cpp" "src/tracer/CMakeFiles/tdt_tracer.dir/kernels.cpp.o" "gcc" "src/tracer/CMakeFiles/tdt_tracer.dir/kernels.cpp.o.d"
  "/root/repo/src/tracer/parser.cpp" "src/tracer/CMakeFiles/tdt_tracer.dir/parser.cpp.o" "gcc" "src/tracer/CMakeFiles/tdt_tracer.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tdt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/tdt_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
