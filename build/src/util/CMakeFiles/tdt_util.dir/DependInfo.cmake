
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/error.cpp" "src/util/CMakeFiles/tdt_util.dir/error.cpp.o" "gcc" "src/util/CMakeFiles/tdt_util.dir/error.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/util/CMakeFiles/tdt_util.dir/flags.cpp.o" "gcc" "src/util/CMakeFiles/tdt_util.dir/flags.cpp.o.d"
  "/root/repo/src/util/lexer.cpp" "src/util/CMakeFiles/tdt_util.dir/lexer.cpp.o" "gcc" "src/util/CMakeFiles/tdt_util.dir/lexer.cpp.o.d"
  "/root/repo/src/util/string_pool.cpp" "src/util/CMakeFiles/tdt_util.dir/string_pool.cpp.o" "gcc" "src/util/CMakeFiles/tdt_util.dir/string_pool.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/util/CMakeFiles/tdt_util.dir/string_util.cpp.o" "gcc" "src/util/CMakeFiles/tdt_util.dir/string_util.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/tdt_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/tdt_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
