file(REMOVE_RECURSE
  "libtdt_util.a"
)
