# Empty dependencies file for tdt_util.
# This may be replaced when dependencies are built.
