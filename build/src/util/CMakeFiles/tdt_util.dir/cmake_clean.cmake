file(REMOVE_RECURSE
  "CMakeFiles/tdt_util.dir/error.cpp.o"
  "CMakeFiles/tdt_util.dir/error.cpp.o.d"
  "CMakeFiles/tdt_util.dir/flags.cpp.o"
  "CMakeFiles/tdt_util.dir/flags.cpp.o.d"
  "CMakeFiles/tdt_util.dir/lexer.cpp.o"
  "CMakeFiles/tdt_util.dir/lexer.cpp.o.d"
  "CMakeFiles/tdt_util.dir/string_pool.cpp.o"
  "CMakeFiles/tdt_util.dir/string_pool.cpp.o.d"
  "CMakeFiles/tdt_util.dir/string_util.cpp.o"
  "CMakeFiles/tdt_util.dir/string_util.cpp.o.d"
  "CMakeFiles/tdt_util.dir/table.cpp.o"
  "CMakeFiles/tdt_util.dir/table.cpp.o.d"
  "libtdt_util.a"
  "libtdt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
