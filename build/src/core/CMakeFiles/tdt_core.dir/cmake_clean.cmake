file(REMOVE_RECURSE
  "CMakeFiles/tdt_core.dir/formula.cpp.o"
  "CMakeFiles/tdt_core.dir/formula.cpp.o.d"
  "CMakeFiles/tdt_core.dir/mapping.cpp.o"
  "CMakeFiles/tdt_core.dir/mapping.cpp.o.d"
  "CMakeFiles/tdt_core.dir/rule_parser.cpp.o"
  "CMakeFiles/tdt_core.dir/rule_parser.cpp.o.d"
  "CMakeFiles/tdt_core.dir/rules.cpp.o"
  "CMakeFiles/tdt_core.dir/rules.cpp.o.d"
  "CMakeFiles/tdt_core.dir/transformer.cpp.o"
  "CMakeFiles/tdt_core.dir/transformer.cpp.o.d"
  "libtdt_core.a"
  "libtdt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
