# Empty compiler generated dependencies file for tdt_core.
# This may be replaced when dependencies are built.
