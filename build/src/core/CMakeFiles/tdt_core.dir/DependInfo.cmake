
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/formula.cpp" "src/core/CMakeFiles/tdt_core.dir/formula.cpp.o" "gcc" "src/core/CMakeFiles/tdt_core.dir/formula.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/tdt_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/tdt_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/rule_parser.cpp" "src/core/CMakeFiles/tdt_core.dir/rule_parser.cpp.o" "gcc" "src/core/CMakeFiles/tdt_core.dir/rule_parser.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/core/CMakeFiles/tdt_core.dir/rules.cpp.o" "gcc" "src/core/CMakeFiles/tdt_core.dir/rules.cpp.o.d"
  "/root/repo/src/core/transformer.cpp" "src/core/CMakeFiles/tdt_core.dir/transformer.cpp.o" "gcc" "src/core/CMakeFiles/tdt_core.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tdt_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdt_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
