file(REMOVE_RECURSE
  "libtdt_core.a"
)
