file(REMOVE_RECURSE
  "CMakeFiles/dinerosim.dir/dinerosim.cpp.o"
  "CMakeFiles/dinerosim.dir/dinerosim.cpp.o.d"
  "dinerosim"
  "dinerosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinerosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
