# Empty dependencies file for dinerosim.
# This may be replaced when dependencies are built.
