file(REMOVE_RECURSE
  "CMakeFiles/tracediff.dir/tracediff.cpp.o"
  "CMakeFiles/tracediff.dir/tracediff.cpp.o.d"
  "tracediff"
  "tracediff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracediff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
