# Empty compiler generated dependencies file for tracediff.
# This may be replaced when dependencies are built.
