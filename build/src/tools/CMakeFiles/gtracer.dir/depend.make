# Empty dependencies file for gtracer.
# This may be replaced when dependencies are built.
