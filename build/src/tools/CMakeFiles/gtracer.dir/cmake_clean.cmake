file(REMOVE_RECURSE
  "CMakeFiles/gtracer.dir/gtracer.cpp.o"
  "CMakeFiles/gtracer.dir/gtracer.cpp.o.d"
  "gtracer"
  "gtracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
