file(REMOVE_RECURSE
  "CMakeFiles/traceinfo.dir/traceinfo.cpp.o"
  "CMakeFiles/traceinfo.dir/traceinfo.cpp.o.d"
  "traceinfo"
  "traceinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
