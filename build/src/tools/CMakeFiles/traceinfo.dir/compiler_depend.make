# Empty compiler generated dependencies file for traceinfo.
# This may be replaced when dependencies are built.
