# Empty dependencies file for tdt_memsim.
# This may be replaced when dependencies are built.
