file(REMOVE_RECURSE
  "CMakeFiles/tdt_memsim.dir/address_space.cpp.o"
  "CMakeFiles/tdt_memsim.dir/address_space.cpp.o.d"
  "CMakeFiles/tdt_memsim.dir/symbol_table.cpp.o"
  "CMakeFiles/tdt_memsim.dir/symbol_table.cpp.o.d"
  "libtdt_memsim.a"
  "libtdt_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdt_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
