file(REMOVE_RECURSE
  "libtdt_memsim.a"
)
