// Public facade: the synthetic tracer (the Gleipnir stand-in).
//
// Built-in paper kernels, the C-subset kernel parser, and the
// interpreter that turns a kernel into a trace-record stream.
#pragma once

#include "layout/type.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "tracer/parser.hpp"

namespace tdt {

// Supported surface, re-exported at the top level.
using layout::TypeTable;

}  // namespace tdt
