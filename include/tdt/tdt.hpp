// tdt — Trace Driven Data Structure Transformations: public API facade.
//
// This umbrella header (and the per-subsystem facades it includes) is the
// supported surface of the library. Client code — the bundled tools, the
// examples, and external embedders — should include <tdt/tdt.hpp> or the
// individual tdt/*.hpp facades and nothing from src/. Internal headers
// may change layout, split, or disappear between versions; the names
// re-exported by the facades follow TDT_API_VERSION.
//
//   #include "tdt/tdt.hpp"
//
//   tdt::trace::TraceContext ctx;
//   auto records = tdt::open_trace(ctx, "trace.out");
//   auto rules   = tdt::load_rules("t1.rules");
//   auto out     = tdt::transform_trace(rules, ctx, records);
//
//   tdt::CacheHierarchy cache({tdt::cache::paper_direct_mapped()});
//   tdt::TraceCacheSim sim(cache);
//   sim.simulate(out);
#pragma once

// Single integer, bumped on incompatible changes to the facade surface.
#define TDT_API_VERSION 1

#include "tdt/analysis.hpp"
#include "tdt/cache.hpp"
#include "tdt/rules.hpp"
#include "tdt/trace.hpp"
#include "tdt/tracer.hpp"
#include "tdt/util.hpp"
