// Public facade: transformation rules and the trace transformer.
//
// Load a rule file with load_rules(), build RuleSets programmatically via
// core::RuleSet + layout::TypeTable, serialize them back to the rules DSL
// with core::write_rules(), and rewrite traces with TraceTransformer
// (paper §IV).
#pragma once

#include "core/formula.hpp"
#include "core/rule_parser.hpp"
#include "core/rules.hpp"
#include "core/transformer.hpp"
#include "layout/type.hpp"

namespace tdt {

// Supported surface, re-exported at the top level.
using core::RuleSet;
using core::TraceTransformer;
using core::TransformOptions;
using core::TransformStats;
using core::transform_trace;
using core::write_rules;

/// Reads and parses a rule file from disk. Throws Error{Io} when the file
/// cannot be read, Error{Parse}/Error{Semantic} when it is malformed.
inline core::RuleSet load_rules(const std::string& path) {
  return core::parse_rules_file(path);
}

/// Parses rule text (the rules/ DSL).
inline core::RuleSet load_rules_text(std::string_view text) {
  return core::parse_rules(text);
}

}  // namespace tdt
