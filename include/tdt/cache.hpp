// Public facade: cache simulation.
//
// Cache geometry (cache::CacheConfig and the paper presets), multi-level
// hierarchies, the trace-driven simulator sink, one-pass configuration
// sweeps, MESI multicore simulation, and virtual->physical page mapping.
#pragma once

#include "cache/cache.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "cache/multicore.hpp"
#include "cache/page_map.hpp"
#include "cache/sim.hpp"
#include "cache/sweep.hpp"

namespace tdt {

// Supported surface, re-exported at the top level.
using cache::CacheConfig;
using cache::CacheHierarchy;
using cache::ParallelSweep;
using cache::parse_sweep_spec;
using cache::SweepPoint;
using cache::TraceCacheSim;

}  // namespace tdt
