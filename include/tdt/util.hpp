// Public facade: shared utilities.
//
// Error model (tdt::Error), structured diagnostics with the error-
// recovery policies (tdt::DiagEngine, docs/robustness.md), the CLI flag
// parser, text tables, the observability registry with its exporters
// (docs/OBSERVABILITY.md), deterministic fault injection
// (tdt::fault::FaultInjector), and resource governance (tdt::Budget /
// tdt::Governor).
#pragma once

#include "util/crc32.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/flags.hpp"
#include "util/governor.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"

// DiagEngine, Error, FlagParser, TextTable, obs::Registry,
// fault::FaultInjector, Budget, and Governor already live in namespace
// tdt / tdt::obs / tdt::fault; nothing to re-export.
