// Public facade: shared utilities.
//
// Error model (tdt::Error), structured diagnostics with the error-
// recovery policies (tdt::DiagEngine, docs/robustness.md), the CLI flag
// parser, text tables, and the observability registry with its exporters
// (docs/OBSERVABILITY.md).
#pragma once

#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"

// DiagEngine, Error, FlagParser, TextTable, and obs::Registry already
// live in namespace tdt / tdt::obs; nothing to re-export.
