// Public facade: the tdtd service — client sessions, the tdt-rpc/1
// message vocabulary, and the embeddable daemon.
//
// The redesigned tool surface is client/server: `tdtd` keeps the
// reader -> view-DAG -> sweep/autotune pipeline warm behind a
// unix-domain socket, and every batch tool gains `--connect <socket>`
// to route through it with byte-identical stdout and exit codes. This
// header is everything an embedder needs to speak the same protocol:
//
//   Session   — one connection; call(op, args) -> Reply.
//   Request / Reply / RpcStatus — the typed tdt-rpc/1 messages.
//   Daemon / DaemonConfig / OpHandler — run the service in-process.
//   ToolIO / CaptureIO — the stream seam that lets one tool body serve
//                        both the standalone and the daemon path.
//   ResultMemo + memo_eligible/memo_key — the reply cache identity
//                        rules (docs/SERVICE.md).
//
// Include this instead of the internal src/service headers; only the
// names re-exported here (and the nested tdt::service:: names the
// included headers define) are supported API.
#pragma once

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/io.hpp"
#include "service/memo.hpp"
#include "service/protocol.hpp"

namespace tdt {

// Supported surface, re-exported at the top level.
using service::Daemon;
using service::DaemonConfig;
using service::Reply;
using service::Request;
using service::RpcStatus;
using service::Session;
using service::ToolIO;

}  // namespace tdt
