// Public facade: trace input/output.
//
// Everything a client needs to read, write, stream, diff, and summarize
// traces in the three on-disk encodings (Gleipnir text, classic din,
// TDTB binary). Include this instead of the internal src/trace headers;
// only the names re-exported here (and the nested tdt::trace:: names the
// included headers define) are supported API.
#pragma once

#include "trace/binary.hpp"
#include "trace/codec.hpp"
#include "trace/diff.hpp"
#include "trace/din.hpp"
#include "trace/parallel.hpp"
#include "trace/reader.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "trace/source.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "trace/view.hpp"
#include "trace/writer.hpp"

namespace tdt {

// Supported surface, re-exported at the top level.
using trace::AccessKind;
using trace::TraceContext;
using trace::TraceRecord;
using trace::TraceSink;
using trace::VectorSink;

/// Reads a whole trace file into memory (format guessed from the
/// extension). `diags` selects the error-recovery policy; nullptr means
/// strict fail-fast. For traces larger than memory, use
/// trace::stream_trace_file with your own sink instead.
inline std::vector<trace::TraceRecord> open_trace(trace::TraceContext& ctx,
                                                  const std::string& path,
                                                  DiagEngine* diags = nullptr) {
  trace::VectorSink sink;
  trace::stream_trace_file(ctx, path, sink, diags);
  return sink.take();
}

}  // namespace tdt
