// Public facade: trace analysis.
//
// Per-variable / per-set statistics collectors, the transformation
// advisor, experiment harness, and the trace-driven layout autotuner
// (affinity evidence -> candidate rules -> ranked sweep evaluation;
// docs/AUTOTUNE.md).
#pragma once

#include "analysis/advisor.hpp"
#include "analysis/affinity.hpp"
#include "analysis/autotune.hpp"
#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "analysis/set_activity.hpp"
#include "analysis/var_stats.hpp"

namespace tdt {

// Supported surface, re-exported at the top level.
using analysis::AffinityCollector;
using analysis::AffinityOptions;
using analysis::Autotuner;
using analysis::AutotuneOptions;

}  // namespace tdt
