#include "tracer/interp.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "util/error.hpp"

namespace tdt::tracer {
namespace {

using trace::AccessKind;
using trace::TraceRecord;
using trace::VarScope;

struct TraceRun {
  layout::TypeTable types;
  trace::TraceContext ctx;
  std::vector<TraceRecord> records;

  explicit TraceRun(const std::function<Program(layout::TypeTable&)>& make,
               InterpOptions options = {}) {
    records = run_program(types, ctx, make(types), options);
  }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    for (const TraceRecord& r : records) out.push_back(ctx.format_record(r));
    return out;
  }
};

Program simple_main(std::vector<StmtPtr> body) {
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

TEST(Interp, ScalarStoreEmitsOneRecord) {
  TraceRun run([](layout::TypeTable& t) {
    std::vector<StmtPtr> body;
    body.push_back(start_instr());
    body.push_back(decl_local("x", t.int_type()));
    body.push_back(assign(LValue("x"), lit(5)));
    body.push_back(stop_instr());
    return simple_main(std::move(body));
  });
  // _zzq store+load, then S x.
  ASSERT_EQ(run.records.size(), 3u);
  EXPECT_EQ(run.records[2].kind, AccessKind::Store);
  EXPECT_EQ(run.records[2].size, 4u);
  EXPECT_EQ(run.ctx.format_var(run.records[2].var), "x");
  EXPECT_EQ(run.records[2].scope, VarScope::LocalVariable);
}

TEST(Interp, ZzqMarkerCanBeDisabled) {
  InterpOptions opts;
  opts.emit_zzq_marker = false;
  TraceRun run(
      [](layout::TypeTable& t) {
        std::vector<StmtPtr> body;
        body.push_back(start_instr());
        body.push_back(decl_local("x", t.int_type()));
        body.push_back(assign(LValue("x"), lit(5)));
        body.push_back(stop_instr());
        return simple_main(std::move(body));
      },
      opts);
  ASSERT_EQ(run.records.size(), 1u);
}

TEST(Interp, InstrumentationWindowGatesEmission) {
  TraceRun run([](layout::TypeTable& t) {
    std::vector<StmtPtr> body;
    body.push_back(decl_local("x", t.int_type()));
    body.push_back(assign(LValue("x"), lit(1)));  // before START: silent
    body.push_back(start_instr());
    body.push_back(assign(LValue("x"), lit(2)));
    body.push_back(stop_instr());
    body.push_back(assign(LValue("x"), lit(3)));  // after STOP: silent
    return simple_main(std::move(body));
  });
  std::size_t stores = 0;
  for (const TraceRecord& r : run.records) {
    if (r.kind == AccessKind::Store &&
        run.ctx.format_var(r.var) == "x") {
      ++stores;
    }
  }
  EXPECT_EQ(stores, 1u);
}

TEST(Interp, ExecutionContinuesWhileSilent) {
  // Values written before START must be visible after START.
  TraceRun run([](layout::TypeTable& t) {
    std::vector<StmtPtr> body;
    body.push_back(decl_local("x", t.int_type()));
    body.push_back(decl_local("y", t.int_type()));
    body.push_back(assign(LValue("x"), lit(41)));
    body.push_back(start_instr());
    body.push_back(assign(LValue("y"), add(rd("x"), lit(1))));
    body.push_back(stop_instr());
    return simple_main(std::move(body));
  });
  // Find the load of x: its value influenced nothing visible, but the
  // store to y exists; correctness is checked via no throw + record count.
  bool saw_load_x = false;
  for (const TraceRecord& r : run.records) {
    if (r.kind == AccessKind::Load && run.ctx.format_var(r.var) == "x") {
      saw_load_x = true;
    }
  }
  EXPECT_TRUE(saw_load_x);
}

TEST(Interp, LoopEmitsPaperPattern) {
  // for (i=0;i<2;i++) arr[i] = g;  — paper Listing 2 lines 6-17.
  TraceRun run([](layout::TypeTable& t) {
    Program prog;
    prog.globals.push_back({"g", t.int_type()});
    FunctionDef main_fn;
    main_fn.name = "main";
    std::vector<StmtPtr> body;
    body.push_back(decl_local("arr", t.array_of(t.int_type(), 10)));
    body.push_back(decl_local("i", t.int_type()));
    body.push_back(start_instr());
    std::vector<StmtPtr> loop;
    loop.push_back(assign(LValue("arr").index(rd("i")), rd("g")));
    body.push_back(count_loop("i", lit(2), block(std::move(loop))));
    body.push_back(stop_instr());
    main_fn.body = block(std::move(body));
    prog.functions.push_back(std::move(main_fn));
    return prog;
  });
  // Skip the 2 zzq records; then: S i(init), [L i(cond), L g, L i(idx),
  // S arr[i], M i] x2, L i(final cond).
  const auto& r = run.records;
  ASSERT_EQ(r.size(), 2 + 1 + 2 * 5 + 1);
  std::size_t k = 2;
  EXPECT_EQ(r[k].kind, AccessKind::Store);   // i = 0
  EXPECT_EQ(run.ctx.format_var(r[k].var), "i");
  ++k;
  for (int iter = 0; iter < 2; ++iter) {
    EXPECT_EQ(r[k].kind, AccessKind::Load);  // cond i
    EXPECT_EQ(run.ctx.format_var(r[k].var), "i");
    ++k;
    EXPECT_EQ(r[k].kind, AccessKind::Load);  // g
    EXPECT_EQ(run.ctx.format_var(r[k].var), "g");
    EXPECT_EQ(r[k].scope, VarScope::GlobalVariable);
    ++k;
    EXPECT_EQ(r[k].kind, AccessKind::Load);  // index i
    ++k;
    EXPECT_EQ(r[k].kind, AccessKind::Store);  // arr[iter]
    EXPECT_EQ(run.ctx.format_var(r[k].var),
              "arr[" + std::to_string(iter) + "]");
    EXPECT_EQ(r[k].scope, VarScope::LocalStructure);
    ++k;
    EXPECT_EQ(r[k].kind, AccessKind::Modify);  // i++
    ++k;
  }
  EXPECT_EQ(r[k].kind, AccessKind::Load);  // final cond
}

TEST(Interp, ModifyAccumulates) {
  TraceRun run([](layout::TypeTable& t) {
    std::vector<StmtPtr> body;
    body.push_back(decl_local("acc", t.int_type()));
    body.push_back(decl_local("out", t.int_type()));
    body.push_back(assign(LValue("acc"), lit(1)));
    body.push_back(modify(LValue("acc"), lit(2)));
    body.push_back(modify(LValue("acc"), lit(3)));
    body.push_back(start_instr());
    body.push_back(assign(LValue("out"), rd("acc")));
    body.push_back(stop_instr());
    return simple_main(std::move(body));
  });
  // We can't read interpreter memory directly; but modifies must appear as
  // M records when instrumented. Re-run instrumented from the start:
  InterpOptions opts;
  opts.start_enabled = true;
  opts.emit_zzq_marker = false;
  TraceRun run2(
      [](layout::TypeTable& t) {
        std::vector<StmtPtr> body;
        body.push_back(decl_local("acc", t.int_type()));
        body.push_back(assign(LValue("acc"), lit(1)));
        body.push_back(modify(LValue("acc"), lit(2)));
        return simple_main(std::move(body));
      },
      opts);
  ASSERT_EQ(run2.records.size(), 2u);
  EXPECT_EQ(run2.records[1].kind, AccessKind::Modify);
}

TEST(Interp, PointerArrowInsertsPointerLoad) {
  InterpOptions opts;
  opts.start_enabled = true;
  opts.emit_zzq_marker = false;
  TraceRun run(
      [](layout::TypeTable& t) {
        const auto node = t.define_struct(
            "N", {{"v", t.int_type()}, {"w", t.int_type()}});
        std::vector<StmtPtr> body;
        body.push_back(decl_local("storage", t.array_of(node, 4)));
        body.push_back(decl_local("p", t.pointer_to(node)));
        body.push_back(decl_local("x", t.int_type()));
        body.push_back(assign(LValue("p"), rd("storage")));  // decay
        body.push_back(assign(LValue("x"), rd(LValue("p").arrow("v"))));
        return simple_main(std::move(body));
      },
      opts);
  // S p; L p (arrow), L storage[0].v, S x.
  ASSERT_EQ(run.records.size(), 4u);
  EXPECT_EQ(run.ctx.format_var(run.records[1].var), "p");
  EXPECT_EQ(run.records[1].size, 8u);
  EXPECT_EQ(run.ctx.format_var(run.records[2].var), "storage[0].v");
  EXPECT_EQ(run.ctx.format_var(run.records[3].var), "x");
}

TEST(Interp, PointerIndexingScalesByElementSize) {
  InterpOptions opts;
  opts.start_enabled = true;
  opts.emit_zzq_marker = false;
  TraceRun run(
      [](layout::TypeTable& t) {
        std::vector<StmtPtr> body;
        body.push_back(decl_local("arr", t.array_of(t.double_type(), 8)));
        body.push_back(decl_local("p", t.pointer_to(t.double_type())));
        body.push_back(assign(LValue("p"), rd("arr")));
        body.push_back(assign(LValue("p").index(lit(3)), real_lit(1.5)));
        return simple_main(std::move(body));
      },
      opts);
  // S p, L p, S arr[3]
  ASSERT_EQ(run.records.size(), 3u);
  EXPECT_EQ(run.ctx.format_var(run.records[2].var), "arr[3]");
  EXPECT_EQ(run.records[2].size, 8u);
}

TEST(Interp, CallBindsParamsAndTracksFrames) {
  TraceRun run([](layout::TypeTable& t) {
    Program prog;
    FunctionDef callee;
    callee.name = "callee";
    callee.params = {{"param", t.int_type()}};
    {
      std::vector<StmtPtr> body;
      body.push_back(decl_local("local", t.int_type()));
      body.push_back(assign(LValue("local"), rd("param")));
      callee.body = block(std::move(body));
    }
    FunctionDef main_fn;
    main_fn.name = "main";
    {
      std::vector<StmtPtr> body;
      body.push_back(start_instr());
      std::vector<ExprPtr> args;
      args.push_back(lit(9));
      body.push_back(call("callee", std::move(args)));
      body.push_back(stop_instr());
      main_fn.body = block(std::move(body));
    }
    prog.functions.push_back(std::move(callee));
    prog.functions.push_back(std::move(main_fn));
    return prog;
  });
  // Records from callee must carry the callee's name; param store frame 0.
  bool saw_param_store = false, saw_unannotated_overhead = false;
  for (const TraceRecord& r : run.records) {
    if (!r.var.empty() && run.ctx.format_var(r.var) == "param") {
      EXPECT_EQ(run.ctx.name(r.function), "callee");
      EXPECT_EQ(r.frame, 0u);
      saw_param_store = true;
    }
    if (r.var.empty() && r.size == 8) saw_unannotated_overhead = true;
  }
  EXPECT_TRUE(saw_param_store);
  EXPECT_TRUE(saw_unannotated_overhead);
}

TEST(Interp, CalleeAccessToCallerLocalShowsFrameDistance) {
  // Paper Listing 2 line 34: foo writing main's lcStrcArray shows frame 1.
  TraceRun run([](layout::TypeTable& t) {
    Program prog;
    FunctionDef callee;
    callee.name = "foo";
    callee.params = {{"ptr", t.pointer_to(t.int_type())}};
    {
      std::vector<StmtPtr> body;
      body.push_back(assign(LValue("ptr").index(lit(0)), lit(7)));
      callee.body = block(std::move(body));
    }
    FunctionDef main_fn;
    main_fn.name = "main";
    {
      std::vector<StmtPtr> body;
      body.push_back(decl_local("buf", t.array_of(t.int_type(), 4)));
      body.push_back(start_instr());
      std::vector<ExprPtr> args;
      args.push_back(rd("buf"));
      body.push_back(call("foo", std::move(args)));
      body.push_back(stop_instr());
      main_fn.body = block(std::move(body));
    }
    prog.functions.push_back(std::move(callee));
    prog.functions.push_back(std::move(main_fn));
    return prog;
  });
  bool saw = false;
  for (const TraceRecord& r : run.records) {
    if (!r.var.empty() && run.ctx.format_var(r.var) == "buf[0]") {
      EXPECT_EQ(run.ctx.name(r.function), "foo");
      EXPECT_EQ(r.frame, 1u);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(Interp, HeapAllocNamedAndFreed) {
  InterpOptions opts;
  opts.start_enabled = true;
  opts.emit_zzq_marker = false;
  TraceRun run(
      [](layout::TypeTable& t) {
        std::vector<StmtPtr> body;
        body.push_back(decl_local("p", t.pointer_to(t.int_type())));
        body.push_back(heap_alloc(LValue("p"), t.int_type(), lit(8)));
        body.push_back(assign(LValue("p").index(lit(2)), lit(5)));
        body.push_back(heap_free(LValue("p")));
        return simple_main(std::move(body));
      },
      opts);
  bool saw_heap_store = false;
  for (const TraceRecord& r : run.records) {
    if (r.kind == AccessKind::Store && !r.var.empty()) {
      const std::string name = run.ctx.format_var(r.var);
      if (name.find("heap#0[2]") != std::string::npos) saw_heap_store = true;
    }
  }
  EXPECT_TRUE(saw_heap_store);
}

TEST(Interp, ErrorsOnUndeclaredVariable) {
  EXPECT_THROW(TraceRun run([](layout::TypeTable&) {
    std::vector<StmtPtr> body;
    body.push_back(assign(LValue("ghost"), lit(1)));
    return simple_main(std::move(body));
  }), Error);
}

TEST(Interp, ErrorsOnMissingMain) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  Program prog;
  EXPECT_THROW((void)run_program(types, ctx, prog), Error);
}

TEST(Interp, ErrorsOnBadSelector) {
  EXPECT_THROW(TraceRun run([](layout::TypeTable& t) {
    std::vector<StmtPtr> body;
    body.push_back(decl_local("x", t.int_type()));
    body.push_back(assign(LValue("x").field("nofield"), lit(1)));
    return simple_main(std::move(body));
  }), Error);
}

TEST(Interp, ErrorsOnUnknownCallee) {
  EXPECT_THROW(TraceRun run([](layout::TypeTable&) {
    std::vector<StmtPtr> body;
    body.push_back(call("ghost_fn", {}));
    return simple_main(std::move(body));
  }), Error);
}

TEST(Interp, ErrorsOnArityMismatch) {
  EXPECT_THROW(TraceRun run([](layout::TypeTable& t) {
    Program prog;
    FunctionDef f;
    f.name = "f";
    f.params = {{"a", t.int_type()}};
    f.body = block({});
    prog.functions.push_back(std::move(f));
    FunctionDef main_fn;
    main_fn.name = "main";
    std::vector<StmtPtr> body;
    body.push_back(call("f", {}));
    main_fn.body = block(std::move(body));
    prog.functions.push_back(std::move(main_fn));
    return prog;
  }), Error);
}

TEST(Interp, DivisionByZeroCaught) {
  EXPECT_THROW(TraceRun run([](layout::TypeTable& t) {
    std::vector<StmtPtr> body;
    body.push_back(decl_local("x", t.int_type()));
    body.push_back(assign(LValue("x"), div(lit(1), lit(0))));
    return simple_main(std::move(body));
  }), Error);
}

TEST(Interp, RecordBudgetEnforced) {
  InterpOptions opts;
  opts.start_enabled = true;
  opts.emit_zzq_marker = false;
  opts.max_records = 10;
  EXPECT_THROW(TraceRun run(
                   [](layout::TypeTable& t) {
                     std::vector<StmtPtr> body;
                     body.push_back(decl_local("i", t.int_type()));
                     body.push_back(decl_local("x", t.int_type()));
                     std::vector<StmtPtr> loop;
                     loop.push_back(assign(LValue("x"), lit(1)));
                     body.push_back(
                         count_loop("i", lit(1000), block(std::move(loop))));
                     return simple_main(std::move(body));
                   },
                   opts),
               Error);
}

TEST(Interp, CastsProduceDeclaredSizes) {
  InterpOptions opts;
  opts.start_enabled = true;
  opts.emit_zzq_marker = false;
  TraceRun run(
      [](layout::TypeTable& t) {
        std::vector<StmtPtr> body;
        body.push_back(decl_local("i", t.int_type()));
        body.push_back(decl_local("d", t.double_type()));
        body.push_back(assign(LValue("d"), cast_real(rd("i"))));
        body.push_back(assign(LValue("i"), cast_int(rd("d"))));
        return simple_main(std::move(body));
      },
      opts);
  // L i, S d(8), L d, S i(4)
  ASSERT_EQ(run.records.size(), 4u);
  EXPECT_EQ(run.records[1].size, 8u);
  EXPECT_EQ(run.records[3].size, 4u);
}

}  // namespace
}  // namespace tdt::tracer
