// if / while statements in the mini-language and the kernel source
// parser (beyond the paper's listings, which only use for-loops).
#include <gtest/gtest.h>

#include "tracer/interp.hpp"
#include "tracer/parser.hpp"
#include "util/error.hpp"

namespace tdt::tracer {
namespace {

using trace::AccessKind;

std::vector<trace::TraceRecord> run_source(const char* source,
                                           trace::TraceContext& ctx) {
  layout::TypeTable types;
  return run_program(types, ctx, parse_kernel(source, types));
}

std::size_t count_stores_to(const trace::TraceContext& ctx,
                            const std::vector<trace::TraceRecord>& records,
                            const std::string& var) {
  std::size_t n = 0;
  for (const trace::TraceRecord& r : records) {
    if (r.kind == AccessKind::Store && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == var) {
      ++n;
    }
  }
  return n;
}

TEST(ControlFlow, IfTakenBranchTraced) {
  trace::TraceContext ctx;
  const auto records = run_source(R"(
int main(void) {
  int x;
  int taken;
  int skipped;
  GLEIPNIR_START_INSTRUMENTATION;
  x = 1;
  if (x == 1) {
    taken = 1;
  } else {
    skipped = 1;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
                                  ctx);
  EXPECT_EQ(count_stores_to(ctx, records, "taken"), 1u);
  EXPECT_EQ(count_stores_to(ctx, records, "skipped"), 0u);
}

TEST(ControlFlow, ElseBranchTraced) {
  trace::TraceContext ctx;
  const auto records = run_source(R"(
int main(void) {
  int x;
  int taken;
  int skipped;
  GLEIPNIR_START_INSTRUMENTATION;
  x = 2;
  if (x == 1) {
    taken = 1;
  } else {
    skipped = 1;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
                                  ctx);
  EXPECT_EQ(count_stores_to(ctx, records, "taken"), 0u);
  EXPECT_EQ(count_stores_to(ctx, records, "skipped"), 1u);
}

TEST(ControlFlow, IfWithoutElse) {
  trace::TraceContext ctx;
  const auto records = run_source(R"(
int main(void) {
  int x;
  int y;
  GLEIPNIR_START_INSTRUMENTATION;
  x = 0;
  if (x != 0)
    y = 1;
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
                                  ctx);
  EXPECT_EQ(count_stores_to(ctx, records, "y"), 0u);
}

TEST(ControlFlow, WhileLoopRunsUntilFalse) {
  trace::TraceContext ctx;
  const auto records = run_source(R"(
int main(void) {
  int i;
  int sink;
  GLEIPNIR_START_INSTRUMENTATION;
  i = 0;
  while (i < 5) {
    sink = i;
    i++;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
                                  ctx);
  EXPECT_EQ(count_stores_to(ctx, records, "sink"), 5u);
}

TEST(ControlFlow, WhileConditionLoadsTraced) {
  // Pointer chasing: `while (p != 0) { p = p->next; }`-style loops are the
  // canonical use — each condition evaluation loads p.
  trace::TraceContext ctx;
  const auto records = run_source(R"(
typedef struct { int v; } Node;
int main(void) {
  int n;
  GLEIPNIR_START_INSTRUMENTATION;
  n = 3;
  while (n > 0) {
    n = n - 1;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
                                  ctx);
  // Condition evaluated 4 times -> 4 loads of n.
  std::size_t loads = 0;
  for (const auto& r : records) {
    if (r.kind == AccessKind::Load && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "n") {
      ++loads;
    }
  }
  // 4 condition loads + 3 RHS loads of the decrement.
  EXPECT_EQ(loads, 7u);
}

TEST(ControlFlow, BuilderApiIfWhile) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("i", types.int_type()));
  body.push_back(decl_local("even", types.int_type()));
  body.push_back(start_instr());
  body.push_back(assign(LValue("i"), lit(0)));
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(if_stmt(
      bin(Expr::Op::Eq, mod(rd("i"), lit(2)), lit(0)),
      modify(LValue("even"), lit(1))));
  loop_body.push_back(modify(LValue("i"), lit(1)));
  body.push_back(
      while_loop(lt(rd("i"), lit(6)), block(std::move(loop_body))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));

  const auto records = run_program(types, ctx, prog);
  std::size_t even_modifies = 0;
  for (const auto& r : records) {
    if (r.kind == AccessKind::Modify && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "even") {
      ++even_modifies;
    }
  }
  EXPECT_EQ(even_modifies, 3u);  // i = 0, 2, 4
}

}  // namespace
}  // namespace tdt::tracer
