#include "tracer/kernels.hpp"

#include <gtest/gtest.h>

#include "tracer/interp.hpp"

namespace tdt::tracer {
namespace {

using trace::AccessKind;
using trace::TraceRecord;

struct Kernel {
  layout::TypeTable types;
  trace::TraceContext ctx;
  std::vector<TraceRecord> records;
};

Kernel run(const std::function<Program(layout::TypeTable&)>& make) {
  Kernel k;
  k.records = run_program(k.types, k.ctx, make(k.types));
  return k;
}

std::size_t count_var(const Kernel& k, const std::string& base,
                      AccessKind kind) {
  std::size_t n = 0;
  for (const TraceRecord& r : k.records) {
    if (r.kind == kind && !r.var.empty() &&
        std::string(k.ctx.name(r.var.base)) == base) {
      ++n;
    }
  }
  return n;
}

TEST(Kernels, T1SoAStoresEveryElementOnce) {
  auto k = run([](layout::TypeTable& t) { return make_t1_soa(t, 16); });
  EXPECT_EQ(count_var(k, "lSoA", AccessKind::Store), 32u);  // mX + mY
  // Element stores alternate mX (4B) and mY (8B).
  std::vector<std::uint32_t> sizes;
  for (const TraceRecord& r : k.records) {
    if (r.kind == AccessKind::Store && !r.var.empty() &&
        std::string(k.ctx.name(r.var.base)) == "lSoA") {
      sizes.push_back(r.size);
    }
  }
  for (std::size_t i = 0; i < sizes.size(); i += 2) {
    EXPECT_EQ(sizes[i], 4u);
    EXPECT_EQ(sizes[i + 1], 8u);
  }
}

TEST(Kernels, T1SoAFieldArraysAreDisjointRegions) {
  auto k = run([](layout::TypeTable& t) { return make_t1_soa(t, 16); });
  std::uint64_t max_mx = 0, min_my = ~0ull;
  for (const TraceRecord& r : k.records) {
    if (r.var.empty() || std::string(k.ctx.name(r.var.base)) != "lSoA") {
      continue;
    }
    const std::string var = k.ctx.format_var(r.var);
    if (var.find(".mX") != std::string::npos) {
      max_mx = std::max(max_mx, r.address);
    } else {
      min_my = std::min(min_my, r.address);
    }
  }
  EXPECT_LT(max_mx, min_my);  // SoA: all mX below all mY
}

TEST(Kernels, T1AoSInterleavesFields) {
  auto k = run([](layout::TypeTable& t) { return make_t1_aos(t, 16); });
  EXPECT_EQ(count_var(k, "lAoS", AccessKind::Store), 32u);
  // Per element, mX and mY are 8 bytes apart (same 16-byte struct).
  std::uint64_t last_mx = 0;
  for (const TraceRecord& r : k.records) {
    if (r.var.empty() || std::string(k.ctx.name(r.var.base)) != "lAoS") {
      continue;
    }
    const std::string var = k.ctx.format_var(r.var);
    if (var.find(".mX") != std::string::npos) {
      last_mx = r.address;
    } else {
      EXPECT_EQ(r.address, last_mx + 8);
    }
  }
}

TEST(Kernels, T2InlineTouchesNestedFields) {
  auto k = run([](layout::TypeTable& t) { return make_t2_inline(t, 8); });
  EXPECT_EQ(count_var(k, "lS1", AccessKind::Store), 24u);  // 3 per element
  bool saw_nested = false;
  for (const TraceRecord& r : k.records) {
    if (!r.var.empty() &&
        k.ctx.format_var(r.var).find(".mRarelyUsed.mY") != std::string::npos) {
      saw_nested = true;
    }
  }
  EXPECT_TRUE(saw_nested);
}

TEST(Kernels, T2OutlinedLoadsPointerPerColdAccess) {
  auto k = run([](layout::TypeTable& t) { return make_t2_outlined(t, 8); });
  // Two cold accesses per element, each preceded by a pointer load.
  EXPECT_EQ(count_var(k, "lS2", AccessKind::Load), 16u);
  EXPECT_EQ(count_var(k, "lStorageForRarelyUsed", AccessKind::Store), 16u);
  EXPECT_EQ(count_var(k, "lS2", AccessKind::Store), 8u);  // hot stores
  // Pointer setup ran before instrumentation: no stores to .mRarelyUsed.
  for (const TraceRecord& r : k.records) {
    if (r.kind != AccessKind::Store || r.var.empty()) continue;
    EXPECT_EQ(k.ctx.format_var(r.var).find("mRarelyUsed"), std::string::npos)
        << k.ctx.format_record(r);
  }
}

TEST(Kernels, T3ContiguousSequentialAddresses) {
  auto k = run([](layout::TypeTable& t) { return make_t3_contiguous(t, 64); });
  std::uint64_t prev = 0;
  bool first = true;
  for (const TraceRecord& r : k.records) {
    if (r.var.empty() ||
        std::string(k.ctx.name(r.var.base)) != "lContiguousArray") {
      continue;
    }
    if (!first) {
      EXPECT_EQ(r.address, prev + 4);
    }
    prev = r.address;
    first = false;
  }
  EXPECT_EQ(count_var(k, "lContiguousArray", AccessKind::Store), 64u);
}

TEST(Kernels, T3StridedUsesFormulaAndReadsItemsPerLine) {
  auto k = run([](layout::TypeTable& t) {
    return make_t3_strided(t, 64, 16, 32);
  });
  EXPECT_EQ(count_var(k, "lSetHashingArray", AccessKind::Store), 64u);
  // Three ITEMSPERLINE loads per store (div, mul, mod).
  EXPECT_EQ(count_var(k, "lITEMSPERLINE", AccessKind::Load), 192u);
  // Stride: store i=8 lands 512 bytes after store i=0.
  std::vector<std::uint64_t> addrs;
  for (const TraceRecord& r : k.records) {
    if (r.kind == AccessKind::Store && !r.var.empty() &&
        std::string(k.ctx.name(r.var.base)) == "lSetHashingArray") {
      addrs.push_back(r.address);
    }
  }
  ASSERT_GE(addrs.size(), 9u);
  EXPECT_EQ(addrs[1], addrs[0] + 4);   // within a line: contiguous
  EXPECT_EQ(addrs[8], addrs[0] + 512); // next line: jumps 16*32 bytes
}

TEST(Kernels, Listing1MatchesPaperTraceShape) {
  auto k = run([](layout::TypeTable& t) { return make_listing1(t); });
  // The paper's Listing 2 shows: glScalar store, foo's stores to
  // glStructArray[i].dl and lcStrcArray[i].dl through the pointer param.
  EXPECT_EQ(count_var(k, "glScalar", AccessKind::Store), 1u);
  EXPECT_EQ(count_var(k, "glStructArray", AccessKind::Store), 4u);
  EXPECT_EQ(count_var(k, "lcStrcArray", AccessKind::Store), 2u);
  EXPECT_EQ(count_var(k, "lcArray", AccessKind::Store), 2u);
  // StrcParam pointer loads appear (trace line 31 of Listing 2).
  EXPECT_GE(count_var(k, "StrcParam", AccessKind::Load), 2u);
  // foo's stores to lcStrcArray are attributed to foo at frame distance 1.
  for (const TraceRecord& r : k.records) {
    if (r.kind == AccessKind::Store && !r.var.empty() &&
        std::string(k.ctx.name(r.var.base)) == "lcStrcArray") {
      EXPECT_EQ(k.ctx.name(r.function), "foo");
      EXPECT_EQ(r.frame, 1u);
    }
  }
}

TEST(Kernels, MatmulOrdersTouchSameElements) {
  auto ijk = run([](layout::TypeTable& t) { return make_matmul(t, 4, false); });
  auto ikj = run([](layout::TypeTable& t) { return make_matmul(t, 4, true); });
  // Same work, same record count, different order.
  EXPECT_EQ(ijk.records.size(), ikj.records.size());
  EXPECT_EQ(count_var(ijk, "C", AccessKind::Modify), 64u);
  EXPECT_EQ(count_var(ikj, "C", AccessKind::Modify), 64u);
}

TEST(Kernels, RowVsColumnOrderStridePattern) {
  auto row = run([](layout::TypeTable& t) { return make_row_col(t, 4, 8, false); });
  auto col = run([](layout::TypeTable& t) { return make_row_col(t, 4, 8, true); });
  auto stores = [](const Kernel& k) {
    std::vector<std::uint64_t> out;
    for (const TraceRecord& r : k.records) {
      if (r.kind == AccessKind::Store && !r.var.empty() &&
          std::string(k.ctx.name(r.var.base)) == "M") {
        out.push_back(r.address);
      }
    }
    return out;
  };
  const auto rs = stores(row);
  const auto cs = stores(col);
  ASSERT_EQ(rs.size(), 32u);
  ASSERT_EQ(cs.size(), 32u);
  EXPECT_EQ(rs[1] - rs[0], 4u);        // row-major: unit stride
  EXPECT_EQ(cs[1] - cs[0], 8u * 4u);   // column order: row stride
}

TEST(Kernels, LinkedListWalksAllNodes) {
  auto k = run([](layout::TypeTable& t) {
    return make_linked_list(t, 32, false);
  });
  // One value load and one next load per node.
  std::size_t value_loads = 0, next_loads = 0;
  for (const TraceRecord& r : k.records) {
    if (r.kind != AccessKind::Load || r.var.empty()) continue;
    const std::string var = k.ctx.format_var(r.var);
    if (var.find(".value") != std::string::npos) ++value_loads;
    if (var.find(".next") != std::string::npos) ++next_loads;
  }
  EXPECT_EQ(value_loads, 32u);
  EXPECT_EQ(next_loads, 32u);
}

TEST(Kernels, ShuffledListVisitsSameNodesDifferentOrder) {
  auto seq = run([](layout::TypeTable& t) {
    return make_linked_list(t, 64, false);
  });
  auto shuf = run([](layout::TypeTable& t) {
    return make_linked_list(t, 64, true, 7);
  });
  auto value_addrs = [](const Kernel& k) {
    std::vector<std::uint64_t> out;
    for (const TraceRecord& r : k.records) {
      if (r.kind == AccessKind::Load && !r.var.empty() &&
          k.ctx.format_var(r.var).find(".value") != std::string::npos) {
        out.push_back(r.address);
      }
    }
    return out;
  };
  auto a = value_addrs(seq);
  auto b = value_addrs(shuf);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);  // different visit order
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same node set
}

TEST(Kernels, SharedTypeTableReuseDoesNotThrow) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  (void)make_t1_soa(types, 8);
  (void)make_t1_soa(types, 8);  // re-registering MyStructOfArrays is fine
  (void)make_t1_aos(types, 8);
  (void)make_t2_inline(types, 8);
  (void)make_t2_outlined(types, 8);
  SUCCEED();
}

}  // namespace
}  // namespace tdt::tracer
