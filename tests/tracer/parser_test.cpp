#include "tracer/parser.hpp"

#include <gtest/gtest.h>

#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "util/error.hpp"

namespace tdt::tracer {
namespace {

std::string trace_of(const Program& prog, layout::TypeTable& types) {
  trace::TraceContext ctx;
  return trace::write_trace_string(ctx, run_program(types, ctx, prog), 1);
}

std::string trace_of_source(const char* source) {
  layout::TypeTable types;
  return trace_of(parse_kernel(source, types), types);
}

TEST(KernelParser, MinimalMain) {
  const auto trace = trace_of_source(R"(
int main(void) {
  int x;
  GLEIPNIR_START_INSTRUMENTATION;
  x = 5;
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  EXPECT_NE(trace.find("S "), std::string::npos);
  EXPECT_NE(trace.find(" x"), std::string::npos);
}

TEST(KernelParser, ListingSourcesMatchBuilderKernels) {
  // The paper listings written as C source must trace byte-identically to
  // the programmatically built kernels (same declarations in the same
  // order, same evaluation semantics).
  struct Case {
    const char* source;
    Program (*make)(layout::TypeTable&, std::int64_t);
  };
  const std::int64_t kLen = 16;
  const Case cases[] = {
      {R"(
int main(int aArgc, char **aArgv) {
  typedef struct { int mX[16]; double mY[16]; } MyStructOfArrays;
  MyStructOfArrays lSoA;
  int lI;
  GLEIPNIR_START_INSTRUMENTATION;
  for (lI = 0; lI < 16; lI++) {
    lSoA.mX[lI] = (int)lI;
    lSoA.mY[lI] = (double)lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
)",
       &make_t1_soa},
      {R"(
int main(int aArgc, char **aArgv) {
  typedef struct { int mX; double mY; } MyStruct;
  MyStruct lAoS[16];
  int lI;
  GLEIPNIR_START_INSTRUMENTATION;
  for (lI = 0; lI < 16; lI++) {
    lAoS[lI].mX = (int)lI;
    lAoS[lI].mY = (double)lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
       &make_t1_aos},
      {R"(
int main(int aArgc, char **aArgv) {
  typedef struct {
    int mFrequentlyUsed;
    struct { double mY; int mZ; } mRarelyUsed;
  } MyInlineStruct;
  MyInlineStruct lS1[16];
  int lI;
  GLEIPNIR_START_INSTRUMENTATION;
  for (lI = 0; lI < 16; lI++) {
    lS1[lI].mFrequentlyUsed = lI;
    lS1[lI].mRarelyUsed.mY = lI;
    lS1[lI].mRarelyUsed.mZ = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
)",
       &make_t2_inline},
      {R"(
int main(int aArgc, char **aArgv) {
  int lContiguousArray[16];
  int lI;
  GLEIPNIR_START_INSTRUMENTATION;
  for (lI = 0; lI < 16; lI++) {
    lContiguousArray[lI] = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
)",
       &make_t3_contiguous},
  };
  for (const Case& c : cases) {
    layout::TypeTable source_types;
    const std::string from_source =
        trace_of(parse_kernel(c.source, source_types), source_types);
    layout::TypeTable builder_types;
    const std::string from_builder =
        trace_of(c.make(builder_types, kLen), builder_types);
    EXPECT_EQ(from_source, from_builder);
  }
}

TEST(KernelParser, T2OutlinedSourceMatchesBuilder) {
  const char* source = R"(
int main(int aArgc, char **aArgv) {
  typedef struct { double mY; int mZ; } RarelyUsed;
  typedef struct {
    int mFrequentlyUsed;
    RarelyUsed *mRarelyUsed;
  } MyOutlinedStruct;
  RarelyUsed lStorageForRarelyUsed[16];
  MyOutlinedStruct lS2[16];
  int lI;
  for (lI = 0; lI < 16; lI++) {
    lS2[lI].mRarelyUsed = lStorageForRarelyUsed + lI;
  }
  GLEIPNIR_START_INSTRUMENTATION;
  for (lI = 0; lI < 16; lI++) {
    lS2[lI].mFrequentlyUsed = lI;
    lS2[lI].mRarelyUsed->mY = lI;
    lS2[lI].mRarelyUsed->mZ = lI;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return (0);
}
)";
  layout::TypeTable source_types;
  const std::string from_source =
      trace_of(parse_kernel(source, source_types), source_types);
  layout::TypeTable builder_types;
  const std::string from_builder =
      trace_of(make_t2_outlined(builder_types, 16), builder_types);
  EXPECT_EQ(from_source, from_builder);
}

TEST(KernelParser, DefinesExpandEverywhere) {
  const auto trace = trace_of_source(R"(
#define LEN 4
#define BIAS 2
int main(void) {
  int arr[LEN * 2];
  int lI;
  GLEIPNIR_START_INSTRUMENTATION;
  for (lI = 0; lI < LEN; lI++) {
    arr[lI + BIAS] = LEN;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  EXPECT_NE(trace.find("arr[2]"), std::string::npos);
  EXPECT_NE(trace.find("arr[5]"), std::string::npos);
}

TEST(KernelParser, SizeofAndConst) {
  const auto trace = trace_of_source(R"(
int main(void) {
  const int lITEMSPERLINE = 32 / sizeof(int);
  int out;
  GLEIPNIR_START_INSTRUMENTATION;
  out = lITEMSPERLINE;
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  EXPECT_NE(trace.find("L "), std::string::npos);
  EXPECT_NE(trace.find("lITEMSPERLINE"), std::string::npos);
}

TEST(KernelParser, FloatLiteralsAndCompoundAssign) {
  const auto trace = trace_of_source(R"(
int main(void) {
  double d;
  GLEIPNIR_START_INSTRUMENTATION;
  d = 1.5;
  d += 2.25;
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  // Store then modify of the 8-byte double.
  EXPECT_NE(trace.find("S "), std::string::npos);
  EXPECT_NE(trace.find("M "), std::string::npos);
}

TEST(KernelParser, MallocAndFree) {
  const auto trace = trace_of_source(R"(
int main(void) {
  int *p;
  p = malloc(8 * sizeof(int));
  GLEIPNIR_START_INSTRUMENTATION;
  p[3] = 7;
  GLEIPNIR_STOP_INSTRUMENTATION;
  free(p);
  return 0;
}
)");
  EXPECT_NE(trace.find("heap#0[3]"), std::string::npos);
}

TEST(KernelParser, MallocSizeofFirst) {
  const auto trace = trace_of_source(R"(
int main(void) {
  double *p;
  p = malloc(sizeof(double) * 4);
  GLEIPNIR_START_INSTRUMENTATION;
  p[1] = 2.0;
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  EXPECT_NE(trace.find("heap#0[1]"), std::string::npos);
}

TEST(KernelParser, FunctionCallsWithArrayDecay) {
  const auto trace = trace_of_source(R"(
int glSink;

void consume(int buf[], int n) {
  glSink = buf[n];
}

int main(void) {
  int data[4];
  GLEIPNIR_START_INSTRUMENTATION;
  data[2] = 9;
  consume(data, 2);
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  EXPECT_NE(trace.find("consume"), std::string::npos);
  EXPECT_NE(trace.find("data[2]"), std::string::npos);
  EXPECT_NE(trace.find("GV glSink"), std::string::npos);
}

TEST(KernelParser, ComparisonOperatorsInConditions) {
  const auto trace = trace_of_source(R"(
int main(void) {
  int i;
  int n;
  GLEIPNIR_START_INSTRUMENTATION;
  for (i = 0; i <= 2; i++) {
    n = i;
  }
  for (i = 4; i != 6; i++) {
    n = i;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)");
  std::size_t stores = 0;
  std::size_t pos = 0;
  while ((pos = trace.find("S ", pos)) != std::string::npos) {
    ++stores;
    pos += 2;
  }
  // init i (x2), n stores (3 + 2).
  EXPECT_EQ(stores, 2u + 5u + 1u);  // + the _zzq marker store
}

TEST(KernelParser, Errors) {
  layout::TypeTable types;
  EXPECT_THROW((void)parse_kernel("int x;", types), Error);  // no main
  EXPECT_THROW((void)parse_kernel("int main(void) {", types), Error);
  EXPECT_THROW((void)parse_kernel("int main(void) { ghost = 1; } int y", types),
               Error);
  EXPECT_THROW((void)parse_kernel(
                   "int main(void) { typedef struct Old New; }", types),
               Error);
  EXPECT_THROW((void)parse_kernel_file("/no/such/file.c", types), Error);
}

TEST(KernelParser, AnonymousStructNamedAfterField) {
  layout::TypeTable types;
  (void)parse_kernel(R"(
int main(void) {
  typedef struct {
    int hot;
    struct { double y; } coldpart;
  } S;
  S s;
  GLEIPNIR_START_INSTRUMENTATION;
  s.coldpart.y = 1.0;
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)",
                     types);
  // The anonymous struct is registered under its field name, so rule
  // files can reference it exactly as the paper's Listing 8 does.
  EXPECT_NE(types.find_struct("coldpart"), layout::kInvalidType);
}

}  // namespace
}  // namespace tdt::tracer
