# Observability contract test (docs/OBSERVABILITY.md):
#
#   1. --metrics-json / --trace-spans / --progress never change the
#      tools' stdout or exit code — byte-identical to an uninstrumented
#      run (the paper's measurement-first methodology demands the
#      instrumentation is free of observable side effects).
#   2. The metrics file is valid JSON in the tdt-metrics/1 schema.
#   3. The span file is a Chrome trace_event document Perfetto can load.
#   4. The counters cross-check against ground truth: the simulator's
#      sim.records_simulated equals the record count gtracer reported.
#
# JSON validation uses CMake's string(JSON ...) (3.19+).
file(MAKE_DIRECTORY ${WORKDIR})

# Asserts ${file} parses as JSON; returns the whole document in ${out_var}.
function(read_json file out_var)
  if(NOT EXISTS ${file})
    message(FATAL_ERROR "expected JSON file not written: ${file}")
  endif()
  file(READ ${file} doc)
  string(JSON dummy ERROR_VARIABLE err TYPE "${doc}")
  if(err)
    message(FATAL_ERROR "${file} is not valid JSON: ${err}")
  endif()
  set(${out_var} "${doc}" PARENT_SCOPE)
endfunction()

# Asserts a tdt-metrics/1 document from ${tool}; returns it in ${out_var}.
function(check_metrics file tool out_var)
  read_json(${file} doc)
  string(JSON schema GET "${doc}" schema)
  if(NOT schema STREQUAL "tdt-metrics/1")
    message(FATAL_ERROR "${file}: schema is '${schema}', want tdt-metrics/1")
  endif()
  string(JSON json_tool GET "${doc}" tool)
  if(NOT json_tool STREQUAL ${tool})
    message(FATAL_ERROR "${file}: tool is '${json_tool}', want ${tool}")
  endif()
  foreach(key phases counters gauges histograms)
    string(JSON type ERROR_VARIABLE err TYPE "${doc}" ${key})
    if(err)
      message(FATAL_ERROR "${file}: missing top-level key '${key}'")
    endif()
  endforeach()
  set(${out_var} "${doc}" PARENT_SCOPE)
endfunction()

# ---- trace to simulate -----------------------------------------------

execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 256 --out ${WORKDIR}/t.out
          --metrics-json ${WORKDIR}/gtracer.json
  RESULT_VARIABLE rc ERROR_VARIABLE gtracer_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gtracer failed: ${rc}")
endif()
check_metrics(${WORKDIR}/gtracer.json gtracer gtracer_doc)
string(JSON trace_records GET "${gtracer_doc}" counters trace.records)
if(NOT gtracer_err MATCHES "${trace_records} records from kernel")
  message(FATAL_ERROR
    "gtracer trace.records=${trace_records} disagrees with its own "
    "report: ${gtracer_err}")
endif()

# ---- dinerosim sweep: byte-identity + schema + cross-check -----------

# The sweep spec is quoted inline: storing it in a variable would split
# it at the semicolons during list expansion.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/t.out --jobs 4
          --sweep "assoc=1;assoc=2;assoc=8"
  RESULT_VARIABLE base_rc OUTPUT_VARIABLE base_out)
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/t.out --jobs 4
          --sweep "assoc=1;assoc=2;assoc=8"
          --metrics-json ${WORKDIR}/m.json --trace-spans ${WORKDIR}/s.json
          --progress
  RESULT_VARIABLE inst_rc OUTPUT_VARIABLE inst_out ERROR_VARIABLE inst_err)
if(NOT base_rc EQUAL inst_rc)
  message(FATAL_ERROR
    "exit code changed under instrumentation: ${base_rc} vs ${inst_rc}")
endif()
if(NOT base_out STREQUAL inst_out)
  message(FATAL_ERROR "stdout changed under instrumentation:\n"
                      "=== plain ===\n${base_out}\n"
                      "=== instrumented ===\n${inst_out}")
endif()
if(NOT inst_err MATCHES "dinerosim: [0-9]+ records .* done")
  message(FATAL_ERROR "--progress heartbeat missing from stderr: ${inst_err}")
endif()

check_metrics(${WORKDIR}/m.json dinerosim metrics_doc)
string(JSON simulated GET "${metrics_doc}" counters sim.records_simulated)
string(JSON read_records GET "${metrics_doc}" counters read.records)
# t1_soa emits no instruction-fetch records, so every record read is
# simulated, and that count is exactly what gtracer wrote.
if(NOT simulated EQUAL trace_records OR NOT read_records EQUAL trace_records)
  message(FATAL_ERROR
    "counter cross-check failed: gtracer wrote ${trace_records} records, "
    "dinerosim read ${read_records} and simulated ${simulated}")
endif()
string(JSON points GET "${metrics_doc}" gauges sweep.points)
if(NOT points EQUAL 3)
  message(FATAL_ERROR "sweep.points=${points}, want 3")
endif()
string(JSON p0_hits GET "${metrics_doc}" counters cache.p0.L1.read_hits)
# The fan-out caps workers at the point count: 3 points, --jobs 4 -> 3.
string(JSON jobs GET "${metrics_doc}" gauges pipeline.jobs)
if(NOT jobs EQUAL 3)
  message(FATAL_ERROR "pipeline.jobs=${jobs}, want 3")
endif()

# Span file: a trace_event JSON with complete ("ph": "X") events for the
# stream phase and the pipeline workers.
read_json(${WORKDIR}/s.json spans_doc)
string(JSON events_type TYPE "${spans_doc}" traceEvents)
if(NOT events_type STREQUAL ARRAY)
  message(FATAL_ERROR "traceEvents is ${events_type}, want ARRAY")
endif()
if(NOT spans_doc MATCHES "\"ph\": \"X\"")
  message(FATAL_ERROR "no complete spans in ${WORKDIR}/s.json")
endif()
foreach(span stream report "worker 0")
  if(NOT spans_doc MATCHES "\"name\": \"${span}\"")
    message(FATAL_ERROR "span '${span}' missing from ${WORKDIR}/s.json")
  endif()
endforeach()

# ---- traceinfo: same byte-identity contract --------------------------

execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/t.out
  RESULT_VARIABLE base_rc OUTPUT_VARIABLE base_out)
execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/t.out --metrics-json ${WORKDIR}/ti.json
  RESULT_VARIABLE inst_rc OUTPUT_VARIABLE inst_out)
if(NOT base_rc EQUAL inst_rc OR NOT base_out STREQUAL inst_out)
  message(FATAL_ERROR "traceinfo output changed under instrumentation")
endif()
check_metrics(${WORKDIR}/ti.json traceinfo ti_doc)
string(JSON ti_records GET "${ti_doc}" counters read.records)
if(NOT ti_records EQUAL trace_records)
  message(FATAL_ERROR
    "traceinfo read.records=${ti_records}, want ${trace_records}")
endif()
