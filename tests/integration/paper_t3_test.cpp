// End-to-end reproduction of transformation T3 (Listings 9-11, Figures
// 9-11): stride remap pinning a contiguous array's accesses to a single
// set of the PowerPC 440 cache (32 KiB, 64-way, 32 B lines, round-robin).
#include <gtest/gtest.h>

#include <set>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

constexpr std::int64_t kLen = 1024;  // 4 KiB of int
constexpr std::int64_t kSets = 16;

std::string t3_rules_text() {
  return R"(
in:
int lContiguousArray[)" +
         std::to_string(kLen) + R"(]:lSetHashingArray;
out:
int lSetHashingArray[)" +
         std::to_string(kLen * kSets) + R"(((lI/8)*(16*8)+(lI%8))];
inject:
L lITEMSPERLINE 4;
L lITEMSPERLINE 4;
L lITEMSPERLINE 4;
)";
}

struct T3 : ::testing::Test {
  layout::TypeTable types;
  trace::TraceContext ctx;
  core::RuleSet rules = core::parse_rules(t3_rules_text());
  analysis::ExperimentResult result;

  void SetUp() override {
    const auto prog = tracer::make_t3_contiguous(types, kLen);
    result = analysis::run_experiment(types, ctx, prog, cache::ppc440(),
                                      &rules);
  }
};

TEST_F(T3, OriginalSpreadsOverAllSixteenSets) {
  // Figure 10: the 4 KiB contiguous walk covers sets 0..15 uniformly
  // (128 lines over 16 sets = 8 lines/set).
  const auto& series = result.before.per_set.at("lContiguousArray");
  ASSERT_EQ(series.size(), 16u);
  for (std::uint64_t s = 0; s < 16; ++s) {
    EXPECT_EQ(series[s].misses, 8u) << "set " << s;
    EXPECT_EQ(series[s].hits, 56u) << "set " << s;  // 64 accesses - 8 misses
  }
}

TEST_F(T3, TransformedPinsToExactlyOneSet) {
  // Figure 11: every lSetHashingArray access lands in a single set.
  const auto& series = result.after.per_set.at("lSetHashingArray");
  std::vector<std::uint64_t> active;
  for (std::uint64_t s = 0; s < series.size(); ++s) {
    if (series[s].hits + series[s].misses != 0) active.push_back(s);
  }
  ASSERT_EQ(active.size(), 1u);
  const auto& cell = series[active[0]];
  EXPECT_EQ(cell.hits + cell.misses, static_cast<std::uint64_t>(kLen));
}

TEST_F(T3, MissCountPreservedByPinning) {
  // "The upside is that we can reduce cache trashing by maintaining the
  // same amount of cache misses for the array structure" — 128 lines
  // before and after (the remap keeps groups of 8 ints per line).
  std::uint64_t before = 0, after = 0;
  for (const auto& c : result.before.per_set.at("lContiguousArray")) {
    before += c.misses;
  }
  for (const auto& c : result.after.per_set.at("lSetHashingArray")) {
    after += c.misses;
  }
  EXPECT_EQ(before, 128u);
  EXPECT_EQ(after, 128u);
}

TEST_F(T3, RoundRobinKeepsPinnedSetResident) {
  // 128 lines into one 64-way set: exactly 64 evictions (50% residency,
  // the paper's §IV-A.3 arithmetic: 64 ways x 32 B = 2048 B < 4 KiB).
  EXPECT_EQ(result.after.l1.evictions, 64u);
}

TEST_F(T3, InjectedLoadsAppearPerStore) {
  EXPECT_EQ(result.transform_stats.inserted, 3u * kLen);
  EXPECT_EQ(result.transform_stats.rewritten,
            static_cast<std::uint64_t>(kLen));
  std::uint64_t ipl_loads = 0;
  for (const trace::TraceRecord& r : result.transformed) {
    if (!r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "lITEMSPERLINE") {
      EXPECT_EQ(r.kind, trace::AccessKind::Load);
      ++ipl_loads;
    }
  }
  EXPECT_EQ(ipl_loads, 3u * kLen);
}

TEST_F(T3, FootprintCostSixteenTimes) {
  // The paper's stated downside: space is wasted (LEN*SETS elements).
  std::uint64_t min_addr = ~0ull, max_addr = 0;
  for (const trace::TraceRecord& r : result.transformed) {
    if (!r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "lSetHashingArray") {
      min_addr = std::min(min_addr, r.address);
      max_addr = std::max(max_addr, r.address + r.size);
    }
  }
  // Touched range spans nearly the whole 64 KiB allocation.
  EXPECT_GT(max_addr - min_addr, 60u * 1024u);
}

TEST_F(T3, HandStridedKernelMatchesTransformedMapping) {
  // The hand-transformed Listing 10 kernel and the rule-driven transform
  // must map iteration i to the same element index.
  layout::TypeTable types2;
  trace::TraceContext ctx2;
  const auto hand = tracer::run_program(
      types2, ctx2, tracer::make_t3_strided(types2, kLen, kSets, 32));
  std::vector<std::uint64_t> hand_indices;
  for (const trace::TraceRecord& r : hand) {
    if (r.kind == trace::AccessKind::Store && !r.var.empty() &&
        std::string(ctx2.name(r.var.base)) == "lSetHashingArray") {
      hand_indices.push_back(r.var.steps[0].index);
    }
  }
  std::vector<std::uint64_t> rule_indices;
  for (const trace::TraceRecord& r : result.transformed) {
    if (r.kind == trace::AccessKind::Store && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "lSetHashingArray") {
      rule_indices.push_back(r.var.steps[0].index);
    }
  }
  EXPECT_EQ(hand_indices, rule_indices);
}

}  // namespace
}  // namespace tdt
