// Robustness sweep: every parser must either succeed or throw tdt::Error
// on arbitrary input — never crash, hang, or throw anything else. The
// inputs are deterministic pseudo-random mutations of valid documents
// (truncations, byte flips, random garbage).
#include <gtest/gtest.h>

#include <iterator>

#include "core/rule_parser.hpp"
#include "layout/decl_parser.hpp"
#include "trace/binary.hpp"
#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "tracer/parser.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tdt {
namespace {

constexpr const char* kValidTrace = R"(START PID 1
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
END PID 1
)";

constexpr const char* kValidRules = R"(
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
)";

constexpr const char* kValidKernel = R"(
#define LEN 8
int main(void) {
  int arr[LEN];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int i = 0; i < LEN; i++) {
    arr[i] = i;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)";

/// Applies a deterministic mutation to `base`.
std::string mutate(std::string base, Xoshiro256& rng) {
  if (base.empty()) return base;
  switch (rng.next_below(4)) {
    case 0:  // truncate
      base.resize(rng.next_below(base.size()));
      break;
    case 1: {  // flip a byte to printable garbage
      const std::size_t at = rng.next_below(base.size());
      base[at] = static_cast<char>(' ' + rng.next_below(95));
      break;
    }
    case 2: {  // duplicate a slice
      const std::size_t at = rng.next_below(base.size());
      base.insert(at, base.substr(at / 2, rng.next_below(16) + 1));
      break;
    }
    default: {  // pure noise
      std::string noise;
      for (int i = 0; i < 64; ++i) {
        noise += static_cast<char>(' ' + rng.next_below(95));
      }
      base = noise;
      break;
    }
  }
  return base;
}

template <typename Fn>
void expect_no_crash(const char* what, const std::string& input, Fn&& fn) {
  try {
    fn(input);
  } catch (const Error&) {
    // Expected failure mode: a classified tdt error.
  } catch (const std::exception& e) {
    FAIL() << what << " threw a non-tdt exception: " << e.what()
           << "\ninput: " << input.substr(0, 120);
  }
}

class FuzzRobustness : public ::testing::TestWithParam<int> {};

TEST_P(FuzzRobustness, TraceReaderNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  std::string input = kValidTrace;
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("trace reader", input, [](const std::string& text) {
      trace::TraceContext ctx;
      (void)trace::read_trace_string(ctx, text);
    });
  }
}

TEST_P(FuzzRobustness, RuleParserNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 733 + 3);
  std::string input = kValidRules;
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("rule parser", input, [](const std::string& text) {
      (void)core::parse_rules(text);
    });
  }
}

TEST_P(FuzzRobustness, KernelParserNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  std::string input = kValidKernel;
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("kernel parser", input, [](const std::string& text) {
      layout::TypeTable types;
      (void)tracer::parse_kernel(text, types);
    });
  }
}

TEST_P(FuzzRobustness, DeclParserNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 389 + 9);
  std::string input = "struct A { int a[4]; double b; }; struct A v[8];";
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("decl parser", input, [](const std::string& text) {
      layout::TypeTable types;
      (void)layout::parse_declarations(text, types);
    });
  }
}

TEST_P(FuzzRobustness, DinReaderNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 557 + 5);
  std::string input = "0 7ff000100 4\n1 7ff000104 8\n2 400000\n";
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("din reader", input, [](const std::string& text) {
      trace::TraceContext ctx;
      (void)trace::read_din_string(ctx, text);
    });
  }
}

TEST_P(FuzzRobustness, BinaryReaderNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 211 + 13);
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(ctx, kValidTrace);
  const auto blob = trace::write_binary_trace(ctx, records);
  std::string input(blob.begin(), blob.end());
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("binary reader", input, [](const std::string& text) {
      trace::TraceContext ctx2;
      const std::vector<char> bytes(text.begin(), text.end());
      (void)trace::read_binary_trace(ctx2, bytes);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustness, ::testing::Range(0, 12));

// Mutated inputs must also never crash when read under a recovering
// policy: the reader either completes (salvaging what it can) or throws a
// classified Error (bad magic / error cap), never anything else.
TEST_P(FuzzRobustness, RecoveringReadersNeverCrash) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 271 + 17);
  trace::TraceContext seed_ctx;
  const auto blob =
      trace::write_binary_trace(seed_ctx,
                                trace::read_trace_string(seed_ctx, kValidTrace));
  std::string text = kValidTrace;
  std::string binary(blob.begin(), blob.end());
  for (int round = 0; round < 8; ++round) {
    text = mutate(std::move(text), rng);
    binary = mutate(std::move(binary), rng);
    for (const ErrorPolicy policy : {ErrorPolicy::Skip, ErrorPolicy::Repair}) {
      expect_no_crash("recovering trace reader", text,
                      [policy](const std::string& input) {
                        trace::TraceContext ctx;
                        DiagEngine diags(policy);
                        (void)trace::read_trace_string(ctx, input, nullptr,
                                                       &diags);
                      });
      expect_no_crash("recovering din reader", text,
                      [policy](const std::string& input) {
                        trace::TraceContext ctx;
                        DiagEngine diags(policy);
                        (void)trace::read_din_string(ctx, input, 4, &diags);
                      });
      expect_no_crash("recovering binary reader", binary,
                      [policy](const std::string& input) {
                        trace::TraceContext ctx;
                        DiagEngine diags(policy);
                        const std::vector<char> bytes(input.begin(),
                                                      input.end());
                        (void)trace::read_binary_trace(ctx, bytes, nullptr,
                                                       &diags);
                      });
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic corpus: exact recovery counts per policy.

/// Malformed Gleipnir record lines. `salvageable` = the first four fields
/// (kind, address, size, function) parse, so Repair keeps the raw access.
struct BadLine {
  const char* text;
  bool salvageable;
};

constexpr BadLine kBadLines[] = {
    {"Z 7ff0001b0 8 main", false},                      // bad access kind
    {"S nothex 8 main", false},                         // bad address
    {"S 7ff0001b0 0 main", false},                      // zero size
    {"S 7ff0001b0 8", false},                           // too few fields
    {"S 7ff0001b0 8 main XX 0 1 v", true},              // bad scope
    {"S 7ff0001b0 8 main LV 0 1", true},                // missing variable
    {"S 7ff0001b0 8 main LV zero 1 v", true},           // bad frame
    {"S 7ff0001b0 8 main LV 0 1 v extra", true},        // trailing fields
    {"S 7ff0001b0 8 main GV glScalar[", true},          // unterminated index
    {"L 000601040 4 main GV 9bad", true},               // bad variable start
};

std::string trace_with_bad_lines() {
  std::string text = "START PID 1\n";
  for (const BadLine& bad : kBadLines) {
    text += "L 000601040 4 main GV glScalar\n";
    text += bad.text;
    text += '\n';
  }
  text += "END PID 1\n";
  return text;
}

TEST(RobustnessCorpus, StrictFailsFastOnFirstBadLine) {
  trace::TraceContext ctx;
  EXPECT_THROW((void)trace::read_trace_string(ctx, trace_with_bad_lines()),
               Error);
  DiagEngine diags(ErrorPolicy::Strict);
  EXPECT_THROW((void)trace::read_trace_string(ctx, trace_with_bad_lines(),
                                              nullptr, &diags),
               Error);
}

TEST(RobustnessCorpus, SkipDropsEveryBadLineAndCountsThem) {
  trace::TraceContext ctx;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto records = trace::read_trace_string(ctx, trace_with_bad_lines(),
                                                nullptr, &diags);
  EXPECT_EQ(records.size(), std::size(kBadLines));  // only the good lines
  EXPECT_EQ(diags.errors(), std::size(kBadLines));
  EXPECT_EQ(diags.count(DiagCode::TraceBadLine), std::size(kBadLines));
  EXPECT_EQ(diags.count(DiagCode::TraceRepairedLine), 0u);
  EXPECT_EQ(diags.exit_code(), 1);
}

TEST(RobustnessCorpus, RepairSalvagesAddressSizeFunctionPrefix) {
  std::size_t salvageable = 0;
  for (const BadLine& bad : kBadLines) salvageable += bad.salvageable ? 1 : 0;

  trace::TraceContext ctx;
  DiagEngine diags(ErrorPolicy::Repair);
  const auto records = trace::read_trace_string(ctx, trace_with_bad_lines(),
                                                nullptr, &diags);
  EXPECT_EQ(records.size(), std::size(kBadLines) + salvageable);
  EXPECT_EQ(diags.count(DiagCode::TraceRepairedLine), salvageable);
  EXPECT_EQ(diags.count(DiagCode::TraceBadLine),
            std::size(kBadLines) - salvageable);
  EXPECT_EQ(diags.exit_code(), 1);
  // Every salvaged record lost its symbol annotation but kept the access.
  for (const trace::TraceRecord& rec : records) {
    if (rec.scope == trace::VarScope::Unknown) {
      EXPECT_NE(rec.address, 0u);
      EXPECT_NE(rec.size, 0u);
    }
  }
}

TEST(RobustnessCorpus, BadMarkersAreSkippedNotFatal) {
  const char* text =
      "START PID notanumber\n"
      "L 000601040 4 main GV glScalar\n"
      "END\n";
  trace::TraceContext ctx;
  EXPECT_THROW((void)trace::read_trace_string(ctx, text), Error);
  DiagEngine diags(ErrorPolicy::Skip);
  const auto records =
      trace::read_trace_string(ctx, text, nullptr, &diags);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(diags.count(DiagCode::TraceBadMarker), 2u);
}

TEST(RobustnessCorpus, DinPoliciesRecoverPerContract) {
  const char* text =
      "0 7ff000100 4\n"
      "9 7ff000104 8\n"       // bad label -> dropped under skip/repair
      "1 nothex 8\n"          // bad address -> dropped
      "1 7ff000108 zz\n"      // bad size -> repairable with default
      "2 400000\n";
  trace::TraceContext ctx;
  EXPECT_THROW((void)trace::read_din_string(ctx, text), Error);

  DiagEngine skip(ErrorPolicy::Skip);
  EXPECT_EQ(trace::read_din_string(ctx, text, 4, &skip).size(), 2u);
  EXPECT_EQ(skip.count(DiagCode::DinBadLine), 3u);
  EXPECT_EQ(skip.exit_code(), 1);

  DiagEngine repair(ErrorPolicy::Repair);
  const auto records = trace::read_din_string(ctx, text, 4, &repair);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].size, 4u);  // default size substituted
  EXPECT_EQ(repair.count(DiagCode::DinRepairedLine), 1u);
  EXPECT_EQ(repair.count(DiagCode::DinBadLine), 2u);
  EXPECT_EQ(repair.exit_code(), 1);
}

TEST(RobustnessCorpus, TruncatedBinaryBlobSalvagesPrefixPerPolicy) {
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(ctx, kValidTrace);
  const auto blob = trace::write_binary_trace(ctx, records);
  // Chop at every byte boundary: strict always throws, skip/repair always
  // salvage a prefix and report the truncation.
  for (std::size_t cut = 6; cut + 1 < blob.size(); cut += 3) {
    std::vector<char> truncated(blob.begin(),
                                blob.begin() + static_cast<long>(cut));
    trace::TraceContext strict_ctx;
    EXPECT_THROW((void)trace::read_binary_trace(strict_ctx, truncated), Error);

    for (const ErrorPolicy policy : {ErrorPolicy::Skip, ErrorPolicy::Repair}) {
      trace::TraceContext ctx2;
      DiagEngine diags(policy);
      const auto salvaged =
          trace::read_binary_trace(ctx2, truncated, nullptr, &diags);
      EXPECT_LE(salvaged.size(), records.size()) << "cut at " << cut;
      EXPECT_FALSE(diags.clean()) << "cut at " << cut;
      EXPECT_EQ(diags.exit_code(), 1) << "cut at " << cut;
    }
  }
}

TEST(RobustnessCorpus, TruncatedFooterSalvagesAllRecordsPerPolicy) {
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(ctx, kValidTrace);
  const auto blob = trace::write_binary_trace(ctx, records);  // v2: footer
  // Chop 1..12 bytes off the end: the record stream and end marker stay
  // intact, only the 12-byte footer (u64 count + u32 crc) goes short.
  for (const std::size_t missing : {std::size_t{1}, std::size_t{6},
                                    std::size_t{12}}) {
    std::vector<char> truncated(blob.begin(), blob.end() - missing);
    trace::TraceContext strict_ctx;
    EXPECT_THROW((void)trace::read_binary_trace(strict_ctx, truncated), Error)
        << missing << " footer bytes missing";

    for (const ErrorPolicy policy : {ErrorPolicy::Skip, ErrorPolicy::Repair}) {
      trace::TraceContext ctx2;
      DiagEngine diags(policy);
      const auto salvaged =
          trace::read_binary_trace(ctx2, truncated, nullptr, &diags);
      // Every record precedes the footer: recovery keeps them all and
      // reports exactly one stable B008 footer diagnostic.
      EXPECT_EQ(salvaged.size(), records.size())
          << missing << " footer bytes missing";
      EXPECT_EQ(diags.count(DiagCode::BinBadFooter), 1u);
      EXPECT_EQ(diags.exit_code(), 1);
    }
  }
}

TEST(RobustnessCorpus, MidVarintTruncationSalvagesPrefix) {
  // An all-ones address encodes as the maximal 10-byte varint
  // (0xFF x 9 then 0x01): the one byte pattern we can locate in the blob
  // to place a cut deterministically *inside* a varint.
  const char* text =
      "START PID 1\n"
      "L 000601040 4 main GV glScalar\n"
      "S ffffffffffffffff 8 main GV glScalar\n"
      "END PID 1\n";
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(ctx, text);
  ASSERT_EQ(records.size(), 2u);
  const auto blob = trace::write_binary_trace(ctx, records);

  std::size_t run = 0;
  std::size_t varint_at = blob.size();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    run = blob[i] == '\xFF' ? run + 1 : 0;
    if (run == 9) {
      varint_at = i - 8;
      break;
    }
  }
  ASSERT_NE(varint_at, blob.size()) << "maximal varint not found in blob";

  // Cut four bytes into the ten-byte varint.
  std::vector<char> truncated(blob.begin(),
                              blob.begin() + static_cast<long>(varint_at + 4));
  trace::TraceContext strict_ctx;
  EXPECT_THROW((void)trace::read_binary_trace(strict_ctx, truncated), Error);

  for (const ErrorPolicy policy : {ErrorPolicy::Skip, ErrorPolicy::Repair}) {
    trace::TraceContext ctx2;
    DiagEngine diags(policy);
    const auto salvaged =
        trace::read_binary_trace(ctx2, truncated, nullptr, &diags);
    // The record before the mangled one survives; the cut one does not.
    EXPECT_EQ(salvaged.size(), 1u);
    EXPECT_EQ(salvaged[0].address, 0x000601040u);
    EXPECT_EQ(diags.count(DiagCode::BinTruncated), 1u);  // stable B003
    EXPECT_EQ(diags.exit_code(), 1);
  }
}

TEST(RobustnessCorpus, BadRuleFilesAlwaysThrowClassifiedErrors) {
  const char* corpus[] = {
      "in:\nstruct lSoA { int mX[16]; };\n",       // missing out section
      "out:\nstruct lAoS { int mX; }[16];\n",      // missing in section
      "in:\nstruct A { int x; };\nout:\nstruct\n", // truncated out decl
      "in:\nnot a struct at all\nout:\nnope\n",
      "in:\nstruct A { int x[4]; };\nout:\nstruct B { double y; }[4];[\n",
      "map: a -> b\n",
  };
  for (const char* text : corpus) {
    try {
      const core::RuleSet rules = core::parse_rules(text);
      // If an entry happens to parse, it must not yield a silently usable
      // rule set: either no rules at all or validation flags it.
      EXPECT_TRUE(rules.rules().empty() || !rules.validate().empty())
          << "accepted: " << text;
    } catch (const Error&) {
      // Expected: classified parse error.
    } catch (const std::exception& e) {
      FAIL() << "rule parser threw a non-tdt exception: " << e.what();
    }
  }
}

}  // namespace
}  // namespace tdt
