// Robustness sweep: every parser must either succeed or throw tdt::Error
// on arbitrary input — never crash, hang, or throw anything else. The
// inputs are deterministic pseudo-random mutations of valid documents
// (truncations, byte flips, random garbage).
#include <gtest/gtest.h>

#include "core/rule_parser.hpp"
#include "layout/decl_parser.hpp"
#include "trace/binary.hpp"
#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "tracer/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tdt {
namespace {

constexpr const char* kValidTrace = R"(START PID 1
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
END PID 1
)";

constexpr const char* kValidRules = R"(
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
)";

constexpr const char* kValidKernel = R"(
#define LEN 8
int main(void) {
  int arr[LEN];
  GLEIPNIR_START_INSTRUMENTATION;
  for (int i = 0; i < LEN; i++) {
    arr[i] = i;
  }
  GLEIPNIR_STOP_INSTRUMENTATION;
  return 0;
}
)";

/// Applies a deterministic mutation to `base`.
std::string mutate(std::string base, Xoshiro256& rng) {
  if (base.empty()) return base;
  switch (rng.next_below(4)) {
    case 0:  // truncate
      base.resize(rng.next_below(base.size()));
      break;
    case 1: {  // flip a byte to printable garbage
      const std::size_t at = rng.next_below(base.size());
      base[at] = static_cast<char>(' ' + rng.next_below(95));
      break;
    }
    case 2: {  // duplicate a slice
      const std::size_t at = rng.next_below(base.size());
      base.insert(at, base.substr(at / 2, rng.next_below(16) + 1));
      break;
    }
    default: {  // pure noise
      std::string noise;
      for (int i = 0; i < 64; ++i) {
        noise += static_cast<char>(' ' + rng.next_below(95));
      }
      base = noise;
      break;
    }
  }
  return base;
}

template <typename Fn>
void expect_no_crash(const char* what, const std::string& input, Fn&& fn) {
  try {
    fn(input);
  } catch (const Error&) {
    // Expected failure mode: a classified tdt error.
  } catch (const std::exception& e) {
    FAIL() << what << " threw a non-tdt exception: " << e.what()
           << "\ninput: " << input.substr(0, 120);
  }
}

class FuzzRobustness : public ::testing::TestWithParam<int> {};

TEST_P(FuzzRobustness, TraceReaderNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  std::string input = kValidTrace;
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("trace reader", input, [](const std::string& text) {
      trace::TraceContext ctx;
      (void)trace::read_trace_string(ctx, text);
    });
  }
}

TEST_P(FuzzRobustness, RuleParserNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 733 + 3);
  std::string input = kValidRules;
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("rule parser", input, [](const std::string& text) {
      (void)core::parse_rules(text);
    });
  }
}

TEST_P(FuzzRobustness, KernelParserNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  std::string input = kValidKernel;
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("kernel parser", input, [](const std::string& text) {
      layout::TypeTable types;
      (void)tracer::parse_kernel(text, types);
    });
  }
}

TEST_P(FuzzRobustness, DeclParserNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 389 + 9);
  std::string input = "struct A { int a[4]; double b; }; struct A v[8];";
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("decl parser", input, [](const std::string& text) {
      layout::TypeTable types;
      (void)layout::parse_declarations(text, types);
    });
  }
}

TEST_P(FuzzRobustness, DinReaderNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 557 + 5);
  std::string input = "0 7ff000100 4\n1 7ff000104 8\n2 400000\n";
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("din reader", input, [](const std::string& text) {
      trace::TraceContext ctx;
      (void)trace::read_din_string(ctx, text);
    });
  }
}

TEST_P(FuzzRobustness, BinaryReaderNeverCrashes) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 211 + 13);
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(ctx, kValidTrace);
  const auto blob = trace::write_binary_trace(ctx, records);
  std::string input(blob.begin(), blob.end());
  for (int round = 0; round < 8; ++round) {
    input = mutate(std::move(input), rng);
    expect_no_crash("binary reader", input, [](const std::string& text) {
      trace::TraceContext ctx2;
      const std::vector<char> bytes(text.begin(), text.end());
      (void)trace::read_binary_trace(ctx2, bytes);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustness, ::testing::Range(0, 12));

}  // namespace
}  // namespace tdt
