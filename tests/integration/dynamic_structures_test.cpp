// Dynamic (heap) structures — the paper's §VI future-work item: "we must
// explore the ability to transform dynamic structures as well". Heap
// blocks are named by allocation-site pseudo-variables (heap#N), so the
// same rule machinery applies to them.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

using namespace tdt::tracer;

/// Heap array of structs written field-by-field — the dynamic analogue of
/// the Listing 3 AoS kernel.
Program make_heap_aos(layout::TypeTable& types, std::int64_t len) {
  const auto t_int = types.int_type();
  const auto elem = types.find_struct("HeapElem") != layout::kInvalidType
                        ? types.find_struct("HeapElem")
                        : types.define_struct(
                              "HeapElem",
                              {{"mX", t_int}, {"mY", types.double_type()}});
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("p", types.pointer_to(elem)));
  body.push_back(decl_local("lI", t_int));
  body.push_back(heap_alloc(LValue("p"), elem, lit(len)));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(
      assign(LValue("p").index(rd("lI")).field("mX"), cast_int(rd("lI"))));
  loop.push_back(
      assign(LValue("p").index(rd("lI")).field("mY"), cast_real(rd("lI"))));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

TEST(DynamicStructures, HeapAccessesAreNamedByAllocationSite) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, make_heap_aos(types, 8));
  std::size_t heap_stores = 0;
  for (const trace::TraceRecord& r : records) {
    if (r.kind == trace::AccessKind::Store && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "heap#0") {
      EXPECT_EQ(r.scope, trace::VarScope::GlobalStructure);
      ++heap_stores;
    }
  }
  EXPECT_EQ(heap_stores, 16u);
}

TEST(DynamicStructures, HeapStructureTransformsLikeStatic) {
  // Rule matching the heap pseudo-variable: AoS -> SoA on heap data.
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, make_heap_aos(types, 8));

  core::RuleSet rules = [] {
    // `heap#0` is not a C identifier, so build the rule programmatically:
    // in: HeapElem[8] named heap#0; out: SoA split.
    layout::TypeTable t;
    const auto elem = t.define_struct(
        "HeapElem", {{"mX", t.int_type()}, {"mY", t.double_type()}});
    const auto soa = t.define_struct(
        "heapSoA", {{"mX", t.array_of(t.int_type(), 8)},
                    {"mY", t.array_of(t.double_type(), 8)}});
    core::RuleSet set(std::move(t));
    core::StructRule rule;
    rule.in_name = "heap#0";
    rule.in_type = set.types().array_of(elem, 8);
    rule.outs = {{"heapSoA", soa}};
    set.add(std::move(rule));
    return set;
  }();
  for (const core::RuleDiagnostic& d : rules.validate()) {
    ASSERT_NE(d.severity, core::RuleDiagnostic::Severity::Error) << d.message;
  }

  core::TransformStats stats;
  const auto out = core::transform_trace(rules, ctx, records, {}, &stats);
  EXPECT_EQ(stats.rewritten, 16u);
  EXPECT_EQ(stats.skipped, 0u);
  bool saw_soa = false;
  for (const trace::TraceRecord& r : out) {
    if (!r.var.empty() && std::string(ctx.name(r.var.base)) == "heapSoA") {
      saw_soa = true;
      // Heap addresses sit below the stack threshold: relocated to the
      // global-side arena.
      EXPECT_LT(r.address, 0x700000000ull);
    }
  }
  EXPECT_TRUE(saw_soa);
}

TEST(DynamicStructures, LinkedListNodesTransformable) {
  // Split the ListNode's value out of the pointer chain: values move to a
  // dense pool while the next pointers stay put — a trace-level preview
  // of a "pool the hot fields" refactor on a dynamic structure.
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records = tracer::run_program(
      types, ctx, tracer::make_linked_list(types, 16, /*shuffled=*/false));

  core::RuleSet rules = [] {
    layout::TypeTable t;
    const auto node = t.forward_struct("ListNode");
    t.complete_struct(node, {{"value", t.int_type()},
                             {"next", t.pointer_to(node)}});
    const auto out_node = t.forward_struct("SlimNode");
    t.complete_struct(out_node, {{"value", t.int_type()},
                                 {"next", t.pointer_to(out_node)}});
    core::RuleSet set(std::move(t));
    core::StructRule rule;
    rule.in_name = "heap#0";
    rule.in_type = set.types().array_of(set.types().find_struct("ListNode"), 16);
    rule.outs = {
        {"slim", set.types().array_of(set.types().find_struct("SlimNode"), 16)}};
    set.add(std::move(rule));
    return set;
  }();

  core::TransformStats stats;
  const auto out = core::transform_trace(rules, ctx, records, {}, &stats);
  // Every named heap access (value and next loads) is rewritten.
  EXPECT_EQ(stats.rewritten, 32u);
  EXPECT_EQ(stats.skipped, 0u);
}

}  // namespace
}  // namespace tdt
