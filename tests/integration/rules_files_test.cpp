// The shipped rule files under rules/ must parse cleanly and apply to the
// kernels they document. TDT_RULES_DIR is injected by CMake.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "tracer/kernels.hpp"

#ifndef TDT_RULES_DIR
#error "TDT_RULES_DIR must be defined by the build"
#endif

namespace tdt {
namespace {

std::string rules_path(const char* name) {
  return std::string(TDT_RULES_DIR) + "/" + name;
}

TEST(RuleFiles, T1ParsesAndApplies) {
  const core::RuleSet rules =
      core::parse_rules_file(rules_path("t1_soa_to_aos.rules"));
  ASSERT_EQ(rules.rules().size(), 1u);
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t1_soa(types, 1024),
      cache::paper_direct_mapped(), &rules);
  EXPECT_EQ(result.transform_stats.rewritten, 2048u);
  EXPECT_EQ(result.transform_stats.skipped, 0u);
}

TEST(RuleFiles, T2ParsesAndApplies) {
  const core::RuleSet rules =
      core::parse_rules_file(rules_path("t2_outline_rarely_used.rules"));
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t2_inline(types, 1024),
      cache::paper_direct_mapped(), &rules);
  EXPECT_EQ(result.transform_stats.rewritten, 3072u);
  EXPECT_EQ(result.transform_stats.inserted, 2048u);
  EXPECT_EQ(result.transform_stats.skipped, 0u);
}

TEST(RuleFiles, T3ParsesAndApplies) {
  const core::RuleSet rules =
      core::parse_rules_file(rules_path("t3_set_pinning.rules"));
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t3_contiguous(types, 1024), cache::ppc440(),
      &rules);
  EXPECT_EQ(result.transform_stats.rewritten, 1024u);
  EXPECT_EQ(result.transform_stats.inserted, 3072u);
  // Pinned: exactly one active set for the remapped array.
  std::size_t active = 0;
  for (const analysis::SetCell& c :
       result.after.per_set.at("lSetHashingArray")) {
    active += (c.hits + c.misses) != 0;
  }
  EXPECT_EQ(active, 1u);
}

TEST(RuleFiles, AllFilesHaveNoValidationErrors) {
  for (const char* name : {"t1_soa_to_aos.rules",
                           "t2_outline_rarely_used.rules",
                           "t3_set_pinning.rules"}) {
    const core::RuleSet rules = core::parse_rules_file(rules_path(name));
    for (const core::RuleDiagnostic& d : rules.validate()) {
      EXPECT_NE(d.severity, core::RuleDiagnostic::Severity::Error)
          << name << ": " << d.message;
    }
  }
}

}  // namespace
}  // namespace tdt
