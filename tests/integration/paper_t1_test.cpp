// End-to-end reproduction of the paper's transformation T1 (Listings 3-5,
// Figures 3-5): SoA kernel traced, transformed by the Listing 5 rule, and
// both traces simulated on the 32 KiB direct-mapped cache.
#include <gtest/gtest.h>

#include <set>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

constexpr std::int64_t kLen = 1024;

std::string t1_rules_text() {
  return R"(
in:
struct lSoA {
  int mX[)" +
         std::to_string(kLen) + R"(];
  double mY[)" +
         std::to_string(kLen) + R"(];
};
out:
struct lAoS {
  int mX;
  double mY;
}[)" + std::to_string(kLen) +
         R"(];
)";
}

struct T1 : ::testing::Test {
  layout::TypeTable types;
  trace::TraceContext ctx;
  core::RuleSet rules = core::parse_rules(t1_rules_text());
  analysis::ExperimentResult result;

  void SetUp() override {
    const auto prog = tracer::make_t1_soa(types, kLen);
    result = analysis::run_experiment(types, ctx, prog,
                                      cache::paper_direct_mapped(), &rules);
  }
};

TEST_F(T1, EveryStructureAccessRewrittenNothingInserted) {
  EXPECT_EQ(result.transform_stats.rewritten, 2u * kLen);
  EXPECT_EQ(result.transform_stats.inserted, 0u);
  EXPECT_EQ(result.transform_stats.skipped, 0u);
  EXPECT_EQ(result.diff.modified, 2u * kLen);
  EXPECT_EQ(result.diff.inserted, 0u);
  EXPECT_EQ(result.diff.deleted, 0u);
  EXPECT_EQ(result.original.size(), result.transformed.size());
}

TEST_F(T1, SoAFieldsOccupyDisjointSetRanges) {
  // Figure 3's "banded" pattern: in SoA the mX and mY stores hit disjoint
  // address regions, hence (mostly) disjoint cache sets.
  std::set<std::uint64_t> mx_sets, my_sets;
  const cache::CacheConfig cfg = cache::paper_direct_mapped();
  for (const trace::TraceRecord& r : result.original) {
    if (r.var.empty() || std::string(ctx.name(r.var.base)) != "lSoA") {
      continue;
    }
    const std::string var = ctx.format_var(r.var);
    (var.find(".mX") != std::string::npos ? mx_sets : my_sets)
        .insert(cfg.set_of(r.address));
  }
  // 4 KiB of mX -> 128 sets; 8 KiB of mY -> 256 sets; disjoint.
  EXPECT_EQ(mx_sets.size(), 128u);
  EXPECT_EQ(my_sets.size(), 256u);
  for (std::uint64_t s : mx_sets) EXPECT_FALSE(my_sets.contains(s));
}

TEST_F(T1, AoSSpansContiguousRangeTouchedUniformly) {
  // Figure 4: after the transformation every AoS element access falls in
  // one contiguous 16 KiB region (1024 padded 16-byte elements) = 512
  // consecutive sets, each touched by both fields.
  std::set<std::uint64_t> sets;
  const cache::CacheConfig cfg = cache::paper_direct_mapped();
  for (const trace::TraceRecord& r : result.transformed) {
    if (!r.var.empty() && std::string(ctx.name(r.var.base)) == "lAoS") {
      sets.insert(cfg.set_of(r.address));
    }
  }
  EXPECT_EQ(sets.size(), 512u);
  // Contiguity modulo the set count.
  std::vector<std::uint64_t> sorted(sets.begin(), sets.end());
  std::uint64_t gaps = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    gaps += sorted[i] != sorted[i - 1] + 1;
  }
  EXPECT_LE(gaps, 1u);  // at most one wraparound
}

TEST_F(T1, MissTotalsReflectPaddedFootprint) {
  // SoA streams 12 KiB (384 cold line misses). The AoS layout pads every
  // element to 16 bytes, so the same walk covers 16 KiB = 512 lines —
  // a cost of interleaving the figures make visible.
  std::uint64_t before_misses = 0, after_misses = 0;
  for (const auto& cell : result.before.per_set.at("lSoA")) {
    before_misses += cell.misses;
  }
  for (const auto& cell : result.after.per_set.at("lAoS")) {
    after_misses += cell.misses;
  }
  EXPECT_EQ(before_misses, 384u);
  EXPECT_GE(after_misses, 512u);
  EXPECT_LE(after_misses, 520u);  // plus a few stack-scalar conflicts
}

TEST_F(T1, PerIterationLocalityImproves) {
  // The actual T1 benefit: in AoS, an iteration's mX and mY share a cache
  // line for 75% of elements (16-byte elements in 32-byte lines); in SoA
  // they never do. Count iterations whose two stores hit the same line.
  auto same_line_pairs = [&](const std::vector<trace::TraceRecord>& recs,
                             const char* base) {
    std::uint64_t pairs = 0, last_mx_line = ~0ull;
    for (const trace::TraceRecord& r : recs) {
      if (r.var.empty() || std::string(ctx.name(r.var.base)) != base) {
        continue;
      }
      const std::string var = ctx.format_var(r.var);
      if (var.find(".mX") != std::string::npos) {
        last_mx_line = r.address / 32;
      } else if (r.address / 32 == last_mx_line) {
        ++pairs;
      }
    }
    return pairs;
  };
  EXPECT_EQ(same_line_pairs(result.original, "lSoA"), 0u);
  // With a 32-byte-aligned base every element's mX/mY pair shares a line;
  // any 8-aligned placement still pairs at least half of them.
  EXPECT_GE(same_line_pairs(result.transformed, "lAoS"),
            static_cast<std::uint64_t>(kLen) / 2);
}

TEST_F(T1, TransformedTraceStillSimulates) {
  EXPECT_EQ(result.before.l1.accesses(), result.after.l1.accesses());
  EXPECT_GT(result.after.l1.hits(), 0u);
}

}  // namespace
}  // namespace tdt
