// Golden trace: the T1 SoA kernel at LEN=2 must produce this exact byte
// sequence. Protects the whole tracer stack (address assignment, access
// ordering, formatting) against silent drift — the analogue of the
// paper's Figure 5 left column.
#include <gtest/gtest.h>

#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

constexpr const char* kGolden = R"(START PID 4242
S 7feffffd8 8 main LV 0 1 _zzq_result
L 7feffffd8 8 main
S 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7feffffe8 4 main LS 0 1 lSoA.mX[0]
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7fefffff0 8 main LS 0 1 lSoA.mY[0]
M 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7feffffec 4 main LS 0 1 lSoA.mX[1]
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7fefffff8 8 main LS 0 1 lSoA.mY[1]
M 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
END PID 4242
)";

TEST(GoldenTrace, T1SoaLenTwoIsByteExact) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, tracer::make_t1_soa(types, 2));
  EXPECT_EQ(trace::write_trace_string(ctx, records, 4242), kGolden);
}

TEST(GoldenTrace, RepeatedRunsAreIdentical) {
  auto run_once = [] {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto records =
        tracer::run_program(types, ctx, tracer::make_t2_outlined(types, 8));
    return trace::write_trace_string(ctx, records, 1);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace tdt
