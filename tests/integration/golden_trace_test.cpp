// Golden traces: byte-exact locks on the tracer and transformer output.
//
// Two layers of protection:
//   1. The T1 SoA kernel at LEN=2 inline below — protects the tracer
//      stack (address assignment, access ordering, formatting), the
//      analogue of the paper's Figure 5 left column.
//   2. The transformed output of every shipped rules/*.rules file at
//      LEN=8 against the checked-in files in tests/integration/golden/
//      — protects the transformation engine (rule matching, address
//      remapping, T2 pointer-load insertion, T3 set pinning) end to end.
//
// Regenerating the goldens after an intentional change:
//   TDT_REGEN_GOLDEN=1 ./tests/tests_integration --gtest_filter='GoldenTrace*'
// rewrites the files in the source tree (the test then passes trivially);
// re-run without the variable and inspect `git diff` before committing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

#ifndef TDT_RULES_DIR
#error "TDT_RULES_DIR must be defined by the build"
#endif
#ifndef TDT_GOLDEN_DIR
#error "TDT_GOLDEN_DIR must be defined by the build"
#endif

namespace tdt {
namespace {

constexpr const char* kGolden = R"(START PID 4242
S 7feffffd8 8 main LV 0 1 _zzq_result
L 7feffffd8 8 main
S 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7feffffe8 4 main LS 0 1 lSoA.mX[0]
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7fefffff0 8 main LS 0 1 lSoA.mY[0]
M 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7feffffec 4 main LS 0 1 lSoA.mX[1]
L 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
S 7fefffff8 8 main LS 0 1 lSoA.mY[1]
M 7feffffe4 4 main LV 0 1 lI
L 7feffffe4 4 main LV 0 1 lI
END PID 4242
)";

TEST(GoldenTrace, T1SoaLenTwoIsByteExact) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, tracer::make_t1_soa(types, 2));
  EXPECT_EQ(trace::write_trace_string(ctx, records, 4242), kGolden);
}

TEST(GoldenTrace, RepeatedRunsAreIdentical) {
  auto run_once = [] {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto records =
        tracer::run_program(types, ctx, tracer::make_t2_outlined(types, 8));
    return trace::write_trace_string(ctx, records, 1);
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- transformed-output goldens -------------------------------------

constexpr std::int64_t kLen = 8;

tracer::Program make_kernel(layout::TypeTable& types, const std::string& name) {
  if (name == "t1_soa") return tracer::make_t1_soa(types, kLen);
  if (name == "t2_inline") return tracer::make_t2_inline(types, kLen);
  return tracer::make_t3_contiguous(types, kLen);
}

/// Runs `kernel`, transforms its trace with `rules_file`, and renders the
/// transformed trace as Gleipnir text. The rule files declare
/// 1024-element arrays; LEN=8 indices stay inside those extents, so the
/// small goldens exercise the same mappings as the paper-scale runs.
std::string transformed_trace(const std::string& kernel,
                              const std::string& rules_file,
                              core::TransformStats* stats = nullptr) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, make_kernel(types, kernel));
  const core::RuleSet rules = core::parse_rules_file(
      std::string(TDT_RULES_DIR) + "/" + rules_file);
  const auto transformed =
      core::transform_trace(rules, ctx, records, {}, stats);
  return trace::write_trace_string(ctx, transformed, 4242);
}

void check_golden(const std::string& kernel, const std::string& rules_file,
                  const std::string& golden_name) {
  core::TransformStats stats;
  const std::string actual = transformed_trace(kernel, rules_file, &stats);
  EXPECT_GT(stats.rewritten, 0u) << "rule never matched — wrong pairing?";
  EXPECT_EQ(stats.skipped, 0u);

  const std::string golden_path =
      std::string(TDT_GOLDEN_DIR) + "/" + golden_name;
  if (std::getenv("TDT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden " << golden_path
                  << " (regenerate with TDT_REGEN_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "transformed trace drifted from " << golden_path
      << "; if intentional, regenerate with TDT_REGEN_GOLDEN=1";
}

TEST(GoldenTrace, T1SoaToAosTransformed) {
  check_golden("t1_soa", "t1_soa_to_aos.rules", "t1_transformed.golden");
}

TEST(GoldenTrace, T2OutlineTransformedWithPointerLoads) {
  core::TransformStats stats;
  transformed_trace("t2_inline", "t2_outline_rarely_used.rules", &stats);
  // The outlining rule must insert a pointer-indirection load for every
  // rewritten cold-field access (paper §IV-B).
  EXPECT_GT(stats.inserted, 0u);
  check_golden("t2_inline", "t2_outline_rarely_used.rules",
               "t2_transformed.golden");
}

TEST(GoldenTrace, T3SetPinningTransformed) {
  check_golden("t3_contiguous", "t3_set_pinning.rules",
               "t3_transformed.golden");
}

}  // namespace
}  // namespace tdt
