// False sharing fixed by a trace transformation: two cores ping-pong
// adjacent counters in one cache line; a stride rule spreads the counters
// onto separate lines and the invalidations vanish. This is the paper's
// rule machinery applied to a multicore symptom (our MESI extension).
#include <gtest/gtest.h>

#include "cache/multicore.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/reader.hpp"
#include "tracer/ast.hpp"
#include "tracer/interp.hpp"

namespace tdt {
namespace {

using namespace tdt::tracer;

/// Per-thread program: for (i < n) counters[slot] += 1;  — counters is a
/// global, so every thread's trace sees it at the same address.
Program make_worker(layout::TypeTable& types, std::int64_t slot,
                    std::int64_t iterations) {
  Program prog;
  prog.globals.push_back(
      {"counters", types.array_of(types.int_type(), 16)});
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("lI", types.int_type()));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(modify(LValue("counters").index(lit(slot)), lit(1)));
  body.push_back(count_loop("lI", lit(iterations), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

struct Fixture {
  trace::TraceContext ctx;
  std::vector<trace::TraceRecord> interleaved;

  Fixture() {
    InterpOptions opts;
    opts.emit_zzq_marker = false;
    // Distinct per-thread stacks (1 MiB apart); shared globals.
    layout::TypeTable types0, types1;
    auto t0 = run_program(types0, ctx, make_worker(types0, 0, 64), opts);
    opts.address_space.stack_base -= 0x100000;
    auto t1 = run_program(types1, ctx, make_worker(types1, 1, 64), opts);
    interleaved = trace::interleave_threads({std::move(t0), std::move(t1)});
  }
};

cache::CacheConfig private_l1() {
  cache::CacheConfig c;
  c.size = 4096;
  c.block_size = 32;
  c.assoc = 2;
  return c;
}

TEST(FalseSharing, AdjacentCountersPingPong) {
  Fixture f;
  cache::MesiSystem sys(private_l1(), 2);
  cache::MultiCoreSim sim(sys, f.ctx);
  sim.simulate(f.interleaved);
  // Every counter write after the first invalidates the other core.
  EXPECT_GT(sys.total_invalidations(), 100u);
  EXPECT_GT(sim.false_sharing_invalidations(), 100u);
  EXPECT_EQ(sim.true_sharing_invalidations(), 0u);
  // The loop scalars live on distinct per-thread stacks: no sharing there.
  EXPECT_EQ(sim.false_sharing_pairs().size(), 1u);
  EXPECT_TRUE(sim.false_sharing_pairs().contains({"counters", "counters"}));
}

TEST(FalseSharing, StrideRuleEliminatesInvalidations) {
  Fixture f;
  // Spread counters[i] to spreadCounters[i*8]: 32 bytes apart = one line
  // per counter on this 32 B-line cache.
  const core::RuleSet rules = core::parse_rules(R"(
in:
int counters[16]:spreadCounters;
out:
int spreadCounters[128(lI*8)];
)");
  core::TransformStats stats;
  const auto transformed =
      core::transform_trace(rules, f.ctx, f.interleaved, {}, &stats);
  EXPECT_EQ(stats.rewritten, 128u);

  cache::MesiSystem sys(private_l1(), 2);
  cache::MultiCoreSim sim(sys, f.ctx);
  sim.simulate(transformed);
  EXPECT_EQ(sys.total_invalidations(), 0u);
  EXPECT_EQ(sim.false_sharing_invalidations(), 0u);
  // Each core still does all its counter writes — they just hit now.
  EXPECT_GT(sys.core_stats(0).write_hits, 60u);
  EXPECT_GT(sys.core_stats(1).write_hits, 60u);
}

TEST(FalseSharing, CoherenceMissesDropToo) {
  Fixture f;
  cache::MesiSystem before(private_l1(), 2);
  cache::MultiCoreSim sim_before(before, f.ctx);
  sim_before.simulate(f.interleaved);

  const core::RuleSet rules = core::parse_rules(R"(
in:
int counters[16]:spreadCounters;
out:
int spreadCounters[128(lI*8)];
)");
  const auto transformed =
      core::transform_trace(rules, f.ctx, f.interleaved);
  cache::MesiSystem after(private_l1(), 2);
  cache::MultiCoreSim sim_after(after, f.ctx);
  sim_after.simulate(transformed);

  const std::uint64_t misses_before = before.core_stats(0).coherence_misses +
                                      before.core_stats(1).coherence_misses;
  const std::uint64_t misses_after = after.core_stats(0).coherence_misses +
                                     after.core_stats(1).coherence_misses;
  EXPECT_GT(misses_before, 100u);
  EXPECT_EQ(misses_after, 0u);
}

}  // namespace
}  // namespace tdt
