// RuleSet serialization round-trip: every shipped rule file must survive
// parse -> write_rules -> parse with equivalent structure, and the second
// serialization must be byte-identical to the first (fixed point). This
// is the contract the autotuner's candidate generator builds on: any
// RuleSet it constructs programmatically can be written to a rules file a
// user can keep, edit, and feed back through dinerosim --rules.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/rule_parser.hpp"
#include "core/rules.hpp"

namespace tdt::core {
namespace {

const char* const kRuleFiles[] = {
    TDT_RULES_DIR "/t1_soa_to_aos.rules",
    TDT_RULES_DIR "/t2_outline_rarely_used.rules",
    TDT_RULES_DIR "/t3_set_pinning.rules",
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(RulesRoundTrip, ParseWriteParseIsAFixedPoint) {
  for (const char* path : kRuleFiles) {
    SCOPED_TRACE(path);
    const RuleSet first = parse_rules(read_file(path));
    const std::string text1 = write_rules_string(first);
    ASSERT_FALSE(text1.empty());

    const RuleSet second = parse_rules(text1);
    const std::string text2 = write_rules_string(second);
    EXPECT_EQ(text1, text2);
  }
}

TEST(RulesRoundTrip, ReparsedRulesKeepStructure) {
  for (const char* path : kRuleFiles) {
    SCOPED_TRACE(path);
    const RuleSet first = parse_rules(read_file(path));
    const RuleSet second = parse_rules(write_rules_string(first));

    ASSERT_EQ(first.rules().size(), second.rules().size());
    for (std::size_t i = 0; i < first.rules().size(); ++i) {
      const TransformRule& a = first.rules()[i];
      const TransformRule& b = second.rules()[i];
      ASSERT_EQ(a.index(), b.index());
      EXPECT_EQ(rule_in_name(a), rule_in_name(b));
      if (const auto* sa = std::get_if<StructRule>(&a)) {
        const auto& sb = std::get<StructRule>(b);
        EXPECT_EQ(first.types().size_of(sa->in_type),
                  second.types().size_of(sb.in_type));
        ASSERT_EQ(sa->outs.size(), sb.outs.size());
        for (std::size_t o = 0; o < sa->outs.size(); ++o) {
          EXPECT_EQ(sa->outs[o].name, sb.outs[o].name);
          EXPECT_EQ(first.types().size_of(sa->outs[o].type),
                    second.types().size_of(sb.outs[o].type));
        }
        ASSERT_EQ(sa->links.size(), sb.links.size());
        for (std::size_t l = 0; l < sa->links.size(); ++l) {
          EXPECT_EQ(sa->links[l].owner, sb.links[l].owner);
          EXPECT_EQ(sa->links[l].field, sb.links[l].field);
          EXPECT_EQ(sa->links[l].pool, sb.links[l].pool);
        }
      } else {
        const auto& ta = std::get<StrideRule>(a);
        const auto& tb = std::get<StrideRule>(b);
        EXPECT_EQ(ta.in_count, tb.in_count);
        EXPECT_EQ(ta.out_name, tb.out_name);
        EXPECT_EQ(ta.out_count, tb.out_count);
        EXPECT_EQ(ta.formula.render(), tb.formula.render());
        ASSERT_EQ(ta.injects.size(), tb.injects.size());
        for (std::size_t k = 0; k < ta.injects.size(); ++k) {
          EXPECT_EQ(ta.injects[k].name, tb.injects[k].name);
          EXPECT_EQ(ta.injects[k].size, tb.injects[k].size);
          EXPECT_EQ(ta.injects[k].kind, tb.injects[k].kind);
        }
      }
    }
    // Validation must stay clean either way.
    for (const RuleDiagnostic& d : second.validate()) {
      EXPECT_NE(d.severity, RuleDiagnostic::Severity::Error) << d.message;
    }
  }
}

TEST(RulesRoundTrip, WriteRulesStreamMatchesString) {
  const RuleSet set = parse_rules(read_file(kRuleFiles[0]));
  std::ostringstream out;
  write_rules(set, out);
  EXPECT_EQ(out.str(), write_rules_string(set));
}

}  // namespace
}  // namespace tdt::core
