// Structural reproduction of the paper's Listing 1/2: the example program
// with globals, nested structures, and a function call, checked against
// the trace features the paper calls out in §III-A.
#include <gtest/gtest.h>

#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

using trace::AccessKind;
using trace::TraceRecord;
using trace::VarScope;

struct Listing1 : ::testing::Test {
  layout::TypeTable types;
  trace::TraceContext ctx;
  std::vector<TraceRecord> records;

  void SetUp() override {
    records = tracer::run_program(types, ctx, tracer::make_listing1(types));
  }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    for (const TraceRecord& r : records) out.push_back(ctx.format_record(r));
    return out;
  }

  const TraceRecord* find_store(const std::string& var) const {
    for (const TraceRecord& r : records) {
      if (r.kind == AccessKind::Store && !r.var.empty() &&
          ctx.format_var(r.var) == var) {
        return &r;
      }
    }
    return nullptr;
  }
};

TEST_F(Listing1, StartsWithZzqMarker) {
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(ctx.format_var(records[0].var), "_zzq_result");
  EXPECT_EQ(records[0].kind, AccessKind::Store);
  EXPECT_EQ(records[0].size, 8u);
  EXPECT_EQ(records[1].scope, VarScope::Unknown);  // bare `L ... main`
  EXPECT_EQ(records[1].kind, AccessKind::Load);
}

TEST_F(Listing1, GlobalScalarStoreHasGVScope) {
  // Paper trace line 4: `S 000601040 4 main GV glScalar`.
  const TraceRecord* rec = find_store("glScalar");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->scope, VarScope::GlobalVariable);
  EXPECT_EQ(rec->size, 4u);
  EXPECT_EQ(ctx.name(rec->function), "main");
  // Global addresses live in the 0x601xxx data segment.
  EXPECT_EQ(rec->address >> 12, 0x601u);
}

TEST_F(Listing1, GlobalStructElementAccessesFromFoo) {
  // Paper trace line 25: `S 0006010e0 8 foo GS glStructArray[0].dl`.
  const TraceRecord* rec = find_store("glStructArray[0].dl");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->scope, VarScope::GlobalStructure);
  EXPECT_EQ(rec->size, 8u);
  EXPECT_EQ(ctx.name(rec->function), "foo");
  // Paper trace line 29: nested array element inside the struct array.
  const TraceRecord* nested = find_store("glStructArray[0].myArray[0]");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->size, 4u);
}

TEST_F(Listing1, ParamAccessesResolveToCallersArray) {
  // Paper trace line 34: `S 7ff000060 8 foo LS 1 1 lcStrcArray[0].dl` —
  // the store through StrcParam is named after main's lcStrcArray with
  // frame distance 1.
  const TraceRecord* rec = find_store("lcStrcArray[0].dl");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->scope, VarScope::LocalStructure);
  EXPECT_EQ(ctx.name(rec->function), "foo");
  EXPECT_EQ(rec->frame, 1u);
  EXPECT_EQ(rec->thread, 1u);
}

TEST_F(Listing1, PointerParamLoadsAppear) {
  // Paper trace line 31: `L 7ff000030 8 foo LV 0 1 StrcParam`.
  std::uint64_t param_loads = 0;
  for (const TraceRecord& r : records) {
    if (r.kind == AccessKind::Load && !r.var.empty() &&
        ctx.format_var(r.var) == "StrcParam") {
      EXPECT_EQ(r.size, 8u);
      EXPECT_EQ(r.scope, VarScope::LocalVariable);
      EXPECT_EQ(r.frame, 0u);
      ++param_loads;
    }
  }
  EXPECT_EQ(param_loads, 2u);  // one per loop iteration in foo
}

TEST_F(Listing1, LoopCounterModifiesTraced) {
  // Paper trace lines 11/16: `M ... i` on each i++.
  std::uint64_t main_modifies = 0, foo_modifies = 0;
  for (const TraceRecord& r : records) {
    if (r.kind != AccessKind::Modify || r.var.empty()) continue;
    if (ctx.format_var(r.var) != "i") continue;
    (std::string(ctx.name(r.function)) == "main" ? main_modifies
                                                 : foo_modifies)++;
  }
  EXPECT_EQ(main_modifies, 2u);
  EXPECT_EQ(foo_modifies, 2u);
}

TEST_F(Listing1, GlobalLinesOmitFrameThreadInText) {
  for (const std::string& line : lines()) {
    if (line.find(" GV ") != std::string::npos ||
        line.find(" GS ") != std::string::npos) {
      // Gleipnir format: `K addr size func GV var` — exactly 6 fields.
      std::size_t fields = 1;
      for (char ch : line) fields += ch == ' ';
      EXPECT_EQ(fields, 6u) << line;
    }
  }
}

TEST_F(Listing1, TraceRoundTripsThroughTextFormat) {
  const std::string text = trace::write_trace_string(ctx, records, 13063);
  trace::TraceContext ctx2;
  const auto parsed = trace::read_trace_string(ctx2, text);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]));
  }
}

TEST_F(Listing1, CallOverheadStoresAreUnannotated) {
  // Paper trace lines 18-19: two 8-byte stores with no symbol info around
  // the call to foo.
  bool before_foo_seen = false;
  std::uint64_t unannotated = 0;
  for (const TraceRecord& r : records) {
    if (std::string(ctx.name(r.function)) == "foo" &&
        r.kind == AccessKind::Store && r.var.empty() && r.size == 8) {
      ++unannotated;
    }
    if (std::string(ctx.name(r.function)) == "main" &&
        r.kind == AccessKind::Store && r.var.empty() && r.size == 8) {
      before_foo_seen = true;
    }
  }
  EXPECT_TRUE(before_foo_seen);
  EXPECT_EQ(unannotated, 1u);
}

}  // namespace
}  // namespace tdt
