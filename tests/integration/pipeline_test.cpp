// Cross-module pipeline tests: file round trips, streaming sink chains,
// multi-rule files, dynamic (heap) structures, and hierarchy simulation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analysis/experiment.hpp"
#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/binary.hpp"
#include "trace/diff.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Pipeline, TraceFileRoundTripThenTransformThenDiff) {
  // The paper's full workflow, through actual files: trace -> file ->
  // simulator+transformer -> transformed_trace.out -> diff.
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, tracer::make_t1_soa(types, 16));
  const std::string orig_path = temp_path("tdt_pipe_orig.out");
  trace::write_trace_file(ctx, records, orig_path, 1);

  trace::TraceContext ctx2;
  const auto loaded = trace::read_trace_file(ctx2, orig_path);
  ASSERT_EQ(loaded.size(), records.size());

  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
)");
  const auto transformed = core::transform_trace(rules, ctx2, loaded);
  const std::string xform_path = temp_path("tdt_pipe_xform.out");
  trace::write_trace_file(ctx2, transformed, xform_path, 1);

  trace::TraceContext ctx3;
  const auto orig3 = trace::read_trace_file(ctx3, orig_path);
  const auto xform3 = trace::read_trace_file(ctx3, xform_path);
  const auto summary = trace::summarize(trace::diff_traces(orig3, xform3));
  EXPECT_EQ(summary.modified, 32u);
  EXPECT_EQ(summary.inserted, 0u);
  std::remove(orig_path.c_str());
  std::remove(xform_path.c_str());
}

TEST(Pipeline, StreamingTracerToTransformerToSimulator) {
  // Fully streaming: interpreter -> transformer -> cache sim, no
  // intermediate vectors.
  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA { int mX[64]; double mY[64]; };
out:
struct lAoS { int mX; double mY; }[64];
)");
  cache::CacheHierarchy hierarchy(cache::paper_direct_mapped());
  cache::TraceCacheSim sim(hierarchy);
  core::TraceTransformer transformer(rules, ctx, sim);
  tracer::Interpreter interp(types, ctx, transformer);
  interp.run(tracer::make_t1_soa(types, 64));
  EXPECT_EQ(sim.records_simulated(), transformer.stats().records_out);
  EXPECT_EQ(transformer.stats().rewritten, 128u);
  EXPECT_GT(hierarchy.l1().stats().hits(), 0u);
}

TEST(Pipeline, BinaryTraceOfKernelRoundTrips) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, tracer::make_t2_inline(types, 64));
  const auto blob = trace::write_binary_trace(ctx, records, 99);
  trace::TraceContext ctx2;
  const auto parsed = trace::read_binary_trace(ctx2, blob);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); i += 17) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]));
  }
}

TEST(Pipeline, MultipleRulesApplyIndependently) {
  // One rule file transforming two different structures in one trace.
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(ctx, R"(
S 7ff000400 4 main LS 0 1 lSoA.mX[0]
S 7ff000500 4 main LS 0 1 lContiguousArray[8]
L 7ff000600 4 main LV 0 1 untouched
)");
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
in:
int lContiguousArray[64]:lSetHashingArray;
out:
int lSetHashingArray[1024((lI/8)*(16*8)+(lI%8))];
)");
  core::TransformStats stats;
  const auto out = core::transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(ctx.format_var(out[0].var), "lAoS[0].mX");
  EXPECT_EQ(ctx.format_var(out[1].var), "lSetHashingArray[128]");
  EXPECT_EQ(ctx.format_var(out[2].var), "untouched");
  EXPECT_EQ(stats.rewritten, 2u);
  EXPECT_EQ(stats.passthrough, 1u);
}

TEST(Pipeline, LinkedListThroughHierarchy) {
  // Dynamic-structure trace (heap pointers) through a two-level hierarchy:
  // the shuffled list misses more in L1 than the sequential one.
  auto misses_for = [](bool shuffled) {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto records = tracer::run_program(
        types, ctx, tracer::make_linked_list(types, 4096, shuffled, 5));
    cache::CacheHierarchy h(
        {cache::CacheConfig{"l1", 4096, 64, 2,
                            cache::ReplacementPolicy::Lru,
                            cache::WritePolicy::WriteBack,
                            cache::AllocPolicy::WriteAllocate, 1},
         cache::modern_l2()});
    cache::TraceCacheSim sim(h);
    sim.simulate(records);
    return h.l1().stats().misses();
  };
  const std::uint64_t sequential = misses_for(false);
  const std::uint64_t shuffled = misses_for(true);
  EXPECT_GT(shuffled, sequential * 2);
}

TEST(Pipeline, ModifyRecordsSurviveTransformation) {
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx, "M 7ff000400 4 main LS 0 1 lSoA.mX[5]\n");
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
)");
  const auto out = core::transform_trace(rules, ctx, records);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, trace::AccessKind::Modify);
  EXPECT_EQ(ctx.format_var(out[0].var), "lAoS[5].mX");
}

TEST(Pipeline, TransformIsIdempotentOnItsOwnOutput) {
  // The paper: "if a structure with the same nesting is encountered the
  // simulator will simply ignore it" — re-running the rules on the
  // transformed trace leaves it unchanged (lAoS matches no in rule).
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "S 7ff000400 4 main LS 0 1 lSoA.mX[0]\n"
      "S 7ff000440 8 main LS 0 1 lSoA.mY[0]\n");
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
)");
  const auto once = core::transform_trace(rules, ctx, records);
  core::TransformStats stats;
  const auto twice = core::transform_trace(rules, ctx, once, {}, &stats);
  ASSERT_EQ(twice.size(), once.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(twice[i], once[i]);
  }
  EXPECT_EQ(stats.rewritten, 0u);
  EXPECT_EQ(stats.passthrough, stats.records_in);
}

TEST(Pipeline, ExperimentOnMatmulLayouts) {
  // The motivating scientific-code scenario: ikj loop order misses less
  // than ijk on the same cache (B walked row-wise instead of column-wise).
  auto misses_for = [](bool ikj) {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto prog = tracer::make_matmul(types, 24, ikj);
    const auto result =
        analysis::run_experiment(types, ctx, prog, cache::CacheConfig{
            "small-l1", 4096, 64, 2, cache::ReplacementPolicy::Lru,
            cache::WritePolicy::WriteBack, cache::AllocPolicy::WriteAllocate,
            1});
    return result.before.l1.misses();
  };
  EXPECT_LT(misses_for(true), misses_for(false));
}

}  // namespace
}  // namespace tdt
