// End-to-end reproduction of transformation T2 (Listings 6-8, Figures
// 6-8): nested hot/cold struct outlined behind a pointer, with inserted
// indirection loads.
#include <gtest/gtest.h>

#include <set>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "trace/diff.hpp"
#include "tracer/kernels.hpp"

namespace tdt {
namespace {

constexpr std::int64_t kLen = 1024;

std::string t2_rules_text() {
  const std::string n = std::to_string(kLen);
  return R"(
in:
struct mRarelyUsed {
  double mY;
  int mZ;
};
struct lS1 {
  int mFrequentlyUsed;
  struct mRarelyUsed;
}[)" + n + R"(];
out:
struct lStorageForRarelyUsed {
  double mY;
  int mZ;
}[)" + n + R"(];
struct lS2 {
  int mFrequentlyUsed;
  + mRarelyUsed:lStorageForRarelyUsed;
}[)" + n + R"(];
)";
}

struct T2 : ::testing::Test {
  layout::TypeTable types;
  trace::TraceContext ctx;
  core::RuleSet rules = core::parse_rules(t2_rules_text());
  analysis::ExperimentResult result;

  void SetUp() override {
    const auto prog = tracer::make_t2_inline(types, kLen);
    result = analysis::run_experiment(types, ctx, prog,
                                      cache::paper_direct_mapped(), &rules);
  }
};

TEST_F(T2, OnePointerLoadPerColdAccess) {
  // Two cold accesses per element (mY, mZ), each gains one inserted load.
  EXPECT_EQ(result.transform_stats.inserted, 2u * kLen);
  EXPECT_EQ(result.transform_stats.rewritten, 3u * kLen);
  EXPECT_EQ(result.diff.inserted, 2u * kLen);
  EXPECT_EQ(result.diff.modified, 3u * kLen);
  EXPECT_EQ(result.diff.deleted, 0u);
  EXPECT_EQ(result.transformed.size(), result.original.size() + 2u * kLen);
}

TEST_F(T2, InsertedLoadsReferencePointerField) {
  std::uint64_t ptr_loads = 0;
  for (const trace::TraceRecord& r : result.transformed) {
    if (r.kind == trace::AccessKind::Load && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "lS2" &&
        ctx.format_var(r.var).find(".mRarelyUsed") != std::string::npos) {
      EXPECT_EQ(r.size, 8u);
      ++ptr_loads;
    }
  }
  EXPECT_EQ(ptr_loads, 2u * kLen);
}

TEST_F(T2, ColdDataMovedToPool) {
  std::uint64_t pool_stores = 0;
  for (const trace::TraceRecord& r : result.transformed) {
    if (r.kind == trace::AccessKind::Store && !r.var.empty() &&
        std::string(ctx.name(r.var.base)) == "lStorageForRarelyUsed") {
      ++pool_stores;
    }
  }
  EXPECT_EQ(pool_stores, 2u * kLen);
  // Nothing references lS1 anymore.
  for (const trace::TraceRecord& r : result.transformed) {
    if (!r.var.empty()) {
      EXPECT_NE(std::string(ctx.name(r.var.base)), "lS1");
    }
  }
}

TEST_F(T2, HotFieldFootprintShrinks) {
  // lS1 element is 24 B; the hot walk alone (mFrequentlyUsed each 24 B)
  // touches every line of 24 KiB. After outlining, hot fields sit in
  // 16-byte lS2 elements (16 KiB): fewer lines for the hot stream.
  const cache::CacheConfig cfg = cache::paper_direct_mapped();
  auto hot_lines = [&](const std::vector<trace::TraceRecord>& recs,
                       const char* base) {
    std::set<std::uint64_t> lines;
    for (const trace::TraceRecord& r : recs) {
      if (!r.var.empty() && std::string(ctx.name(r.var.base)) == base &&
          ctx.format_var(r.var).find("mFrequentlyUsed") !=
              std::string::npos) {
        lines.insert(r.address / cfg.block_size);
      }
    }
    return lines.size();
  };
  const std::size_t before = hot_lines(result.original, "lS1");
  const std::size_t after = hot_lines(result.transformed, "lS2");
  EXPECT_EQ(before, 768u);  // 24 KiB / 32 B
  EXPECT_EQ(after, 512u);   // 16 KiB / 32 B
}

TEST_F(T2, ExtraAccessesVisibleInSimulation) {
  // Figure 7's "uniformity changed due to the extra load instructions":
  // the after-simulation sees exactly the inserted accesses on top.
  EXPECT_EQ(result.after.l1.accesses(),
            result.before.l1.accesses() + 2u * kLen);
  EXPECT_TRUE(result.after.per_set.contains("lStorageForRarelyUsed"));
  EXPECT_TRUE(result.after.per_set.contains("lS2"));
}

TEST_F(T2, DiffRendersInsertedRows) {
  const auto entries = trace::diff_traces(result.original, result.transformed);
  const std::string rendering = trace::render_side_by_side(
      ctx, result.original, result.transformed, entries, 64);
  EXPECT_NE(rendering.find("+ "), std::string::npos);
  EXPECT_NE(rendering.find("mRarelyUsed"), std::string::npos);
}

}  // namespace
}  // namespace tdt
