// The shipped kernel sources under kernels/ must parse, trace, and—where
// a rules/ file targets them—transform exactly like the built-in kernels.
// TDT_KERNELS_DIR / TDT_RULES_DIR are injected by CMake.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "tracer/parser.hpp"

#ifndef TDT_KERNELS_DIR
#error "TDT_KERNELS_DIR must be defined by the build"
#endif

namespace tdt {
namespace {

std::string kernel_path(const char* name) {
  return std::string(TDT_KERNELS_DIR) + "/" + name;
}

std::string rules_path(const char* name) {
  return std::string(TDT_RULES_DIR) + "/" + name;
}

std::string trace_of(const tracer::Program& prog, layout::TypeTable& types) {
  trace::TraceContext ctx;
  return trace::write_trace_string(ctx, tracer::run_program(types, ctx, prog),
                                   1);
}

/// Trace text with the address column removed: the .c kernels follow the
/// paper's C99 style (declarations inside `for`), so stack layout differs
/// from the builder kernels while the access structure must not.
std::string structural(std::string text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Record lines: "K ADDRESS rest..." -> "K rest...".
    if (line.size() > 2 && line[1] == ' ' &&
        line.find(' ', 2) != std::string::npos) {
      out += line.substr(0, 2) + line.substr(line.find(' ', 2) + 1);
    } else {
      out += line;
    }
    out += '\n';
  }
  return out;
}

TEST(KernelSources, AllFilesParseAndTrace) {
  for (const char* name :
       {"t1_soa.c", "t1_aos.c", "t2_inline.c", "t2_outlined.c",
        "t3_contiguous.c", "t3_strided.c", "listing1.c", "matmul.c",
        "stencil2d.c"}) {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto prog = tracer::parse_kernel_file(kernel_path(name), types);
    const auto records = tracer::run_program(types, ctx, prog);
    EXPECT_GT(records.size(), 20u) << name;
  }
}

TEST(KernelSources, SourceKernelsMatchBuiltins) {
  struct Case {
    const char* file;
    tracer::Program (*make)(layout::TypeTable&, std::int64_t);
  };
  for (const Case& c : {Case{"t1_soa.c", &tracer::make_t1_soa},
                        Case{"t1_aos.c", &tracer::make_t1_aos},
                        Case{"t2_inline.c", &tracer::make_t2_inline},
                        Case{"t2_outlined.c", &tracer::make_t2_outlined},
                        Case{"t3_contiguous.c", &tracer::make_t3_contiguous}}) {
    layout::TypeTable source_types;
    const std::string from_source = trace_of(
        tracer::parse_kernel_file(kernel_path(c.file), source_types),
        source_types);
    layout::TypeTable builder_types;
    const std::string from_builder =
        trace_of(c.make(builder_types, 1024), builder_types);
    EXPECT_EQ(structural(from_source), structural(from_builder)) << c.file;
  }
}

TEST(KernelSources, Listing1MatchesBuiltin) {
  layout::TypeTable source_types;
  const std::string from_source = trace_of(
      tracer::parse_kernel_file(kernel_path("listing1.c"), source_types),
      source_types);
  layout::TypeTable builder_types;
  const std::string from_builder =
      trace_of(tracer::make_listing1(builder_types), builder_types);
  EXPECT_EQ(structural(from_source), structural(from_builder));
}

TEST(KernelSources, StridedSourceMatchesBuiltin) {
  layout::TypeTable source_types;
  const std::string from_source = trace_of(
      tracer::parse_kernel_file(kernel_path("t3_strided.c"), source_types),
      source_types);
  layout::TypeTable builder_types;
  const std::string from_builder = trace_of(
      tracer::make_t3_strided(builder_types, 1024, 16, 32), builder_types);
  EXPECT_EQ(structural(from_source), structural(from_builder));
}

TEST(KernelSources, SourceKernelPlusRuleFileReproducesT1) {
  // The complete user workflow: C source in, rule file in, transformed
  // per-set data out.
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto prog = tracer::parse_kernel_file(kernel_path("t1_soa.c"), types);
  const core::RuleSet rules =
      core::parse_rules_file(rules_path("t1_soa_to_aos.rules"));
  const auto result = analysis::run_experiment(
      types, ctx, prog, cache::paper_direct_mapped(), &rules);
  EXPECT_EQ(result.transform_stats.rewritten, 2048u);
  EXPECT_TRUE(result.after.per_set.contains("lAoS"));
}

}  // namespace
}  // namespace tdt
