# CLI smoke test: trace -> transform+simulate -> diff -> info, exactly the
# paper's workflow, via the installed tools.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 64 --out ${WORKDIR}/orig.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gtracer failed: ${rc}")
endif()

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out
          --size 32768 --block 32 --assoc 1 --per-set
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dinerosim (plain) failed: ${rc}")
endif()
if(NOT out MATCHES "miss ratio")
  message(FATAL_ERROR "dinerosim output missing stats: ${out}")
endif()

# Rule file is written for LEN=1024; regenerate the matching trace.
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 1024 --out ${WORKDIR}/orig.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gtracer (len 1024) failed: ${rc}")
endif()

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out --rules ${RULES}
          --xform-out ${WORKDIR}/xform.out --size 32768 --block 32 --assoc 1
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dinerosim (rules) failed: ${rc}")
endif()
if(NOT EXISTS ${WORKDIR}/xform.out)
  message(FATAL_ERROR "transformed trace not written")
endif()

# tracediff exits 1 when differences exist — which they must here.
execute_process(
  COMMAND ${TRACEDIFF} ${WORKDIR}/orig.out ${WORKDIR}/xform.out --summary
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "tracediff expected exit 1 (differences), got ${rc}")
endif()
if(NOT out MATCHES "modified 2048")
  message(FATAL_ERROR "tracediff summary unexpected: ${out}")
endif()

execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/xform.out
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traceinfo failed: ${rc}")
endif()
if(NOT out MATCHES "lAoS")
  message(FATAL_ERROR "traceinfo output missing transformed variable")
endif()

# din export + import.
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 64 --din --out ${WORKDIR}/t.din
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gtracer --din failed: ${rc}")
endif()
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/t.din --size 4096 --block 32
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "miss ratio")
  message(FATAL_ERROR "dinerosim on din trace failed: ${rc}")
endif()

# advisor + prefetch + L2 flags.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out --size 8192
          --prefetch tagged --l2-size 65536 --advise
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "transformation advisor")
  message(FATAL_ERROR "dinerosim --advise failed: ${rc}")
endif()

# multicore mode.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out --cores 2 --assoc 8
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "MESI system")
  message(FATAL_ERROR "dinerosim --cores failed: ${rc}")
endif()

# one-pass sweep: the parallel pipeline must produce byte-identical
# stdout at any job count.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out
          --sweep "assoc=1;assoc=2;size=8k,assoc=4;block=64" --jobs 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE sweep_seq)
if(NOT rc EQUAL 0 OR NOT sweep_seq MATCHES "sweep summary")
  message(FATAL_ERROR "dinerosim --sweep --jobs 1 failed: ${rc}")
endif()
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out
          --sweep "assoc=1;assoc=2;size=8k,assoc=4;block=64" --jobs 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE sweep_par ERROR_VARIABLE sweep_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dinerosim --sweep --jobs 4 failed: ${rc}")
endif()
if(NOT sweep_seq STREQUAL sweep_par)
  message(FATAL_ERROR "sweep output differs between --jobs 1 and --jobs 4:\n"
                      "=== jobs 1 ===\n${sweep_seq}\n"
                      "=== jobs 4 ===\n${sweep_par}")
endif()
if(NOT sweep_err MATCHES "pipeline:")
  message(FATAL_ERROR "pipeline counters missing from stderr: ${sweep_err}")
endif()
