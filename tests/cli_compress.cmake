# CLI contract for the TDTB v3 framed container (docs/FORMATS.md):
# --compress on the writers, auto-detected parallel decode on the
# readers, the traceinfo container section, transparent .gz text
# ingest, and graceful degradation when a codec library is absent.
# Codec-none rows run unconditionally (framing needs no library);
# zstd/lz4 rows are gated by a runtime probe of the writer.
file(MAKE_DIRECTORY ${WORKDIR})

function(check_rc what expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${what}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

function(check_same what file_a file_b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${file_a} ${file_b}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: output differs (${file_a} vs ${file_b})")
  endif()
endfunction()

# -- Fixtures: the same kernel as text, flat v2, and framed v3. ---------------
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 2048 --out ${WORKDIR}/plain.out
  RESULT_VARIABLE rc)
check_rc("gtracer text" 0 "${rc}")
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 2048 --binary
          --out ${WORKDIR}/flat.tdtb
  RESULT_VARIABLE rc)
check_rc("gtracer v2" 0 "${rc}")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/plain.out --size 4096
  OUTPUT_FILE ${WORKDIR}/baseline.stdout RESULT_VARIABLE rc)
check_rc("dinerosim text baseline" 0 "${rc}")

# -- Codec matrix: none unconditionally, zstd/lz4 when loadable. --------------
# The probe *is* the writer: an unavailable codec is a classified config
# error (exit 2, "unavailable" on stderr), never a silent fallback.
set(codecs none)
foreach(codec zstd lz4)
  execute_process(
    COMMAND ${GTRACER} --kernel t1_soa --len 2048 --binary
            --compress ${codec} --out ${WORKDIR}/c_${codec}.tdtb
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(rc EQUAL 0)
    list(APPEND codecs ${codec})
  elseif(rc EQUAL 2 AND err MATCHES "unavailable")
    message(STATUS "codec ${codec} not loadable here; row skipped")
  else()
    message(FATAL_ERROR "gtracer --compress ${codec}: exit ${rc}: ${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 2048 --binary
          --compress none --out ${WORKDIR}/c_none.tdtb
  RESULT_VARIABLE rc)
check_rc("gtracer --compress none" 0 "${rc}")

foreach(codec ${codecs})
  set(tdtb ${WORKDIR}/c_${codec}.tdtb)

  # Readers need no flag: the container names its codec per frame, and
  # the simulation must match the text baseline bit-for-bit.
  execute_process(
    COMMAND ${DINEROSIM} --trace ${tdtb} --size 4096
    OUTPUT_FILE ${WORKDIR}/read_${codec}_j1.stdout RESULT_VARIABLE rc)
  check_rc("dinerosim ${codec} jobs=1" 0 "${rc}")
  check_same("v3 ${codec} matches text baseline"
             ${WORKDIR}/baseline.stdout ${WORKDIR}/read_${codec}_j1.stdout)

  # Parallel shard decode publishes in frame order: jobs=4 output is
  # byte-identical to the sequential read.
  execute_process(
    COMMAND ${DINEROSIM} --trace ${tdtb} --size 4096 --jobs 4
    OUTPUT_FILE ${WORKDIR}/read_${codec}_j4.stdout RESULT_VARIABLE rc)
  check_rc("dinerosim ${codec} jobs=4" 0 "${rc}")
  check_same("v3 ${codec} jobs=4 == jobs=1"
             ${WORKDIR}/read_${codec}_j1.stdout
             ${WORKDIR}/read_${codec}_j4.stdout)

  # tracediff closes the loop: the framed container decodes to exactly
  # the records the text trace holds.
  execute_process(
    COMMAND ${TRACEDIFF} ${WORKDIR}/plain.out ${tdtb} --summary
    RESULT_VARIABLE rc)
  check_rc("tracediff text vs ${codec} container" 0 "${rc}")

  # traceinfo renders the container section for every codec.
  execute_process(
    COMMAND ${TRACEINFO} ${tdtb}
    OUTPUT_VARIABLE info RESULT_VARIABLE rc)
  check_rc("traceinfo ${codec}" 0 "${rc}")
  if(NOT info MATCHES "== container ==")
    message(FATAL_ERROR "traceinfo ${codec} missing container section")
  endif()
  if(NOT info MATCHES "frames")
    message(FATAL_ERROR "traceinfo ${codec} missing frame count")
  endif()
endforeach()

# A compressed container really is smaller than the flat v2 blob.
if(codecs MATCHES "zstd")
  file(SIZE ${WORKDIR}/flat.tdtb flat_size)
  file(SIZE ${WORKDIR}/c_zstd.tdtb zstd_size)
  if(NOT zstd_size LESS flat_size)
    message(FATAL_ERROR
      "zstd container (${zstd_size}) not smaller than flat v2 (${flat_size})")
  endif()
endif()

# -- Degradation without codec libraries (TDT_NO_CODEC=1). --------------------
# Writing a compressed container must fail loudly...
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env TDT_NO_CODEC=1
          ${GTRACER} --kernel t1_soa --len 64 --binary
          --compress zstd --out ${WORKDIR}/denied.tdtb
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("gtracer --compress zstd under TDT_NO_CODEC" 2 "${rc}")
if(NOT err MATCHES "unavailable")
  message(FATAL_ERROR "TDT_NO_CODEC write missing diagnostic: ${err}")
endif()
# ...while codec-none containers stay fully usable: framing, the
# seekable index, and parallel decode need no library at all.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env TDT_NO_CODEC=1
          ${DINEROSIM} --trace ${WORKDIR}/c_none.tdtb --size 4096 --jobs 4
  OUTPUT_FILE ${WORKDIR}/nocodec.stdout RESULT_VARIABLE rc)
check_rc("dinerosim codec-none under TDT_NO_CODEC" 0 "${rc}")
check_same("codec-none read is library-free"
           ${WORKDIR}/baseline.stdout ${WORKDIR}/nocodec.stdout)

# -- Transparent gzip text ingest. --------------------------------------------
# gtracer writes gzip when the output path ends in .gz; readers sniff the
# magic, so the compressed text simulates identically with no flag.
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 2048
          --out ${WORKDIR}/plain.out.gz
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  file(SIZE ${WORKDIR}/plain.out plain_size)
  file(SIZE ${WORKDIR}/plain.out.gz gz_size)
  if(NOT gz_size LESS plain_size)
    message(FATAL_ERROR ".gz output (${gz_size}) not smaller than text (${plain_size})")
  endif()
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/plain.out.gz --size 4096
    OUTPUT_FILE ${WORKDIR}/gz.stdout RESULT_VARIABLE rc)
  check_rc("dinerosim .gz ingest" 0 "${rc}")
  check_same(".gz ingest matches plain text"
             ${WORKDIR}/baseline.stdout ${WORKDIR}/gz.stdout)
elseif(rc EQUAL 2 AND err MATCHES "gzip")
  message(STATUS "zlib not built in; gzip rows skipped")
else()
  message(FATAL_ERROR "gtracer .gz: exit ${rc}: ${err}")
endif()

message(STATUS "cli_compress: codecs exercised: ${codecs}")
