// Property tests for the transformer's plan cache: a cached run must be
// bit-identical to the reference slow path on every rule family (T1
// struct remap, T2 outlining with pointer indirection, T3 stride remap
// with injects), including the awkward shapes — wrong arity, out-of-range
// indices, unmapped elements — that the cache must refuse to serve.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/reader.hpp"
#include "trace/sink.hpp"
#include "trace/writer.hpp"
#include "util/string_util.hpp"

namespace tdt::core {
namespace {

using trace::TraceContext;
using trace::TraceRecord;

constexpr const char* kT1Rules = R"(
in:
struct lSoA {
  int mX[16];
  double mY[16];
};
out:
struct lAoS {
  int mX;
  double mY;
}[16];
)";

constexpr const char* kT2Rules = R"(
in:
struct mRarelyUsed {
  double mY;
  int mZ;
};
struct lS1 {
  int mFrequentlyUsed;
  struct mRarelyUsed;
}[16];
out:
struct lStorageForRarelyUsed {
  double mY;
  int mZ;
}[16];
struct lS2 {
  int mFrequentlyUsed;
  + mRarelyUsed:lStorageForRarelyUsed;
}[16];
)";

constexpr const char* kT3Rules = R"(
in:
int lContiguousArray[64]:lSetHashingArray;
out:
int lSetHashingArray[1024((lI/8)*(16*8)+(lI%8))];
inject:
L lITEMSPERLINE 4;
)";

/// T1 corpus: every mX/mY element twice (the second pass hits the cache),
/// plus shapes the cache must bounce — whole-array access, wrong arity,
/// out-of-range index, and an unrelated variable.
std::string t1_corpus() {
  std::string text;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 16; ++i) {
      const auto idx = std::to_string(i);
      text += "S " + to_hex(0x7ff000400 + 4u * static_cast<unsigned>(i), 9) +
              " 4 main LS 0 1 lSoA.mX[" + idx + "]\n";
      text += "L " + to_hex(0x7ff000440 + 8u * static_cast<unsigned>(i), 9) +
              " 8 main LS 0 1 lSoA.mY[" + idx + "]\n";
    }
    text += "L 7ff000400 4 main LS 0 1 lSoA.mX\n";       // missing index
    text += "L 7ff000400 4 main LS 0 1 lSoA.mX[3][1]\n"; // extra index
    text += "L 7ff000400 4 main LS 0 1 lSoA.mX[99]\n";   // out of range
    text += "L 7ff000300 4 main LV 0 1 lOther[2]\n";     // no rule
  }
  return text;
}

/// T2 corpus: hot and cold accesses over the outlined struct, repeated.
std::string t2_corpus() {
  std::string text;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 16; ++i) {
      const auto idx = std::to_string(i);
      const auto base = 0x7ff000800 + 24u * static_cast<unsigned>(i);
      text += "S " + to_hex(base, 9) + " 4 main LS 0 1 lS1[" + idx +
              "].mFrequentlyUsed\n";
      text += "L " + to_hex(base + 8, 9) + " 8 main LS 0 1 lS1[" + idx +
              "].mRarelyUsed.mY\n";
      text += "S " + to_hex(base + 16, 9) + " 4 main LS 0 1 lS1[" + idx +
              "].mRarelyUsed.mZ\n";
    }
    text += "L 7ff000800 4 main LS 0 1 lS1[20].mFrequentlyUsed\n";  // range
    text += "L 7ff000800 4 main LS 0 1 lS1[0].mMissing\n";  // unmapped
  }
  return text;
}

/// T3 corpus: flat array walk, repeated, plus shapes the stride rule
/// rejects (field access, remap landing out of range never happens for
/// this formula, but wrong arity does).
std::string t3_corpus() {
  std::string text;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 64; ++i) {
      text += "S " + to_hex(0x7ff000c00 + 4u * static_cast<unsigned>(i), 9) +
              " 4 main LV 0 1 lContiguousArray[" + std::to_string(i) + "]\n";
    }
    text += "L 7ff000c00 4 main LV 0 1 lContiguousArray.mX\n";  // not flat
    text += "L 7ff000c00 4 main LV 0 1 lContiguousArray\n";     // no index
  }
  return text;
}

struct RunResult {
  std::string rendered;
  TransformStats stats;
};

RunResult run(const std::string& rule_text, const std::string& corpus,
              bool plan_cache) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(rule_text);
  const auto records = trace::read_trace_string(ctx, corpus);
  TransformOptions options;
  options.plan_cache = plan_cache;
  RunResult result;
  const auto out =
      transform_trace(rules, ctx, records, options, &result.stats);
  result.rendered = trace::write_trace_string(ctx, out);
  return result;
}

void expect_equivalent(const std::string& rule_text,
                       const std::string& corpus) {
  const RunResult cached = run(rule_text, corpus, /*plan_cache=*/true);
  const RunResult reference = run(rule_text, corpus, /*plan_cache=*/false);
  EXPECT_EQ(cached.rendered, reference.rendered);
  EXPECT_EQ(cached.stats.records_in, reference.stats.records_in);
  EXPECT_EQ(cached.stats.records_out, reference.stats.records_out);
  EXPECT_EQ(cached.stats.rewritten, reference.stats.rewritten);
  EXPECT_EQ(cached.stats.inserted, reference.stats.inserted);
  EXPECT_EQ(cached.stats.passthrough, reference.stats.passthrough);
  EXPECT_EQ(cached.stats.skipped, reference.stats.skipped);
  EXPECT_EQ(cached.stats.diagnostics, reference.stats.diagnostics);
  EXPECT_EQ(reference.stats.plan_hits, 0u);
  EXPECT_EQ(reference.stats.plan_misses, 0u);
  EXPECT_GT(cached.stats.plan_hits, 0u);
}

TEST(PlanCache, T1BitIdenticalToSlowPath) {
  expect_equivalent(kT1Rules, t1_corpus());
}

TEST(PlanCache, T2BitIdenticalToSlowPath) {
  expect_equivalent(kT2Rules, t2_corpus());
}

TEST(PlanCache, StrideBitIdenticalToSlowPath) {
  expect_equivalent(kT3Rules, t3_corpus());
}

TEST(PlanCache, CountsHitsAndMisses) {
  const RunResult cached = run(kT1Rules, t1_corpus(), /*plan_cache=*/true);
  // Two distinct cacheable shapes (lSoA.mX[*], lSoA.mY[*]) miss once each;
  // every further in-bounds record of those shapes is a hit.
  EXPECT_EQ(cached.stats.plan_misses, 2u);
  EXPECT_EQ(cached.stats.plan_hits, cached.stats.rewritten - 2u);
}

// Shapes that share the base symbol but differ in index arity must hash to
// different plans: lSoA.mX[3] (cached) never serves lSoA.mX or
// lSoA.mX[3][1], which stay slow-path rejects on every occurrence.
TEST(PlanCache, CollidingShapesWithDifferentArityStayDistinct) {
  const std::string corpus =
      "S 7ff00040c 4 main LS 0 1 lSoA.mX[3]\n"
      "L 7ff000400 4 main LS 0 1 lSoA.mX\n"
      "S 7ff00040c 4 main LS 0 1 lSoA.mX[3]\n"
      "L 7ff000400 4 main LS 0 1 lSoA.mX[3][1]\n"
      "S 7ff000410 4 main LS 0 1 lSoA.mX[4]\n";
  const RunResult cached = run(kT1Rules, corpus, /*plan_cache=*/true);
  const RunResult reference = run(kT1Rules, corpus, /*plan_cache=*/false);
  EXPECT_EQ(cached.rendered, reference.rendered);
  EXPECT_EQ(cached.stats.rewritten, 3u);
  EXPECT_EQ(cached.stats.skipped, 2u);  // the arity mismatches, every time
  EXPECT_EQ(cached.stats.plan_misses, 1u);  // mX[*] resolved slowly once
  EXPECT_EQ(cached.stats.plan_hits, 2u);    // mX[3] again, mX[4]
  EXPECT_EQ(cached.stats.diagnostics, reference.stats.diagnostics);
}

TEST(PlanCache, OutBaseParity) {
  TraceContext cached_ctx;
  TraceContext ref_ctx;
  const RuleSet cached_rules = parse_rules(kT1Rules);
  const RuleSet ref_rules = parse_rules(kT1Rules);
  const auto cached_records =
      trace::read_trace_string(cached_ctx, t1_corpus());
  const auto ref_records = trace::read_trace_string(ref_ctx, t1_corpus());

  trace::VectorSink cached_sink;
  TransformOptions cached_options;
  cached_options.plan_cache = true;
  TraceTransformer cached_tf(cached_rules, cached_ctx, cached_sink,
                             cached_options);
  for (const TraceRecord& rec : cached_records) cached_tf.on_record(rec);
  cached_tf.on_end();

  trace::VectorSink ref_sink;
  TransformOptions ref_options;
  ref_options.plan_cache = false;
  TraceTransformer ref_tf(ref_rules, ref_ctx, ref_sink, ref_options);
  for (const TraceRecord& rec : ref_records) ref_tf.on_record(rec);
  ref_tf.on_end();

  const auto cached_base = cached_tf.out_base("lSoA", "lAoS");
  const auto ref_base = ref_tf.out_base("lSoA", "lAoS");
  ASSERT_TRUE(cached_base.has_value());
  EXPECT_EQ(cached_base, ref_base);
  EXPECT_FALSE(cached_tf.out_base("lSoA", "nope").has_value());
  EXPECT_FALSE(cached_tf.out_base("nope", "lAoS").has_value());
}

}  // namespace
}  // namespace tdt::core
