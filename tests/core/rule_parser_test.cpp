#include "core/rule_parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::core {
namespace {

// The paper's Listing 5 rule, verbatim structure.
constexpr const char* kListing5 = R"(
in:
struct lSoA {
  int mX[16];
  double mY[16];
};
out:
struct lAoS {
  int mX;
  double mY;
}[16];
)";

// Listing 8 with the paper's pool-type typo fixed (types must match the
// in elements; see EXPERIMENTS.md).
constexpr const char* kListing8 = R"(
in:
struct mRarelyUsed {
  double mY;
  int mZ;
};
struct lS1 {
  int mFrequentlyUsed;
  struct mRarelyUsed;
}[16];
out:
struct lStorageForRarelyUsed {
  double mY;
  int mZ;
}[16];
struct lS2 {
  int mFrequentlyUsed;
  + mRarelyUsed:lStorageForRarelyUsed;
}[16];
)";

// Listing 11 plus the inject extension.
constexpr const char* kListing11 = R"(
in:
int lContiguousArray[1024]:lSetHashingArray;
out:
int lSetHashingArray[16384((lI/8)*(16*8)+(lI%8))];
inject:
L lITEMSPERLINE 4;
L lI 4;
)";

TEST(RuleParser, Listing5ParsesAsLayoutRule) {
  const RuleSet rules = parse_rules(kListing5);
  ASSERT_EQ(rules.rules().size(), 1u);
  const auto& rule = std::get<StructRule>(rules.rules()[0]);
  EXPECT_EQ(rule.in_name, "lSoA");
  EXPECT_TRUE(rule.links.empty());
  ASSERT_EQ(rule.outs.size(), 1u);
  EXPECT_EQ(rule.outs[0].name, "lAoS");
  // lAoS is an array of 16 16-byte structs.
  EXPECT_EQ(rules.types().size_of(rule.outs[0].type), 256u);
  EXPECT_EQ(rules.types().size_of(rule.in_type), 192u);  // 64 + 128
}

TEST(RuleParser, Listing8ParsesAsIndirectionRule) {
  const RuleSet rules = parse_rules(kListing8);
  ASSERT_EQ(rules.rules().size(), 1u);
  const auto& rule = std::get<StructRule>(rules.rules()[0]);
  EXPECT_EQ(rule.in_name, "lS1");
  ASSERT_EQ(rule.outs.size(), 2u);
  EXPECT_EQ(rule.outs[0].name, "lStorageForRarelyUsed");
  EXPECT_EQ(rule.outs[1].name, "lS2");
  ASSERT_EQ(rule.links.size(), 1u);
  EXPECT_EQ(rule.links[0].owner, "lS2");
  EXPECT_EQ(rule.links[0].field, "mRarelyUsed");
  EXPECT_EQ(rule.links[0].pool, "lStorageForRarelyUsed");
  // lS2 element: int + pointer = 16 bytes.
  const auto& t = rules.types();
  EXPECT_EQ(t.size_of(t.element(rule.outs[1].type)), 16u);
}

TEST(RuleParser, Listing11ParsesAsStrideRule) {
  const RuleSet rules = parse_rules(kListing11);
  ASSERT_EQ(rules.rules().size(), 1u);
  const auto& rule = std::get<StrideRule>(rules.rules()[0]);
  EXPECT_EQ(rule.in_name, "lContiguousArray");
  EXPECT_EQ(rule.in_count, 1024u);
  EXPECT_EQ(rule.out_name, "lSetHashingArray");
  EXPECT_EQ(rule.out_count, 16384u);
  EXPECT_EQ(rule.formula.eval(8), 128);
  ASSERT_EQ(rule.injects.size(), 2u);
  EXPECT_EQ(rule.injects[0].name, "lITEMSPERLINE");
  EXPECT_EQ(rule.injects[0].size, 4u);
  EXPECT_EQ(rule.injects[1].name, "lI");
}

TEST(RuleParser, MultipleRulesInOneFile) {
  const std::string text = std::string(kListing5) + kListing11;
  const RuleSet rules = parse_rules(text);
  EXPECT_EQ(rules.rules().size(), 2u);
  EXPECT_NE(rules.find("lSoA"), nullptr);
  EXPECT_NE(rules.find("lContiguousArray"), nullptr);
  EXPECT_EQ(rules.find("nothing"), nullptr);
}

TEST(RuleParser, DuplicateInVariableRejected) {
  const std::string text = std::string(kListing5) + kListing5;
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, MissingOutSectionRejected) {
  EXPECT_THROW((void)parse_rules("in:\nstruct X { int a; };\n"), Error);
}

TEST(RuleParser, EmptyInSectionRejected) {
  EXPECT_THROW((void)parse_rules("in:\nout:\nstruct Y { int a; };\n"), Error);
}

TEST(RuleParser, UnknownPoolRejected) {
  const char* text = R"(
in:
struct A { int x; }[4];
out:
struct B {
  + x:NoSuchPool;
}[4];
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, UnmappableElementRejected) {
  // out lacks element 'b' -> validation error surfaces at parse.
  const char* text = R"(
in:
struct A { int a; int b; };
out:
struct B { int a; };
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, WildcardCountMismatchRejected) {
  const char* text = R"(
in:
struct A { int m[4]; };
out:
struct B { int m; };
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, StrideFormulaOutOfRangeRejected) {
  const char* text = R"(
in:
int a[64]:b;
out:
int b[8(lI*2)];
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, StrideOutNameMustMatch) {
  const char* text = R"(
in:
int a[8]:b;
out:
int c[64(lI)];
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, StrideElemTypeMustMatch) {
  const char* text = R"(
in:
int a[8]:b;
out:
double b[64(lI)];
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, InjectOnStructRuleRejected) {
  const std::string text = std::string(kListing5) + "inject:\nL x 4;\n";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, BadInjectKindRejected) {
  const char* text = R"(
in:
int a[8]:b;
out:
int b[64(lI)];
inject:
Q x 4;
)";
  EXPECT_THROW((void)parse_rules(text), Error);
}

TEST(RuleParser, SizeChangeIsWarningNotError) {
  // Narrowing double -> float is allowed but flagged.
  const char* text = R"(
in:
struct A { double v; };
out:
struct B { float v; };
)";
  const RuleSet rules = parse_rules(text);
  const auto diags = rules.validate();
  bool warned = false;
  for (const auto& d : diags) {
    if (d.severity == RuleDiagnostic::Severity::Warning &&
        d.message.find("changes size") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(RuleParser, UncoveredOutElementWarns) {
  const char* text = R"(
in:
struct A { int a; };
out:
struct B { int a; int padding; };
)";
  const RuleSet rules = parse_rules(text);
  const auto diags = rules.validate();
  bool warned = false;
  for (const auto& d : diags) {
    warned |= d.message.find("receives no in data") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(RuleParser, CommentsAllowed) {
  const char* text = R"(
# whole-line comment
in:
// C++ style
struct A { int a; /* inline */ };
out:
struct B { int a; };
)";
  EXPECT_EQ(parse_rules(text).rules().size(), 1u);
}

TEST(RuleParser, RenderRuleRoundTrips) {
  for (const char* text : {kListing5, kListing8, kListing11}) {
    const RuleSet first = parse_rules(text);
    const std::string rendered =
        render_rule(first.types(), first.rules()[0]);
    const RuleSet second = parse_rules(rendered);
    ASSERT_EQ(second.rules().size(), 1u);
    EXPECT_EQ(rule_in_name(second.rules()[0]),
              rule_in_name(first.rules()[0]));
  }
}

TEST(RuleParser, FieldReorderingRule) {
  // An extension the mapping engine supports beyond the paper: reorder
  // fields to pack hot members together.
  const char* text = R"(
in:
struct Packet { char tag; double payload; char flag; };
out:
struct PackedPacket { char tag; char flag; double payload; };
)";
  const RuleSet rules = parse_rules(text);
  const auto& rule = std::get<StructRule>(rules.rules()[0]);
  const auto& t = rules.types();
  // Reordered struct sheds the padding: 24 -> 16 bytes.
  EXPECT_EQ(t.size_of(rule.in_type), 24u);
  EXPECT_EQ(t.size_of(rule.outs[0].type), 16u);
}

TEST(RuleParser, MissingFileThrowsIo) {
  try {
    (void)parse_rules_file("/no/such/rules.file");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

}  // namespace
}  // namespace tdt::core
