// Property sweep over randomly shaped structs: for any struct whose
// fields are re-ordered (a layout rule the paper's by-name matching
// implies but never demonstrates), the transformer must map every element
// access onto the out layout with the same leaf size, inside the out
// variable's footprint, and bijectively (no two in-leaves share an out
// address).
#include <gtest/gtest.h>

#include <set>

#include "core/rules.hpp"
#include "core/transformer.hpp"
#include "layout/path.hpp"
#include "trace/reader.hpp"
#include "util/rng.hpp"

namespace tdt::core {
namespace {

class ReorderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReorderProperty, RandomStructReorderIsBijective) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);

  layout::TypeTable types;
  const layout::TypeId prims[] = {types.char_type(), types.short_type(),
                                  types.int_type(), types.long_type(),
                                  types.float_type(), types.double_type()};
  // Random field list: scalars and small arrays.
  const std::size_t nfields = 2 + rng.next_below(5);
  std::vector<layout::PendingField> fields;
  for (std::size_t i = 0; i < nfields; ++i) {
    layout::TypeId t = prims[rng.next_below(6)];
    if (rng.next_below(3) == 0) {
      t = types.array_of(t, 1 + rng.next_below(6));
    }
    fields.push_back({"f" + std::to_string(i), t});
  }
  // Out: same fields, shuffled order.
  std::vector<layout::PendingField> shuffled = fields;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  }
  const layout::TypeId in_struct =
      types.define_struct("In" + std::to_string(GetParam()), std::move(fields));
  const layout::TypeId out_struct = types.define_struct(
      "Out" + std::to_string(GetParam()), std::move(shuffled));

  RuleSet rules(std::move(types));
  StructRule rule;
  rule.in_name = "var";
  rule.in_type = in_struct;
  rule.outs = {{"out", out_struct}};
  rules.add(std::move(rule));
  for (const RuleDiagnostic& d : rules.validate()) {
    ASSERT_NE(d.severity, RuleDiagnostic::Severity::Error) << d.message;
  }

  // Synthesize one record per in leaf and transform it.
  const auto& t = rules.types();
  trace::TraceContext ctx;
  std::vector<trace::TraceRecord> records;
  std::vector<std::uint64_t> in_sizes;
  const std::uint64_t in_base = 0x7ff100000;
  layout::for_each_leaf(
      t, in_struct,
      [&](const layout::Path& path, std::uint64_t offset,
          layout::TypeId leaf) {
        trace::TraceRecord rec;
        rec.kind = trace::AccessKind::Store;
        rec.address = in_base + offset;
        rec.size = static_cast<std::uint32_t>(t.size_of(leaf));
        rec.function = ctx.intern("main");
        rec.scope = trace::VarScope::LocalStructure;
        rec.thread = 1;
        rec.var = ctx.parse_var(
            "var" + layout::format_path({path.data(), path.size()}));
        records.push_back(rec);
        in_sizes.push_back(t.size_of(leaf));
      });

  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), records.size());
  EXPECT_EQ(stats.rewritten, records.size());
  EXPECT_EQ(stats.skipped, 0u);

  std::set<std::uint64_t> out_addresses;
  std::uint64_t out_base = ~0ull;
  for (const trace::TraceRecord& r : out) {
    out_base = std::min(out_base, r.address);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Size preserved (same-named fields have identical types).
    EXPECT_EQ(out[i].size, in_sizes[i]);
    // Within the out footprint.
    EXPECT_LE(out[i].address + out[i].size,
              out_base + t.size_of(out_struct));
    // Bijective: no two leaves collapse onto one address.
    EXPECT_TRUE(out_addresses.insert(out[i].address).second)
        << "duplicate out address for leaf " << i;
    // Renamed to the out variable.
    EXPECT_EQ(std::string(ctx.name(out[i].var.base)), "out");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReorderProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace tdt::core
