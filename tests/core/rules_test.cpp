#include "core/rules.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::core {
namespace {

using layout::TypeId;
using layout::TypeTable;

StructRule make_t2_rule(TypeTable& t) {
  const TypeId rare =
      t.define_struct("Rare", {{"mY", t.double_type()}, {"mZ", t.int_type()}});
  const TypeId in_elem = t.define_struct(
      "lS1", {{"mFrequentlyUsed", t.int_type()}, {"mRarelyUsed", rare}});
  const TypeId pool_elem = t.define_struct(
      "Pool", {{"mY", t.double_type()}, {"mZ", t.int_type()}});
  const TypeId out_elem = t.define_struct(
      "lS2",
      {{"mFrequentlyUsed", t.int_type()}, {"mRarelyUsed", t.pointer_to(pool_elem)}});
  StructRule rule;
  rule.in_name = "lS1";
  rule.in_type = t.array_of(in_elem, 16);
  rule.outs = {{"lStorage", t.array_of(pool_elem, 16)},
               {"lS2", t.array_of(out_elem, 16)}};
  rule.links = {{"lS2", "mRarelyUsed", "lStorage"}};
  return rule;
}

TEST(RuleSet, AddAndFind) {
  RuleSet set;
  StructRule rule;
  rule.in_name = "x";
  rule.in_type = set.types().int_type();
  rule.outs = {{"y", set.types().int_type()}};
  set.add(rule);
  EXPECT_NE(set.find("x"), nullptr);
  EXPECT_EQ(set.find("y"), nullptr);
  EXPECT_EQ(rule_in_name(*set.find("x")), "x");
}

TEST(RuleSet, DuplicateAddThrows) {
  RuleSet set;
  StructRule rule;
  rule.in_name = "x";
  rule.in_type = set.types().int_type();
  rule.outs = {{"y", set.types().int_type()}};
  set.add(rule);
  EXPECT_THROW(set.add(rule), Error);
}

TEST(Matcher, RoutesDirectChain) {
  TypeTable t;
  StructRule rule = make_t2_rule(t);
  StructRuleMatcher matcher(t, rule);
  const std::vector<std::string> hot{"mFrequentlyUsed"};
  const ChainRoute route = matcher.route(hot);
  ASSERT_NE(route.out, nullptr);
  EXPECT_EQ(route.out->name, "lS2");
  EXPECT_EQ(route.link, nullptr);
}

TEST(Matcher, RoutesOutlinedChainThroughLink) {
  TypeTable t;
  StructRule rule = make_t2_rule(t);
  StructRuleMatcher matcher(t, rule);
  const std::vector<std::string> cold{"mRarelyUsed", "mY"};
  const ChainRoute route = matcher.route(cold);
  ASSERT_NE(route.out, nullptr);
  EXPECT_EQ(route.out->name, "lStorage");
  ASSERT_NE(route.link, nullptr);
  EXPECT_EQ(route.link->pool, "lStorage");
  ASSERT_NE(route.link_owner, nullptr);
  EXPECT_EQ(route.link_owner->name, "lS2");
  ASSERT_NE(route.pointer_leaf, nullptr);
  EXPECT_EQ(route.pointer_leaf->leaf_size, 8u);  // the pointer itself
}

TEST(Matcher, UnknownChainRoutesNowhere) {
  TypeTable t;
  StructRule rule = make_t2_rule(t);
  StructRuleMatcher matcher(t, rule);
  const std::vector<std::string> missing{"nothing"};
  EXPECT_EQ(matcher.route(missing).out, nullptr);
}

TEST(Matcher, LinkedChainWithUnknownTailRoutesNowhere) {
  TypeTable t;
  StructRule rule = make_t2_rule(t);
  StructRuleMatcher matcher(t, rule);
  const std::vector<std::string> bad{"mRarelyUsed", "nope"};
  EXPECT_EQ(matcher.route(bad).out, nullptr);
}

TEST(Validate, CleanT2RuleHasNoErrors) {
  TypeTable t;
  RuleSet set(std::move(t));
  set.add(make_t2_rule(set.types()));
  for (const RuleDiagnostic& d : set.validate()) {
    EXPECT_NE(d.severity, RuleDiagnostic::Severity::Error) << d.message;
  }
}

TEST(Validate, LinkToMissingOwnerIsError) {
  TypeTable t0;
  RuleSet set(std::move(t0));
  auto& t = set.types();
  StructRule rule = make_t2_rule(t);
  rule.links[0].owner = "ghost";
  set.add(std::move(rule));
  bool has_error = false;
  for (const RuleDiagnostic& d : set.validate()) {
    has_error |= d.severity == RuleDiagnostic::Severity::Error;
  }
  EXPECT_TRUE(has_error);
}

TEST(Validate, StrideConstantFormulaWarns) {
  RuleSet set;
  StrideRule rule;
  rule.in_name = "a";
  rule.elem_type = set.types().int_type();
  rule.in_count = 4;
  rule.out_name = "b";
  rule.out_count = 8;
  rule.formula = parse_formula("3");
  set.add(std::move(rule));
  bool warned = false;
  for (const RuleDiagnostic& d : set.validate()) {
    warned |= d.message.find("no index variable") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Validate, StrideNegativeIndexIsError) {
  RuleSet set;
  StrideRule rule;
  rule.in_name = "a";
  rule.elem_type = set.types().int_type();
  rule.in_count = 4;
  rule.out_name = "b";
  rule.out_count = 64;
  rule.formula = parse_formula("lI-2");
  set.add(std::move(rule));
  bool has_error = false;
  for (const RuleDiagnostic& d : set.validate()) {
    has_error |= d.severity == RuleDiagnostic::Severity::Error;
  }
  EXPECT_TRUE(has_error);
}

}  // namespace
}  // namespace tdt::core
