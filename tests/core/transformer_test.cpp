#include "core/transformer.hpp"

#include <gtest/gtest.h>

#include "core/rule_parser.hpp"
#include "trace/reader.hpp"
#include "util/string_util.hpp"

namespace tdt::core {
namespace {

using trace::AccessKind;
using trace::TraceContext;
using trace::TraceRecord;

constexpr const char* kT1Rules = R"(
in:
struct lSoA {
  int mX[16];
  double mY[16];
};
out:
struct lAoS {
  int mX;
  double mY;
}[16];
)";

constexpr const char* kT2Rules = R"(
in:
struct mRarelyUsed {
  double mY;
  int mZ;
};
struct lS1 {
  int mFrequentlyUsed;
  struct mRarelyUsed;
}[16];
out:
struct lStorageForRarelyUsed {
  double mY;
  int mZ;
}[16];
struct lS2 {
  int mFrequentlyUsed;
  + mRarelyUsed:lStorageForRarelyUsed;
}[16];
)";

constexpr const char* kT3Rules = R"(
in:
int lContiguousArray[64]:lSetHashingArray;
out:
int lSetHashingArray[1024((lI/8)*(16*8)+(lI%8))];
inject:
L lITEMSPERLINE 4;
)";

std::vector<TraceRecord> parse(TraceContext& ctx, const std::string& text) {
  return trace::read_trace_string(ctx, text);
}

TEST(Transformer, PassthroughWithoutMatchingRule) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  const auto records = parse(ctx,
                             "L 7ff000100 4 main LV 0 1 other\n"
                             "S 7ff000104 4 main\n");
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], records[0]);
  EXPECT_EQ(out[1], records[1]);
  EXPECT_EQ(stats.passthrough, 2u);
  EXPECT_EQ(stats.rewritten, 0u);
}

TEST(Transformer, T1RemapsSoAToAoS) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  // lSoA base 0x7ff000400: mX[3] at +12, mY[3] at +64+24.
  const auto records = parse(ctx,
                             "S 7ff00040c 4 main LS 0 1 lSoA.mX[3]\n"
                             "S 7ff000458 8 main LS 0 1 lSoA.mY[3]\n");
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(ctx.format_var(out[0].var), "lAoS[3].mX");
  EXPECT_EQ(ctx.format_var(out[1].var), "lAoS[3].mY");
  // AoS element 3 is at out_base + 48; mY 8 bytes after mX.
  EXPECT_EQ(out[1].address, out[0].address + 8);
  EXPECT_EQ(out[0].address % 16, 0u);  // element-aligned
  EXPECT_EQ(stats.rewritten, 2u);
  EXPECT_EQ(stats.inserted, 0u);
  // Scope/kind/function preserved.
  EXPECT_EQ(out[0].kind, AccessKind::Store);
  EXPECT_EQ(out[0].scope, trace::VarScope::LocalStructure);
  EXPECT_EQ(ctx.name(out[0].function), "main");
}

TEST(Transformer, T1AddressArithmeticExact) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  std::string text;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t mx_addr = 0x7ff000400 + 4 * static_cast<std::uint64_t>(i);
    text += "S " + tdt::to_hex(mx_addr, 9) + " 4 main LS 0 1 lSoA.mX[" +
            std::to_string(i) + "]\n";
  }
  const auto records = parse(ctx, text);
  const auto out = transform_trace(rules, ctx, records);
  ASSERT_EQ(out.size(), 16u);
  for (int i = 1; i < 16; ++i) {
    // Consecutive mX elements land 16 bytes apart (the AoS element size).
    EXPECT_EQ(out[static_cast<std::size_t>(i)].address,
              out[0].address + 16 * static_cast<std::uint64_t>(i));
  }
}

TEST(Transformer, T2InsertsPointerLoadBeforeColdAccess) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT2Rules);
  // lS1 element size 16 (int + pad + {double,int} -> actually 4+4pad+16=24).
  // Use metadata-only matching: offsets derived from the rule's own types.
  const auto records = parse(
      ctx,
      "S 7ff000400 4 main LS 0 1 lS1[0].mFrequentlyUsed\n"
      "S 7ff000408 8 main LS 0 1 lS1[0].mRarelyUsed.mY\n"
      "S 7ff000410 4 main LS 0 1 lS1[0].mRarelyUsed.mZ\n");
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(ctx.format_var(out[0].var), "lS2[0].mFrequentlyUsed");
  // Cold access preceded by a pointer load of lS2[0].mRarelyUsed.
  EXPECT_EQ(out[1].kind, AccessKind::Load);
  EXPECT_EQ(out[1].size, 8u);
  EXPECT_EQ(ctx.format_var(out[1].var), "lS2[0].mRarelyUsed");
  EXPECT_EQ(ctx.format_var(out[2].var), "lStorageForRarelyUsed[0].mY");
  EXPECT_EQ(out[3].kind, AccessKind::Load);
  EXPECT_EQ(ctx.format_var(out[4].var), "lStorageForRarelyUsed[0].mZ");
  EXPECT_EQ(stats.inserted, 2u);
  EXPECT_EQ(stats.rewritten, 3u);
  // The pointer sits 8 bytes into the 16-byte lS2 element.
  EXPECT_EQ(out[1].address, out[0].address + 8);
}

TEST(Transformer, T2PoolAndOwnerDoNotOverlap) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT2Rules);
  std::string text;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t base = 0x7ff000400 + 24 * static_cast<std::uint64_t>(i);
    text += "S " + tdt::to_hex(base, 9) + " 4 main LS 0 1 lS1[" +
            std::to_string(i) + "].mFrequentlyUsed\n";
    text += "S " + tdt::to_hex(base + 8, 9) + " 8 main LS 0 1 lS1[" +
            std::to_string(i) + "].mRarelyUsed.mY\n";
  }
  const auto out = transform_trace(rules, ctx, parse(ctx, text));
  std::uint64_t s2_min = ~0ull, s2_max = 0, pool_min = ~0ull, pool_max = 0;
  for (const TraceRecord& r : out) {
    const std::string name(ctx.name(r.var.base));
    if (name == "lS2") {
      s2_min = std::min(s2_min, r.address);
      s2_max = std::max(s2_max, r.address + r.size);
    } else if (name == "lStorageForRarelyUsed") {
      pool_min = std::min(pool_min, r.address);
      pool_max = std::max(pool_max, r.address + r.size);
    }
  }
  EXPECT_TRUE(s2_max <= pool_min || pool_max <= s2_min)
      << "lS2 [" << s2_min << "," << s2_max << ") overlaps pool ["
      << pool_min << "," << pool_max << ")";
}

TEST(Transformer, T3RemapsThroughFormulaAndInjects) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT3Rules);
  const auto records = parse(
      ctx,
      "S 7ff000400 4 main LS 0 1 lContiguousArray[0]\n"
      "S 7ff000420 4 main LS 0 1 lContiguousArray[8]\n");
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  // Each store preceded by one injected lITEMSPERLINE load.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].kind, AccessKind::Load);
  EXPECT_EQ(ctx.format_var(out[0].var), "lITEMSPERLINE");
  EXPECT_EQ(out[0].scope, trace::VarScope::LocalVariable);
  EXPECT_EQ(ctx.format_var(out[1].var), "lSetHashingArray[0]");
  EXPECT_EQ(ctx.format_var(out[3].var), "lSetHashingArray[128]");
  // 128 elements * 4 bytes = 512 bytes apart.
  EXPECT_EQ(out[3].address, out[1].address + 512);
  EXPECT_EQ(stats.inserted, 2u);
  EXPECT_EQ(stats.rewritten, 2u);
  // Injected scalar address is stable across records.
  EXPECT_EQ(out[0].address, out[2].address);
}

TEST(Transformer, StrideNonFlatAccessSkipped) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT3Rules);
  const auto records =
      parse(ctx, "S 7ff000400 4 main LS 0 1 lContiguousArray.bad\n");
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], records[0]);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_FALSE(stats.diagnostics.empty());
}

TEST(Transformer, MismatchedShapeSkippedWithDiagnostic) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  // lSoA.nothing[0] does not resolve inside the rule's in struct.
  const auto records =
      parse(ctx, "S 7ff000400 4 main LS 0 1 lSoA.nothing[0]\n");
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, records, {}, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.skipped, 1u);
  ASSERT_FALSE(stats.diagnostics.empty());
}

TEST(Transformer, RecordConservation) {
  // records_out == records_in + inserted, and rewritten+passthrough+
  // skipped == records_in.
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT2Rules);
  std::string text;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t base = 0x7ff000400 + 24 * static_cast<std::uint64_t>(i);
    text += "L 7ff0000f0 4 main LV 0 1 lI\n";
    text += "S " + tdt::to_hex(base + 8, 9) + " 8 main LS 0 1 lS1[" +
            std::to_string(i) + "].mRarelyUsed.mY\n";
  }
  TransformStats stats;
  const auto out = transform_trace(rules, ctx, parse(ctx, text), {}, &stats);
  EXPECT_EQ(stats.records_in, 32u);
  EXPECT_EQ(stats.records_out, out.size());
  EXPECT_EQ(stats.records_out, stats.records_in + stats.inserted);
  EXPECT_EQ(stats.rewritten + stats.passthrough + stats.skipped,
            stats.records_in);
}

TEST(Transformer, OutBaseQueryable) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  trace::VectorSink sink;
  TraceTransformer transformer(rules, ctx, sink);
  EXPECT_FALSE(transformer.out_base("lSoA", "lAoS").has_value());
  TraceRecord rec = trace::GleipnirReader::parse_record_line(
      ctx, "S 7ff000400 4 main LS 0 1 lSoA.mX[0]");
  transformer.on_record(rec);
  ASSERT_TRUE(transformer.out_base("lSoA", "lAoS").has_value());
  EXPECT_FALSE(transformer.out_base("lSoA", "nothing").has_value());
  EXPECT_FALSE(transformer.out_base("ghost", "lAoS").has_value());
}

TEST(Transformer, StackSideInAddressesStayStackSide) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  const auto records =
      parse(ctx, "S 7ff000400 4 main LS 0 1 lSoA.mX[0]\n");
  TransformOptions opts;
  const auto out = transform_trace(rules, ctx, records, opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GE(out[0].address, opts.stack_segment_min);
}

TEST(Transformer, GlobalSideInAddressesGoToGlobalArena) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  const auto records =
      parse(ctx, "S 000601040 4 main GS glDummy.mX[0]\n");
  // Rename the rule target: use a trace whose variable base matches.
  const auto records2 =
      parse(ctx, "S 000601040 4 main GS lSoA.mX[0]\n");
  TransformOptions opts;
  const auto out = transform_trace(rules, ctx, records2, opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].address, opts.stack_segment_min);
  (void)records;
}

TEST(Transformer, ReuseFootprintPlacesInsideWhenItFits) {
  // in: 2 doubles (16 B) -> out: 2 floats + pad? float[2] = 8 B fits.
  const char* rules_text = R"(
in:
struct big { double a; double b; };
out:
struct compact { float a; float b; };
)";
  TraceContext ctx;
  const RuleSet rules = parse_rules(rules_text);
  const auto records =
      parse(ctx, "S 7ff000400 8 main LS 0 1 big.a\n");
  TransformOptions opts;
  opts.reuse_in_footprint = true;
  const auto out = transform_trace(rules, ctx, records, opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].address, 0x7ff000400u);  // stays at in base
  EXPECT_EQ(out[0].size, 4u);               // narrowed to float

  opts.reuse_in_footprint = false;
  const auto moved = transform_trace(rules, ctx, records, opts);
  EXPECT_NE(moved[0].address, 0x7ff000400u);
}

TEST(Transformer, StreamingMatchesOneShot) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT2Rules);
  const auto records = parse(
      ctx,
      "S 7ff000400 4 main LS 0 1 lS1[0].mFrequentlyUsed\n"
      "S 7ff000408 8 main LS 0 1 lS1[0].mRarelyUsed.mY\n");
  trace::VectorSink sink;
  TraceTransformer transformer(rules, ctx, sink);
  for (const TraceRecord& r : records) transformer.on_record(r);
  transformer.on_end();
  const auto oneshot = transform_trace(rules, ctx, records);
  ASSERT_EQ(sink.records().size(), oneshot.size());
  for (std::size_t i = 0; i < oneshot.size(); ++i) {
    EXPECT_EQ(sink.records()[i], oneshot[i]);
  }
}

TEST(Transformer, UnannotatedRecordsUntouched) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  const auto records = parse(ctx, "L 7ff000400 8 main\n");
  const auto out = transform_trace(rules, ctx, records);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], records[0]);
}

TEST(Transformer, DiagnosticsCapped) {
  TraceContext ctx;
  const RuleSet rules = parse_rules(kT1Rules);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "S 7ff000400 4 main LS 0 1 lSoA.bogus\n";
  }
  TransformOptions opts;
  opts.max_diagnostics = 8;
  TransformStats stats;
  (void)transform_trace(rules, ctx, parse(ctx, text), opts, &stats);
  EXPECT_EQ(stats.diagnostics.size(), 8u);
  EXPECT_EQ(stats.skipped, 200u);
}

}  // namespace
}  // namespace tdt::core
