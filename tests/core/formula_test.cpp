#include "core/formula.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::core {
namespace {

TEST(Formula, ConstantEvaluates) {
  EXPECT_EQ(parse_formula("42").eval(0), 42);
  EXPECT_EQ(parse_formula("42").eval(999), 42);
}

TEST(Formula, VariableTakesBoundValue) {
  const Formula f = parse_formula("lI");
  EXPECT_EQ(f.eval(7), 7);
  EXPECT_EQ(f.eval(-3), -3);
  EXPECT_TRUE(f.has_variable());
}

TEST(Formula, Precedence) {
  EXPECT_EQ(parse_formula("2+3*4").eval(0), 14);
  EXPECT_EQ(parse_formula("(2+3)*4").eval(0), 20);
  EXPECT_EQ(parse_formula("10-2-3").eval(0), 5);   // left assoc
  EXPECT_EQ(parse_formula("100/10/2").eval(0), 5); // left assoc
  EXPECT_EQ(parse_formula("7%4*2").eval(0), 6);
}

TEST(Formula, UnaryMinus) {
  EXPECT_EQ(parse_formula("-5").eval(0), -5);
  EXPECT_EQ(parse_formula("--5").eval(0), 5);
  EXPECT_EQ(parse_formula("3*-2").eval(0), -6);
  EXPECT_EQ(parse_formula("-lI").eval(4), -4);
}

TEST(Formula, PaperStrideFormula) {
  // (lI/8)*(16*8) + (lI%8) — Listing 11 with ITEMSPERLINE=8, SETS=16.
  const Formula f = parse_formula("(lI/8)*(16*8)+(lI%8)");
  EXPECT_EQ(f.eval(0), 0);
  EXPECT_EQ(f.eval(7), 7);
  EXPECT_EQ(f.eval(8), 128);
  EXPECT_EQ(f.eval(9), 129);
  EXPECT_EQ(f.eval(1023), 127 * 128 + 7);
  // Reference: every remapped index stays within LEN*SETS = 16384.
  for (std::int64_t i = 0; i < 1024; ++i) {
    const std::int64_t j = f.eval(i);
    EXPECT_GE(j, 0);
    EXPECT_LT(j, 16384);
  }
}

TEST(Formula, PinnedSetProperty) {
  // The paper's pinning argument: with 4-byte ints, consecutive groups of
  // 8 land 512 bytes apart = 16 blocks of 32 B = a multiple of the PPC440
  // set count, so every access maps to the same set.
  const Formula f = parse_formula("(lI/8)*(16*8)+(lI%8)");
  for (std::int64_t i = 0; i < 1024; ++i) {
    const std::int64_t byte = f.eval(i) * 4;
    EXPECT_EQ((byte / 32) % 16, 0) << "i=" << i;
  }
}

TEST(Formula, DivisionByZeroThrows) {
  EXPECT_THROW((void)parse_formula("1/0").eval(0), Error);
  EXPECT_THROW((void)parse_formula("1%0").eval(0), Error);
  EXPECT_THROW((void)parse_formula("lI/lI").eval(0), Error);
}

TEST(Formula, ParseErrors) {
  EXPECT_THROW(parse_formula(""), Error);
  EXPECT_THROW(parse_formula("1+"), Error);
  EXPECT_THROW(parse_formula("(1+2"), Error);
  EXPECT_THROW(parse_formula("1 2"), Error);  // trailing tokens
  EXPECT_THROW(parse_formula("*3"), Error);
}

TEST(Formula, RenderParsesBack) {
  for (const char* text :
       {"(lI/8)*(16*8)+(lI%8)", "1+2*3", "-(lI)", "lI%7"}) {
    const Formula f = parse_formula(text);
    const Formula g = parse_formula(f.render());
    for (std::int64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(f.eval(i), g.eval(i)) << text;
    }
  }
}

TEST(Formula, CopySemantics) {
  const Formula f = parse_formula("lI*2+1");
  Formula g = f;  // deep copy
  EXPECT_EQ(g.eval(10), 21);
  Formula h;
  h = f;
  EXPECT_EQ(h.eval(5), 11);
  EXPECT_EQ(f.eval(5), 11);
}

TEST(Formula, HasVariableFalseForConstants) {
  EXPECT_FALSE(parse_formula("3*4+(2-1)").has_variable());
}

TEST(Formula, LexerEmbeddedParseStopsCleanly) {
  Lexer lex("3+4]rest");
  const Formula f = parse_formula(lex);
  EXPECT_EQ(f.eval(0), 7);
  EXPECT_TRUE(lex.peek().is("]"));
}

}  // namespace
}  // namespace tdt::core
