#include "core/mapping.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::core {
namespace {

using layout::TypeId;
using layout::TypeTable;

struct Fixture {
  TypeTable t;
  TypeId soa;      // struct { int mX[16]; double mY[16]; }
  TypeId aos;      // struct { int mX; double mY; }[16]
  TypeId nested;   // struct { int hot; struct { double y; int z; } cold; }[4]

  Fixture() {
    soa = t.define_struct(
        "SoA", {{"mX", t.array_of(t.int_type(), 16)},
                {"mY", t.array_of(t.double_type(), 16)}});
    const TypeId elem = t.define_struct(
        "AoSElem", {{"mX", t.int_type()}, {"mY", t.double_type()}});
    aos = t.array_of(elem, 16);
    const TypeId cold = t.define_struct(
        "Cold", {{"y", t.double_type()}, {"z", t.int_type()}});
    const TypeId outer =
        t.define_struct("Outer", {{"hot", t.int_type()}, {"cold", cold}});
    nested = t.array_of(outer, 4);
  }
};

TEST(LeafTemplates, SoAEnumeration) {
  Fixture f;
  const auto templates = enumerate_leaf_templates(f.t, f.soa);
  ASSERT_EQ(templates.size(), 2u);
  EXPECT_EQ(templates[0].chain, (std::vector<std::string>{"mX"}));
  EXPECT_EQ(templates[0].wildcards, 1u);
  EXPECT_EQ(templates[0].leaf_size, 4u);
  EXPECT_EQ(templates[1].chain, (std::vector<std::string>{"mY"}));
  EXPECT_EQ(templates[1].leaf_size, 8u);
}

TEST(LeafTemplates, AoSEnumerationSameChains) {
  Fixture f;
  const auto templates = enumerate_leaf_templates(f.t, f.aos);
  ASSERT_EQ(templates.size(), 2u);
  // Array wildcard precedes the field: [*].mX
  EXPECT_EQ(templates[0].chain, (std::vector<std::string>{"mX"}));
  EXPECT_EQ(templates[0].wildcards, 1u);
  EXPECT_FALSE(templates[0].steps[0].is_field);
  EXPECT_EQ(templates[0].steps[0].extent, 16u);
  EXPECT_TRUE(templates[0].steps[1].is_field);
}

TEST(LeafTemplates, NestedChains) {
  Fixture f;
  const auto templates = enumerate_leaf_templates(f.t, f.nested);
  ASSERT_EQ(templates.size(), 3u);
  EXPECT_EQ(templates[0].chain, (std::vector<std::string>{"hot"}));
  EXPECT_EQ(templates[1].chain, (std::vector<std::string>{"cold", "y"}));
  EXPECT_EQ(templates[2].chain, (std::vector<std::string>{"cold", "z"}));
}

TEST(LeafTemplates, ScalarRootIsOneLeaf) {
  TypeTable t;
  const auto templates = enumerate_leaf_templates(t, t.int_type());
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_TRUE(templates[0].chain.empty());
  EXPECT_EQ(templates[0].wildcards, 0u);
}

TEST(Instantiate, SubstitutesIndicesInOrder) {
  Fixture f;
  const auto templates = enumerate_leaf_templates(f.t, f.aos);
  const std::uint64_t idx[] = {7};
  const layout::Path p = templates[0].instantiate(idx);
  EXPECT_EQ(layout::format_path({p.data(), p.size()}), "[7].mX");
  const auto r = layout::resolve_path(f.t, f.aos, {p.data(), p.size()});
  EXPECT_EQ(r.offset, 7u * 16u);
}

TEST(Instantiate, CountMismatchThrows) {
  Fixture f;
  const auto templates = enumerate_leaf_templates(f.t, f.aos);
  EXPECT_THROW((void)templates[0].instantiate({}), Error);
  const std::uint64_t two[] = {1, 2};
  EXPECT_THROW((void)templates[0].instantiate(two), Error);
}

TEST(Instantiate, OutOfExtentThrows) {
  Fixture f;
  const auto templates = enumerate_leaf_templates(f.t, f.aos);
  const std::uint64_t idx[] = {16};
  EXPECT_THROW((void)templates[0].instantiate(idx), Error);
}

TEST(ChainKey, SeparatesFieldsAndIndices) {
  const layout::Path p = layout::parse_path("[3].cold.y");
  const ChainKey key = chain_key_of({p.data(), p.size()});
  EXPECT_EQ(key.chain, (std::vector<std::string>{"cold", "y"}));
  EXPECT_EQ(key.indices, (std::vector<std::uint64_t>{3}));
}

TEST(ChainKey, MultiDimIndices) {
  const layout::Path p = layout::parse_path(".m[2][5]");
  const ChainKey key = chain_key_of({p.data(), p.size()});
  EXPECT_EQ(key.chain, (std::vector<std::string>{"m"}));
  EXPECT_EQ(key.indices, (std::vector<std::uint64_t>{2, 5}));
}

TEST(TemplateIndex, FindsByChain) {
  Fixture f;
  TemplateIndex index(f.t, f.nested);
  const std::vector<std::string> chain{"cold", "y"};
  const LeafTemplate* leaf = index.find(chain);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->leaf_size, 8u);
  const std::vector<std::string> missing{"cold", "nope"};
  EXPECT_EQ(index.find(missing), nullptr);
}

TEST(Mapping, SoAToAoSRoundTrip) {
  // The T1 mapping: every SoA leaf re-resolves to an AoS leaf with the
  // same chain and index, and both sides enumerate identical chain sets.
  Fixture f;
  TemplateIndex in_index(f.t, f.soa);
  TemplateIndex out_index(f.t, f.aos);
  for (const LeafTemplate& in_leaf : in_index.all()) {
    const LeafTemplate* out_leaf = out_index.find(in_leaf.chain);
    ASSERT_NE(out_leaf, nullptr);
    EXPECT_EQ(out_leaf->wildcards, in_leaf.wildcards);
    EXPECT_EQ(out_leaf->leaf_size, in_leaf.leaf_size);
    for (std::uint64_t i = 0; i < 16; ++i) {
      const std::uint64_t idx[] = {i};
      const layout::Path in_p = in_leaf.instantiate(idx);
      const layout::Path out_p = out_leaf->instantiate(idx);
      const auto in_r =
          layout::resolve_path(f.t, f.soa, {in_p.data(), in_p.size()});
      const auto out_r =
          layout::resolve_path(f.t, f.aos, {out_p.data(), out_p.size()});
      EXPECT_EQ(f.t.size_of(in_r.type), f.t.size_of(out_r.type));
    }
  }
}

}  // namespace
}  // namespace tdt::core
