// tdt-rpc/1 wire contract: requests and replies survive a round trip
// bit-for-bit (including raw high bytes and control characters in
// captured output), and malformed messages are rejected as
// Error{Parse}, never accepted half-read.
#include "tdt/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "tdt/util.hpp"

namespace tdt::service {
namespace {

TEST(ServiceProtocol, RequestRoundTrip) {
  Request request;
  request.id = 42;
  request.op = "sweep";
  request.args = {"--trace", "a b.out", "--sweep", "assoc=1;assoc=4"};
  const Request back = Request::decode(request.encode());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.op, "sweep");
  EXPECT_EQ(back.args, request.args);
}

TEST(ServiceProtocol, ReplyRoundTripPreservesBytes) {
  Reply reply;
  reply.id = 7;
  reply.status = RpcStatus::Ok;
  reply.exit_code = 1;
  reply.memo_hit = true;
  // Raw bytes a captured tool stream can legally carry: newlines, tabs,
  // NUL, and non-UTF-8 high bytes.
  reply.out = std::string("table\n\trow\x01\n") + '\0' + "\xff\xfe tail";
  reply.err = "warn: \"quoted\" and \\backslash\\\n";
  reply.data["ops"] = "sweep,autotune";
  const Reply back = Reply::decode(reply.encode());
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.status, RpcStatus::Ok);
  EXPECT_EQ(back.exit_code, 1);
  EXPECT_TRUE(back.memo_hit);
  EXPECT_EQ(back.out, reply.out);
  EXPECT_EQ(back.err, reply.err);
  EXPECT_EQ(back.data.at("ops"), "sweep,autotune");
}

TEST(ServiceProtocol, ErrorReplyCarriesStatusAndMessage) {
  Request request;
  request.id = 9;
  request.op = "nope";
  const Reply reply = error_reply(request, RpcStatus::UnknownOp, "no such op");
  EXPECT_FALSE(reply.ok());
  const Reply back = Reply::decode(reply.encode());
  EXPECT_EQ(back.id, 9u);
  EXPECT_EQ(back.status, RpcStatus::UnknownOp);
  EXPECT_EQ(back.error, "no such op");
}

TEST(ServiceProtocol, StatusNamesRoundTrip) {
  for (const RpcStatus status :
       {RpcStatus::Ok, RpcStatus::BadRequest, RpcStatus::UnknownOp,
        RpcStatus::Busy, RpcStatus::ShuttingDown, RpcStatus::Internal}) {
    EXPECT_EQ(parse_status(status_name(status)), status);
  }
}

TEST(ServiceProtocol, DecodeRejectsMalformedMessages) {
  EXPECT_THROW(Request::decode("not json"), Error);
  EXPECT_THROW(Request::decode("[1,2,3]"), Error);
  EXPECT_THROW(Request::decode("{\"id\":1,\"op\":\"x\"}"), Error);  // no rpc
  EXPECT_THROW(
      Request::decode(
          "{\"rpc\":\"tdt-rpc/9\",\"id\":1,\"op\":\"x\",\"args\":[]}"),
      Error);
  EXPECT_THROW(
      Request::decode("{\"rpc\":\"tdt-rpc/1\",\"id\":1,\"args\":[]}"),
      Error);  // no op
  EXPECT_THROW(Reply::decode("{\"rpc\":\"tdt-rpc/1\",\"id\":1}"), Error);
}

TEST(ServiceProtocol, EncodeIsSingleLine) {
  Reply reply;
  reply.id = 1;
  reply.status = RpcStatus::Ok;
  reply.out = "line one\nline two\n";
  const std::string wire = reply.encode();
  EXPECT_EQ(wire.find('\n'), std::string::npos)
      << "newline-delimited protocol: encoded messages must not contain "
         "raw newlines";
}

}  // namespace
}  // namespace tdt::service
