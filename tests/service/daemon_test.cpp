// ServiceDaemon: the tdtd scheduler end-to-end over a real unix socket —
// concurrent clients get bit-identical replies to sequential local runs,
// a client disconnect mid-reply never takes the daemon down, a full
// queue answers "busy" instead of stalling, the memo answers warm
// repeats byte-identically, per-request --on-error state never leaks
// between requests, and the shutdown op drains cleanly. Runs under TSan
// in the sanitize lane.
#include "tdt/service.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"

namespace tdt::service {
namespace {

std::string unique_path(const std::string& tag, const std::string& suffix) {
  static std::atomic<int> counter{0};
  return "/tmp/tdt_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1)) + suffix;
}

/// Writes a small clean t1_soa trace and returns its path.
std::string write_trace(const std::string& tag, std::int64_t len = 64) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const tracer::Program prog = tracer::make_t1_soa(types, len);
  const std::vector<trace::TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const std::string path = unique_path(tag, ".out");
  trace::write_trace_file(ctx, records, path, 4242);
  return path;
}

/// A clean trace with garbage record lines appended: recoverable under
/// --on-error=skip, fatal under strict.
std::string write_corrupt_trace(const std::string& tag) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const tracer::Program prog = tracer::make_t1_soa(types, 32);
  const std::vector<trace::TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  std::string text = trace::write_trace_string(ctx, records, 4242);
  text += "Z 7ff0001b0 8 main\n";
  text += "S nothex 8 main\n";
  const std::string path = unique_path(tag, ".out");
  std::ofstream f(path, std::ios::binary);
  f << text;
  return path;
}

/// Mirrors tdtd's registration: wraps a tool entry point as an
/// OpHandler under the shared run_tool_body contract.
OpHandler tool_op(const char* name, std::string_view op,
                  int (*run)(const ToolIO&, int, char**),
                  std::vector<std::string> input_flags, bool positional_inputs,
                  std::vector<std::string> bool_flags) {
  OpHandler handler;
  handler.op = std::string(op);
  handler.input_flags = std::move(input_flags);
  handler.positional_inputs = positional_inputs;
  handler.bool_flags = std::move(bool_flags);
  handler.run = [name, run](const ToolIO& io,
                            const std::vector<std::string>& args) {
    std::vector<std::string> storage;
    storage.reserve(args.size() + 1);
    storage.emplace_back(name);
    storage.insert(storage.end(), args.begin(), args.end());
    std::vector<char*> argv;
    argv.reserve(storage.size());
    for (std::string& s : storage) argv.push_back(s.data());
    return tools::run_tool_body(name, io, [&] {
      return run(io, static_cast<int>(argv.size()), argv.data());
    });
  };
  return handler;
}

OpHandler traceinfo_op() {
  return tool_op("traceinfo", kOpTraceInfo, tools::traceinfo_run, {},
                 /*positional_inputs=*/true, {"progress"});
}

OpHandler tracediff_op() {
  return tool_op("tracediff", kOpTraceDiff, tools::tracediff_run, {},
                 /*positional_inputs=*/true, {"summary", "progress"});
}

/// The local-backend reference: the same entry point run in-process
/// through CaptureIO. Daemon replies must match this byte-for-byte.
struct LocalRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

LocalRun run_local(const char* name, int (*run)(const ToolIO&, int, char**),
                   const std::vector<std::string>& args) {
  std::vector<std::string> storage;
  storage.emplace_back(name);
  storage.insert(storage.end(), args.begin(), args.end());
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  CaptureIO capture;
  LocalRun result;
  result.exit_code = tools::run_tool_body(name, capture.io(), [&] {
    return run(capture.io(), static_cast<int>(argv.size()), argv.data());
  });
  result.out = capture.out_bytes();
  result.err = capture.err_bytes();
  return result;
}

Request make_request(std::string op, std::vector<std::string> args) {
  Request request;
  request.op = std::move(op);
  request.args = std::move(args);
  return request;
}

TEST(ServiceDaemon, BuiltinsServeInline) {
  DaemonConfig config;
  config.socket_path = unique_path("builtin", ".sock");
  Daemon daemon(config);
  daemon.register_op(traceinfo_op());

  const Reply status = daemon.serve(make_request(std::string(kOpStatus), {}));
  EXPECT_TRUE(status.ok());
  EXPECT_NE(status.out.find("workers=2"), std::string::npos);
  EXPECT_EQ(status.data.at("ops"), std::string(kOpTraceInfo));

  const Reply metrics =
      daemon.serve(make_request(std::string(kOpMetrics), {}));
  EXPECT_TRUE(metrics.ok());
  EXPECT_NE(metrics.out.find("service.requests"), std::string::npos);

  const Reply unknown = daemon.serve(make_request("no-such-op", {}));
  EXPECT_EQ(unknown.status, RpcStatus::UnknownOp);
}

TEST(ServiceDaemon, RegisterTraceDigestsInputs) {
  DaemonConfig config;
  config.socket_path = unique_path("reg", ".sock");
  Daemon daemon(config);
  const std::string trace = write_trace("reg");
  const Reply reply =
      daemon.serve(make_request(std::string(kOpRegisterTrace), {trace}));
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.data.at(trace).find("crc32:"), std::string::npos);
  const Reply missing = daemon.serve(
      make_request(std::string(kOpRegisterTrace), {"/nonexistent/x.out"}));
  EXPECT_EQ(missing.status, RpcStatus::BadRequest);
  ::unlink(trace.c_str());
}

TEST(ServiceDaemon, ConcurrentClientsMatchSequentialByteForByte) {
  DaemonConfig config;
  config.socket_path = unique_path("conc", ".sock");
  config.workers = 4;
  config.queue_capacity = 64;
  Daemon daemon(config);
  daemon.register_op(traceinfo_op());
  daemon.register_op(tracediff_op());
  daemon.start();

  const std::string trace_a = write_trace("conc_a", 64);
  const std::string trace_b = write_trace("conc_b", 48);
  const std::vector<std::pair<std::string, std::vector<std::string>>> calls = {
      {std::string(kOpTraceInfo), {trace_a}},
      {std::string(kOpTraceInfo), {trace_b, "--top", "4"}},
      {std::string(kOpTraceDiff), {trace_a, trace_b, "--summary"}},
      {std::string(kOpTraceDiff), {trace_a, trace_a, "--summary"}},
  };
  // Sequential local reference, once per distinct call.
  std::vector<LocalRun> expected;
  expected.push_back(run_local("traceinfo", tools::traceinfo_run,
                               calls[0].second));
  expected.push_back(run_local("traceinfo", tools::traceinfo_run,
                               calls[1].second));
  expected.push_back(run_local("tracediff", tools::tracediff_run,
                               calls[2].second));
  expected.push_back(run_local("tracediff", tools::tracediff_run,
                               calls[3].second));

  constexpr int kThreads = 6;
  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session(config.socket_path);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t pick =
            static_cast<std::size_t>(t + round) % calls.size();
        const Reply reply =
            session.call(calls[pick].first, calls[pick].second);
        const LocalRun& want = expected[pick];
        if (!reply.ok() || reply.exit_code != want.exit_code ||
            reply.out != want.out || reply.err != want.err) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "daemon-served replies must be byte-identical to local runs";

  // 24 requests over 4 distinct keys: the memo must have answered most.
  const Reply metrics =
      daemon.serve(make_request(std::string(kOpMetrics), {}));
  EXPECT_NE(metrics.out.find("\"service.memo_hits\""), std::string::npos);

  daemon.request_shutdown();
  daemon.wait();
  ::unlink(trace_a.c_str());
  ::unlink(trace_b.c_str());
}

TEST(ServiceDaemon, MemoWarmRepeatIsByteIdenticalAndInvalidatesOnEdit) {
  DaemonConfig config;
  config.socket_path = unique_path("memo", ".sock");
  Daemon daemon(config);
  daemon.register_op(traceinfo_op());
  daemon.start();

  const std::string trace = write_trace("memo");
  const Request request =
      make_request(std::string(kOpTraceInfo), {trace, "--top", "8"});
  const Reply cold = daemon.serve(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.memo_hit);

  const Reply warm = daemon.serve(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.memo_hit);
  EXPECT_EQ(warm.out, cold.out);
  EXPECT_EQ(warm.err, cold.err);
  EXPECT_EQ(warm.exit_code, cold.exit_code);

  // Editing the input in place must invalidate: same path, new digest.
  {
    std::ofstream f(trace, std::ios::app | std::ios::binary);
    f << "L 7ff000200 4 main T 0 0 extra\n";
  }
  const Reply edited = daemon.serve(request);
  ASSERT_TRUE(edited.ok());
  EXPECT_FALSE(edited.memo_hit);
  EXPECT_NE(edited.out, cold.out);

  daemon.request_shutdown();
  daemon.wait();
  ::unlink(trace.c_str());
}

TEST(ServiceDaemon, BusyAdmissionWhenQueueFull) {
  DaemonConfig config;
  config.socket_path = unique_path("busy", ".sock");
  config.workers = 1;
  config.queue_capacity = 1;
  Daemon daemon(config);
  OpHandler slow;
  slow.op = "slow";
  slow.run = [](const ToolIO& io, const std::vector<std::string>&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::fprintf(io.out, "slept\n");
    return 0;
  };
  daemon.register_op(std::move(slow));
  daemon.start();

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<int> busy{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Session session(config.socket_path);
      const Reply reply = session.call("slow", {});
      if (reply.ok()) {
        ok.fetch_add(1);
      } else if (reply.status == RpcStatus::Busy) {
        busy.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(busy.load(), 1) << "a full queue must refuse, not stall";
  EXPECT_EQ(ok.load() + busy.load(), kClients);

  daemon.request_shutdown();
  daemon.wait();
}

TEST(ServiceDaemon, ClientDisconnectMidReplyDoesNotKillDaemon) {
  DaemonConfig config;
  config.socket_path = unique_path("disc", ".sock");
  Daemon daemon(config);
  // Reply far larger than a socket buffer, produced after the client is
  // already gone: the daemon's reply write must fail with EPIPE and be
  // absorbed, never crash the process (the disconnect bugfix this PR
  // pins).
  OpHandler blob;
  blob.op = "blob";
  blob.run = [](const ToolIO& io, const std::vector<std::string>&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::string chunk(1u << 20, 'x');
    for (int i = 0; i < 8; ++i) {
      std::fwrite(chunk.data(), 1, chunk.size(), io.out);
    }
    return 0;
  };
  daemon.register_op(std::move(blob));
  daemon.register_op(traceinfo_op());
  daemon.start();

  {
    Fd fd = connect_unix(config.socket_path);
    Request request;
    request.id = 1;
    request.op = "blob";
    std::string wire = request.encode();
    wire.push_back('\n');
    ASSERT_TRUE(write_all(fd, wire));
    // Drop the connection without reading the reply.
  }

  // The daemon must still be alive and serving.
  const std::string trace = write_trace("disc");
  Session session(config.socket_path);
  const Reply reply =
      session.call(std::string(kOpTraceInfo), {trace});
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(reply.exit_code, 0);

  // The drop is eventually counted (the writer notices EPIPE once the
  // kernel buffer drains into a closed peer).
  bool counted = false;
  for (int i = 0; i < 50 && !counted; ++i) {
    const Reply metrics =
        daemon.serve(make_request(std::string(kOpMetrics), {}));
    counted =
        metrics.out.find("\"service.client_disconnects\": 0") ==
            std::string::npos &&
        metrics.out.find("service.client_disconnects") != std::string::npos;
    if (!counted) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(counted) << "client disconnect must be observable in metrics";

  daemon.request_shutdown();
  daemon.wait();
  ::unlink(trace.c_str());
}

TEST(ServiceDaemon, PerRequestErrorPolicyIsolation) {
  DaemonConfig config;
  config.socket_path = unique_path("onerr", ".sock");
  Daemon daemon(config);
  daemon.register_op(traceinfo_op());
  daemon.start();

  const std::string corrupt = write_corrupt_trace("onerr");
  const std::string clean = write_trace("onerr_clean");
  Session session(config.socket_path);

  const Reply strict = session.call(std::string(kOpTraceInfo), {corrupt});
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.exit_code, 2) << strict.err;
  EXPECT_NE(strict.err.find("traceinfo:"), std::string::npos);

  const Reply skip = session.call(std::string(kOpTraceInfo),
                                  {corrupt, "--on-error", "skip"});
  ASSERT_TRUE(skip.ok());
  EXPECT_EQ(skip.exit_code, 1) << skip.err;
  EXPECT_NE(skip.out.find("records"), std::string::npos);

  // A failed request leaves no residue: the next clean request is 0.
  const Reply after = session.call(std::string(kOpTraceInfo), {clean});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.exit_code, 0) << after.err;

  daemon.request_shutdown();
  daemon.wait();
  ::unlink(corrupt.c_str());
  ::unlink(clean.c_str());
}

TEST(ServiceDaemon, GovernanceDefaultsApplyUnlessClientOverrides) {
  DaemonConfig config;
  config.socket_path = unique_path("gov", ".sock");
  config.request_max_memory = "64";  // far below two memory-resident traces
  Daemon daemon(config);
  daemon.register_op(tracediff_op());
  daemon.start();

  const std::string trace = write_trace("gov");
  Session session(config.socket_path);
  const Reply governed =
      session.call(std::string(kOpTraceDiff), {trace, trace, "--summary"});
  ASSERT_TRUE(governed.ok());
  EXPECT_EQ(governed.exit_code, 2)
      << "daemon default --max-memory must govern the request: "
      << governed.err;

  const Reply overridden = session.call(
      std::string(kOpTraceDiff),
      {trace, trace, "--summary", "--max-memory", "0"});
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(overridden.exit_code, 0)
      << "client's own --max-memory must win: " << overridden.err;

  daemon.request_shutdown();
  daemon.wait();
  ::unlink(trace.c_str());
}

TEST(ServiceDaemon, MalformedLineAnswersBadRequest) {
  DaemonConfig config;
  config.socket_path = unique_path("badreq", ".sock");
  Daemon daemon(config);
  daemon.start();

  Fd fd = connect_unix(config.socket_path);
  ASSERT_TRUE(write_all(fd, "this is not json\n"));
  LineReader reader(kMaxMessageBytes);
  const auto line = reader.read_line(fd, 5000);
  ASSERT_TRUE(line.has_value());
  const Reply reply = Reply::decode(*line);
  EXPECT_EQ(reply.status, RpcStatus::BadRequest);

  daemon.request_shutdown();
  daemon.wait();
}

TEST(ServiceDaemon, ShutdownOpRepliesThenDrains) {
  DaemonConfig config;
  config.socket_path = unique_path("down", ".sock");
  Daemon daemon(config);
  daemon.start();

  Session session(config.socket_path);
  const Reply reply = session.call(std::string(kOpShutdown), {});
  EXPECT_TRUE(reply.ok());
  EXPECT_NE(reply.out.find("shutting down"), std::string::npos);

  daemon.wait();
  // The socket file is gone; a fresh connect must fail.
  EXPECT_THROW(Session{config.socket_path}, Error);
}

}  // namespace
}  // namespace tdt::service
