// Result-memo contract: eligibility (side-effecting requests never
// cache), key identity (op, canonical args, input digests), LRU
// eviction under the byte budget, and the memo_hit marking that lets
// clients and tests tell a warm reply from a cold one.
#include "tdt/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tdt::service {
namespace {

Reply make_reply(const std::string& out) {
  Reply reply;
  reply.status = RpcStatus::Ok;
  reply.out = out;
  return reply;
}

TEST(ServiceMemo, EligibilityPerOp) {
  EXPECT_TRUE(memo_eligible(kOpSweep, {"--trace", "t.out"}));
  EXPECT_TRUE(memo_eligible(kOpAutotune, {"t.out", "--sweep", "assoc=1"}));
  EXPECT_TRUE(memo_eligible(kOpTraceInfo, {"t.out"}));
  EXPECT_TRUE(memo_eligible(kOpTraceDiff, {"a.out", "b.out"}));
  EXPECT_TRUE(memo_eligible(kOpTransformDigest,
                            {"t.out", "--rules", "r.rules"}));
  // Live/state ops are never memoized.
  EXPECT_FALSE(memo_eligible(kOpStatus, {}));
  EXPECT_FALSE(memo_eligible(kOpMetrics, {}));
  EXPECT_FALSE(memo_eligible(kOpRegisterTrace, {"t.out"}));
}

TEST(ServiceMemo, BlockersDisableCaching) {
  // A sweep with --rules writes the transformed trace as a side effect.
  EXPECT_FALSE(
      memo_eligible(kOpSweep, {"--trace", "t.out", "--rules", "r.rules"}));
  EXPECT_FALSE(memo_eligible(kOpSweep, {"--trace", "t.out", "--xform-out=x"}));
  EXPECT_FALSE(memo_eligible(kOpAutotune, {"t.out", "--emit-best", "b"}));
  EXPECT_FALSE(memo_eligible(kOpAutotune, {"t.out", "--json", "r.json"}));
  // Common blockers apply to every op: ambient faults, export files,
  // progress output tied to wall clock.
  EXPECT_FALSE(memo_eligible(kOpTraceInfo, {"t.out", "--progress"}));
  EXPECT_FALSE(memo_eligible(kOpTraceInfo, {"t.out", "--metrics-json", "m"}));
  EXPECT_FALSE(
      memo_eligible(kOpTraceDiff, {"a", "b", "--fault-spec=seed=1"}));
  // --rules is an *input* for transform-digest, not a side effect.
  EXPECT_TRUE(memo_eligible(kOpTransformDigest, {"t.out", "--rules", "r"}));
}

TEST(ServiceMemo, KeyReflectsOpArgsAndDigests) {
  const std::string base = memo_key("sweep", {"--trace", "t.out"},
                                    {"t.out=crc32:12345678:100"});
  EXPECT_NE(base, memo_key("autotune", {"--trace", "t.out"},
                           {"t.out=crc32:12345678:100"}));
  EXPECT_NE(base, memo_key("sweep", {"--trace", "u.out"},
                           {"t.out=crc32:12345678:100"}));
  // Same bytes, different digest: an in-place edit must miss.
  EXPECT_NE(base, memo_key("sweep", {"--trace", "t.out"},
                           {"t.out=crc32:87654321:100"}));
  // Argument boundaries matter: ["ab","c"] != ["a","bc"].
  EXPECT_NE(memo_key("sweep", {"ab", "c"}, {}),
            memo_key("sweep", {"a", "bc"}, {}));
}

TEST(ServiceMemo, HitMarksWarmReply) {
  ResultMemo memo(1u << 20);
  const std::string key = memo_key("sweep", {"--trace", "t"}, {});
  EXPECT_FALSE(memo.lookup(key).has_value());
  Reply cold = make_reply("table\n");
  cold.memo_hit = true;  // must be stored as a cold result regardless
  memo.insert(key, cold);
  const auto warm = memo.lookup(key);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->memo_hit);
  EXPECT_EQ(warm->out, "table\n");
  const auto counters = memo.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.insertions, 1u);
}

TEST(ServiceMemo, LruEvictionUnderBudget) {
  // Budget fits roughly two entries (256 overhead + key + payload each).
  ResultMemo memo(900);
  memo.insert("a", make_reply(std::string(64, 'a')));
  memo.insert("b", make_reply(std::string(64, 'b')));
  ASSERT_TRUE(memo.lookup("a").has_value());  // touch: "b" becomes LRU
  memo.insert("c", make_reply(std::string(64, 'c')));
  EXPECT_TRUE(memo.lookup("a").has_value());
  EXPECT_FALSE(memo.lookup("b").has_value()) << "LRU entry must be evicted";
  EXPECT_TRUE(memo.lookup("c").has_value());
  EXPECT_GE(memo.counters().evictions, 1u);
  EXPECT_LE(memo.used_bytes(), 900u);
}

TEST(ServiceMemo, OversizedEntryIsRejectedNotCached) {
  ResultMemo memo(512);
  memo.insert("big", make_reply(std::string(4096, 'x')));
  EXPECT_FALSE(memo.lookup("big").has_value());
  EXPECT_EQ(memo.entries(), 0u);
  EXPECT_EQ(memo.used_bytes(), 0u);
}

TEST(ServiceMemo, ZeroBudgetDisables) {
  ResultMemo memo(0);
  memo.insert("k", make_reply("out"));
  EXPECT_FALSE(memo.lookup("k").has_value());
  EXPECT_EQ(memo.entries(), 0u);
}

TEST(ServiceMemo, InsertReplacesExistingKey) {
  ResultMemo memo(1u << 20);
  memo.insert("k", make_reply("first"));
  memo.insert("k", make_reply("second"));
  EXPECT_EQ(memo.entries(), 1u);
  const auto got = memo.lookup("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->out, "second");
}

}  // namespace
}  // namespace tdt::service
