# CLI robustness test: the shared exit-code contract (docs/robustness.md)
# end-to-end — 0 = clean, 1 = completed with recovered errors, 2 = fatal.
file(MAKE_DIRECTORY ${WORKDIR})

function(check_rc what expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${what}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

# -- Baseline: a clean trace exits 0 under every policy. ----------------------
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 64 --out ${WORKDIR}/good.out
  RESULT_VARIABLE rc)
check_rc("gtracer" 0 "${rc}")

foreach(policy strict skip repair)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
            --on-error=${policy}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  check_rc("dinerosim clean --on-error=${policy}" 0 "${rc}")
  if(NOT out MATCHES "miss ratio")
    message(FATAL_ERROR "dinerosim clean output missing stats: ${out}")
  endif()
endforeach()

# -- Corrupt text trace: garbage record lines injected. -----------------------
file(READ ${WORKDIR}/good.out trace_text)
string(APPEND trace_text
  "Z 7ff0001b0 8 main\n"
  "S nothex 8 main\n"
  "S 7ff0001b0 8 main XX 0 1 broken\n")
file(WRITE ${WORKDIR}/bad.out "${trace_text}")

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/bad.out --size 4096
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("dinerosim corrupt (strict default)" 2 "${rc}")

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/bad.out --size 4096 --on-error=skip
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
check_rc("dinerosim corrupt --on-error=skip" 1 "${rc}")
if(NOT out MATCHES "miss ratio")
  message(FATAL_ERROR "skip run must still produce stats: ${out}")
endif()
if(NOT err MATCHES "diagnostics:" OR NOT err MATCHES "trace-bad-line")
  message(FATAL_ERROR "skip run missing per-code summary on stderr: ${err}")
endif()

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/bad.out --size 4096 --on-error=repair
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("dinerosim corrupt --on-error=repair" 1 "${rc}")
if(NOT err MATCHES "trace-repaired-line")
  message(FATAL_ERROR "repair run did not report salvaged lines: ${err}")
endif()

# --max-errors caps runaway streams: with a cap below the error count the
# run must abort fatally (exit 2) instead of grinding through the garbage.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/bad.out --size 4096
          --on-error=skip --max-errors 1
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("dinerosim --max-errors cap" 2 "${rc}")

execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/bad.out
  RESULT_VARIABLE rc)
check_rc("traceinfo corrupt (strict default)" 2 "${rc}")
execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/bad.out --on-error=skip
  RESULT_VARIABLE rc)
check_rc("traceinfo corrupt --on-error=skip" 1 "${rc}")

# tracediff: identical files but recovered errors -> exit 1, not 0.
execute_process(
  COMMAND ${TRACEDIFF} ${WORKDIR}/bad.out ${WORKDIR}/bad.out --summary
          --on-error=skip
  RESULT_VARIABLE rc)
check_rc("tracediff recovered-errors" 1 "${rc}")
execute_process(
  COMMAND ${TRACEDIFF} ${WORKDIR}/good.out ${WORKDIR}/good.out --summary
  RESULT_VARIABLE rc)
check_rc("tracediff identical clean" 0 "${rc}")

# -- Unknown policy is a usage error. -----------------------------------------
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --on-error=lenient
  RESULT_VARIABLE rc)
check_rc("dinerosim bad --on-error value" 2 "${rc}")

# -- Bad rules file is fatal regardless of policy. ----------------------------
file(WRITE ${WORKDIR}/bad.rules "in:\nthis is not a rule file\nout:\nnope\n")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --rules ${WORKDIR}/bad.rules
          --on-error=skip
  RESULT_VARIABLE rc)
check_rc("dinerosim bad rules" 2 "${rc}")

# -- Truncated binary trace: strict -> 2, skip salvages a prefix -> 1. --------
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 64 --binary
          --out ${WORKDIR}/good.tdtb
  RESULT_VARIABLE rc)
check_rc("gtracer --binary" 0 "${rc}")

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.tdtb --size 4096
  RESULT_VARIABLE rc)
check_rc("dinerosim clean tdtb" 0 "${rc}")

# CMake cannot write arbitrary binary, so truncate with head(1) when
# available (the sanitizer/CI images are all Linux); otherwise skip.
find_program(HEAD_TOOL head)
if(HEAD_TOOL)
  file(SIZE ${WORKDIR}/good.tdtb blob_size)
  math(EXPR cut "${blob_size} - 21")
  execute_process(
    COMMAND ${HEAD_TOOL} -c ${cut} ${WORKDIR}/good.tdtb
    OUTPUT_FILE ${WORKDIR}/trunc.tdtb
    RESULT_VARIABLE rc)
  check_rc("head -c" 0 "${rc}")

  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/trunc.tdtb --size 4096
    RESULT_VARIABLE rc)
  check_rc("dinerosim truncated tdtb (strict default)" 2 "${rc}")

  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/trunc.tdtb --size 4096
            --on-error=skip
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  check_rc("dinerosim truncated tdtb --on-error=skip" 1 "${rc}")
  if(NOT out MATCHES "miss ratio")
    message(FATAL_ERROR "truncated-tdtb skip run must still simulate: ${out}")
  endif()
else()
  message(STATUS "head(1) not found; skipping binary truncation checks")
endif()
