#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace tdt::fault {
namespace {

// The injector is process-global; every test disarms on entry and exit
// so the suite order cannot matter.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::reset(); }
  void TearDown() override { FaultInjector::reset(); }
};

TEST_F(FaultInjectorTest, DisarmedByDefault) {
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_EQ(FaultInjector::active(), nullptr);
  EXPECT_FALSE(should_fire(Site::ReaderRead));
  EXPECT_FALSE(maybe_stall());
}

TEST_F(FaultInjectorTest, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    const auto parsed = parse_site(site_name(site));
    ASSERT_TRUE(parsed.has_value()) << site_name(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(parse_site("no.such-site").has_value());
  EXPECT_FALSE(parse_site("").has_value());
}

TEST_F(FaultInjectorTest, InstallParsesSeedSitesAndAfterN) {
  FaultInjector::install("seed=99;worker.stall:0.5:3;writer.flush:1");
  ASSERT_TRUE(FaultInjector::enabled());
  const FaultInjector* f = FaultInjector::active();
  EXPECT_EQ(f->seed(), 99u);
  EXPECT_TRUE(f->rule(Site::WorkerStall).armed);
  EXPECT_DOUBLE_EQ(f->rule(Site::WorkerStall).probability, 0.5);
  EXPECT_EQ(f->rule(Site::WorkerStall).after_n, 3u);
  EXPECT_TRUE(f->rule(Site::WriterFlush).armed);
  EXPECT_EQ(f->rule(Site::WriterFlush).after_n, 0u);
  EXPECT_FALSE(f->rule(Site::ReaderRead).armed);
}

TEST_F(FaultInjectorTest, EmptySpecDisarms) {
  FaultInjector::install("reader.read:1");
  ASSERT_TRUE(FaultInjector::enabled());
  FaultInjector::install("");
  EXPECT_FALSE(FaultInjector::enabled());
}

TEST_F(FaultInjectorTest, BadSpecsThrowConfigErrors) {
  EXPECT_THROW(FaultInjector::install("bogus.site:1"), Error);
  EXPECT_THROW(FaultInjector::install("reader.read"), Error);
  EXPECT_THROW(FaultInjector::install("reader.read:1.5"), Error);
  EXPECT_THROW(FaultInjector::install("reader.read:-0.5"), Error);
  EXPECT_THROW(FaultInjector::install("reader.read:x"), Error);
  EXPECT_THROW(FaultInjector::install("reader.read:1:abc"), Error);
  EXPECT_THROW(FaultInjector::install("seed=7"), Error);  // no sites armed
  // A failed install must not disturb the armed state.
  FaultInjector::install("reader.read:1");
  EXPECT_THROW(FaultInjector::install("bogus.site:1"), Error);
  EXPECT_TRUE(FaultInjector::enabled());
}

TEST_F(FaultInjectorTest, AfterNSkipsExactlyNOpportunities) {
  FaultInjector::install("worker.throw:1:4");
  FaultInjector* f = FaultInjector::active();
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(f->fire(Site::WorkerThrow));
  EXPECT_TRUE(f->fire(Site::WorkerThrow));
  EXPECT_EQ(f->opportunities(Site::WorkerThrow), 5u);
  EXPECT_EQ(f->fired(Site::WorkerThrow), 1u);
}

TEST_F(FaultInjectorTest, ProbabilityZeroNeverFires) {
  FaultInjector::install("queue.push-delay:0");
  FaultInjector* f = FaultInjector::active();
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(f->fire(Site::QueuePushDelay));
  EXPECT_EQ(f->fired(Site::QueuePushDelay), 0u);
}

TEST_F(FaultInjectorTest, SameSeedSameSchedule) {
  const auto schedule = [](std::uint64_t seed) {
    FaultInjector::install("seed=" + std::to_string(seed) +
                           ";binary.crc-flip:0.25");
    FaultInjector* f = FaultInjector::active();
    std::vector<bool> fires;
    fires.reserve(256);
    for (int i = 0; i < 256; ++i) fires.push_back(f->fire(Site::BinaryCrcFlip));
    return fires;
  };
  const std::vector<bool> a = schedule(7);
  const std::vector<bool> b = schedule(7);
  const std::vector<bool> c = schedule(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 256 draws
}

TEST_F(FaultInjectorTest, ProbabilityRoughlyRespected) {
  FaultInjector::install("seed=3;sink.push-batch:0.25");
  FaultInjector* f = FaultInjector::active();
  int fired = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (f->fire(Site::SinkPushBatch)) ++fired;
  }
  EXPECT_EQ(f->fired(Site::SinkPushBatch), static_cast<std::uint64_t>(fired));
  // 0.25 +/- a generous slack: this guards against inverted or constant
  // draws, not statistical purity.
  EXPECT_GT(fired, kDraws / 8);
  EXPECT_LT(fired, kDraws / 2);
}

TEST_F(FaultInjectorTest, SitesDrawIndependently) {
  FaultInjector::install("seed=5;worker.throw:0.5;worker.exit:0.5");
  FaultInjector* f = FaultInjector::active();
  std::vector<bool> a, b;
  for (int i = 0; i < 128; ++i) {
    a.push_back(f->fire(Site::WorkerThrow));
    b.push_back(f->fire(Site::WorkerExit));
  }
  EXPECT_NE(a, b);  // the site index perturbs the hash
}

TEST_F(FaultInjectorTest, StallReleaseFreesInjectedStalls) {
  FaultInjector::install("worker.stall:1");
  EXPECT_FALSE(FaultInjector::stalls_released());
  FaultInjector::release_stalls();
  EXPECT_TRUE(FaultInjector::stalls_released());
  // With the release already latched, maybe_stall() returns immediately
  // but still reports that a stall fired.
  EXPECT_TRUE(maybe_stall());
  // A fresh install rearms the stall gate.
  FaultInjector::install("worker.stall:1");
  EXPECT_FALSE(FaultInjector::stalls_released());
}

}  // namespace
}  // namespace tdt::fault
