#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace tdt {
namespace {

TEST(Crc32, KnownVectors) {
  // IEEE 802.3 check value for the standard test string.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::string data = "TDTB binary trace payload \xff\x7f check";
  data += '\0';  // embedded NUL must be hashed like any other byte
  data += "tail";
  Crc32 crc;
  for (const char c : data) crc.update_byte(static_cast<std::uint8_t>(c));
  EXPECT_EQ(crc.value(), crc32(data.data(), data.size()));

  Crc32 split;
  split.update(data.data(), 10);
  split.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(split.value(), crc.value());
}

TEST(Crc32, ResetStartsOver) {
  Crc32 crc;
  crc.update("garbage", 7);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(64, '\x5a');
  const std::uint32_t clean = crc32(data.data(), data.size());
  data[17] = static_cast<char>(data[17] ^ 0x04);
  EXPECT_NE(crc32(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace tdt
