#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace tdt {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PushAfterCloseIsRejected) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, AbortDiscardsItemsAndUnblocks) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.abort();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_FALSE(q.push(2));
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(5));
  EXPECT_EQ(q.pop(), 5);
}

TEST(BoundedQueue, BlockingProducerConsumerCountsStalls) {
  BoundedQueue<int> q(2);  // tiny: the producer must stall
  constexpr int kItems = 1000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    while (auto v = q.pop()) sum += static_cast<std::uint64_t>(*v);
  });
  for (int i = 1; i <= kItems; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  consumer.join();
  EXPECT_EQ(sum, std::uint64_t{kItems} * (kItems + 1) / 2);
  const auto counters = q.counters();
  EXPECT_EQ(counters.pushes, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(counters.pops, static_cast<std::uint64_t>(kItems));
  EXPECT_GE(counters.peak_occupancy, 1u);
  EXPECT_LE(counters.peak_occupancy, 2u);
}

// Close/abort are idempotent and safe to race from any number of
// threads against live producers and consumers: under TSan this is the
// close-hammering regression test for the shutdown path.
TEST(BoundedQueue, ConcurrentCloseHammering) {
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> q(4);
    std::atomic<std::uint64_t> popped{0};
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          if (!q.push(i)) break;  // closed under us: expected
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (q.pop()) popped.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (int k = 0; k < 3; ++k) {
      threads.emplace_back([&] { q.close(); });
    }
    threads.emplace_back([&] { q.abort(); });
    for (std::thread& t : threads) t.join();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.pop(), std::nullopt);
    EXPECT_FALSE(q.push(-1));
    // Another close/abort after everything settled must be harmless.
    q.close();
    q.abort();
    q.close();
    EXPECT_LE(popped.load(), q.counters().pushes);
  }
}

TEST(BoundedQueue, CloseThenAbortDiscardsBacklog) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();   // backlog stays poppable...
  q.abort();   // ...until an abort demotes the close and discards it
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(static_cast<std::uint64_t>(*v),
                      std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) ASSERT_TRUE(q.push(i));
    });
  }
  for (int t = kConsumers; t < kConsumers + kProducers; ++t) {
    threads[t].join();
  }
  q.close();
  for (int t = 0; t < kConsumers; ++t) threads[t].join();
  EXPECT_EQ(sum.load(),
            std::uint64_t{kProducers} * kPerProducer * (kPerProducer + 1) / 2);
}

}  // namespace
}  // namespace tdt
