#include "util/simd_scan.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/string_util.hpp"

namespace tdt::simd {
namespace {

/// Reference tokenizer written independently of the library code: split
/// on is_ascii_space runs, same overflow contract as tokenize_fields.
int reference_tokenize(std::string_view line, FieldSpan* out,
                       std::size_t max_fields) {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_ascii_space(line[i])) ++i;
    if (i >= line.size()) break;
    const std::size_t begin = i;
    while (i < line.size() && !is_ascii_space(line[i])) ++i;
    if (count == max_fields) return -1;
    out[count++] = {static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(i)};
  }
  return static_cast<int>(count);
}

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers = {Tier::Scalar};
  if (best_supported_tier() >= Tier::Sse2) tiers.push_back(Tier::Sse2);
  if (best_supported_tier() >= Tier::Avx2) tiers.push_back(Tier::Avx2);
  return tiers;
}

/// Every test walks the supported tiers; the fixture restores whatever
/// tier the process was using (set_active_tier is process-global).
class SimdScanTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = active_tier(); }
  void TearDown() override { set_active_tier(saved_); }

 private:
  Tier saved_ = Tier::Scalar;
};

TEST_F(SimdScanTest, TierNamesAndClamping) {
  EXPECT_EQ(tier_name(Tier::Scalar), "scalar");
  EXPECT_EQ(tier_name(Tier::Sse2), "sse2");
  EXPECT_EQ(tier_name(Tier::Avx2), "avx2");
  // Requesting more than the hardware supports clamps, never crashes.
  const Tier t = set_active_tier(Tier::Avx2);
  EXPECT_LE(static_cast<int>(t), static_cast<int>(best_supported_tier()));
  EXPECT_EQ(t, active_tier());
  EXPECT_EQ(set_active_tier(Tier::Scalar), Tier::Scalar);
}

TEST_F(SimdScanTest, FindNewlineMatchesMemchrOnEveryTier) {
  std::vector<std::string> cases = {
      "",
      "\n",
      "no newline at all",
      "x\n",
      "\nleading",
      "trailing\n",
      std::string(15, 'a') + "\n",
      std::string(16, 'a') + "\n",
      std::string(31, 'a') + "\n",
      std::string(32, 'a') + "\n",
      std::string(63, 'a') + "\n",
      std::string(64, 'a') + "\n",
      std::string(65, 'a') + "\n",
      std::string(100, 'a'),
      std::string(1000, 'a') + "\nmore\n",
  };
  // A '\r' is NOT a line terminator for the scanner.
  cases.push_back("carriage\rreturn only");

  for (const Tier t : supported_tiers()) {
    ASSERT_EQ(set_active_tier(t), t);
    const FindNewlineFn fn = find_newline_fn();
    for (const std::string& s : cases) {
      const char* hit =
          static_cast<const char*>(std::memchr(s.data(), '\n', s.size()));
      const std::size_t want =
          hit != nullptr ? static_cast<std::size_t>(hit - s.data()) : s.size();
      EXPECT_EQ(find_newline(s), want) << tier_name(t) << " on " << s.size()
                                       << " bytes";
      EXPECT_EQ(fn(s.data(), s.size()), want) << tier_name(t);
    }
    // from-offset overload skips earlier newlines.
    const std::string multi = "a\nb\nc";
    EXPECT_EQ(find_newline(multi, 0), 1u);
    EXPECT_EQ(find_newline(multi, 2), 3u);
    EXPECT_EQ(find_newline(multi, 4), 5u);
  }
}

void expect_tokenize_matches(std::string_view line, Tier t) {
  constexpr std::size_t kMax = 9;
  FieldSpan got[kMax] = {};
  FieldSpan want[kMax] = {};
  const int rc_got = tokenize_fields(line, got, kMax);
  const int rc_want = reference_tokenize(line, want, kMax);
  ASSERT_EQ(rc_got, rc_want) << tier_name(t) << " on [" << line << "]";
  const std::size_t n =
      rc_want < 0 ? kMax : static_cast<std::size_t>(rc_want);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(got[k].begin, want[k].begin) << tier_name(t) << " field " << k;
    EXPECT_EQ(got[k].end, want[k].end) << tier_name(t) << " field " << k;
  }
}

TEST_F(SimdScanTest, TokenizeCraftedCasesOnEveryTier) {
  std::vector<std::string> cases = {
      "",
      " ",
      "   \t  \r ",
      "x",
      " x ",
      "L 7feff3ffc 4 main LV 0 1 lI",
      "S 7feff4000 4 main LS 0 1 lSoA.mX[0]",
      "\tS\t000601040\t4\tmain\tGV\tglScalar\t",
      "a\rb\x0bc\x0c d",  // CR, VT, FF are all separators
      "one",
      "one two",
      "one two three four five six seven eight nine",
  };
  // Field edges pinned to the 64-byte word boundary: last byte at 62,
  // 63, 64; field starting exactly at 64.
  for (const std::size_t pad : {61u, 62u, 63u, 64u, 65u}) {
    cases.push_back(std::string(pad, 'a') + " b");
    cases.push_back(std::string(pad, ' ') + "b c");
  }
  // Long lines exercise the bitmap (65..1024) and scalar (>1024) paths.
  for (const std::size_t len : {100u, 1024u, 1025u, 4096u}) {
    std::string long_line;
    while (long_line.size() < len) long_line += "field ";
    long_line.resize(len);
    cases.push_back(long_line);
    cases.push_back(std::string(len, 'a'));       // one giant field
    cases.push_back(std::string(len, ' ') + "x");  // giant ws run
  }

  for (const Tier t : supported_tiers()) {
    ASSERT_EQ(set_active_tier(t), t);
    for (const std::string& s : cases) expect_tokenize_matches(s, t);
  }
}

TEST_F(SimdScanTest, TokenizeOverflowStillWritesFirstSpans) {
  // Ten fields into a nine-span buffer: -1, but out[0..9) must hold the
  // first nine spans (the reader relies on this to salvage prefixes).
  const std::string line = "f0 f1 f2 f3 f4 f5 f6 f7 f8 f9";
  for (const Tier t : supported_tiers()) {
    ASSERT_EQ(set_active_tier(t), t);
    FieldSpan got[9] = {};
    EXPECT_EQ(tokenize_fields(line, got, 9), -1) << tier_name(t);
    for (std::uint32_t k = 0; k < 9; ++k) {
      EXPECT_EQ(got[k].begin, k * 3) << tier_name(t) << " field " << k;
      EXPECT_EQ(got[k].end, k * 3 + 2) << tier_name(t) << " field " << k;
    }
  }
}

TEST_F(SimdScanTest, RawFunctionPointersTrackTheActiveTier) {
  for (const Tier t : supported_tiers()) {
    ASSERT_EQ(set_active_tier(t), t);
    const TokenizeFieldsFn tok = tokenize_fields_fn();
    const FindNewlineFn nl = find_newline_fn();
    ASSERT_NE(tok, nullptr);
    ASSERT_NE(nl, nullptr);
    const std::string line = "M 7feff3ffc 4 main LV 0 1 lI";
    FieldSpan spans[9] = {};
    EXPECT_EQ(tok(line.data(), line.size(), spans, 9), 8) << tier_name(t);
    EXPECT_EQ(spans[0].begin, 0u);
    EXPECT_EQ(spans[7].end, line.size());
    EXPECT_EQ(nl(line.data(), line.size()), line.size());
  }
}

}  // namespace
}  // namespace tdt::simd
