#include "util/flags.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args.begin(), args.end()};
}

TEST(Flags, DefaultsApplyWithoutArgs) {
  FlagParser p("prog", "test");
  const auto* s = p.add_string("name", "default", "help");
  const auto* u = p.add_uint("count", 7, "help");
  const auto* b = p.add_bool("verbose", false, "help");
  auto args = argv_of({"prog"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(*s, "default");
  EXPECT_EQ(*u, 7u);
  EXPECT_FALSE(*b);
}

TEST(Flags, SpaceSeparatedValues) {
  FlagParser p("prog", "test");
  const auto* s = p.add_string("name", "", "help");
  const auto* u = p.add_uint("count", 0, "help");
  auto args = argv_of({"prog", "--name", "hello", "--count", "42"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(*s, "hello");
  EXPECT_EQ(*u, 42u);
}

TEST(Flags, EqualsSeparatedValues) {
  FlagParser p("prog", "test");
  const auto* s = p.add_string("name", "", "help");
  auto args = argv_of({"prog", "--name=world"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(*s, "world");
}

TEST(Flags, BoolSwitchAndExplicit) {
  FlagParser p("prog", "test");
  const auto* a = p.add_bool("a", false, "help");
  const auto* b = p.add_bool("b", true, "help");
  auto args = argv_of({"prog", "--a", "--b=false"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
}

TEST(Flags, HexUintAccepted) {
  FlagParser p("prog", "test");
  const auto* u = p.add_uint("addr", 0, "help");
  auto args = argv_of({"prog", "--addr", "0x7ff000108"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(*u, 0x7ff000108ull);
}

TEST(Flags, NegativeInt) {
  FlagParser p("prog", "test");
  const auto* i = p.add_int("delta", 0, "help");
  auto args = argv_of({"prog", "--delta", "-5"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(*i, -5);
}

TEST(Flags, PositionalCollected) {
  FlagParser p("prog", "test");
  (void)p.add_bool("x", false, "help");
  auto args = argv_of({"prog", "one", "--x", "two"});
  EXPECT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "one");
  EXPECT_EQ(p.positional()[1], "two");
}

TEST(Flags, UnknownFlagThrows) {
  FlagParser p("prog", "test");
  auto args = argv_of({"prog", "--nope"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(Flags, MissingValueThrows) {
  FlagParser p("prog", "test");
  (void)p.add_string("name", "", "help");
  auto args = argv_of({"prog", "--name"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(Flags, BadUintValueThrows) {
  FlagParser p("prog", "test");
  (void)p.add_uint("count", 0, "help");
  auto args = argv_of({"prog", "--count", "abc"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(Flags, BadBoolValueThrows) {
  FlagParser p("prog", "test");
  (void)p.add_bool("flag", false, "help");
  auto args = argv_of({"prog", "--flag=maybe"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(Flags, HelpReturnsFalse) {
  FlagParser p("prog", "test");
  (void)p.add_string("name", "x", "the name");
  auto args = argv_of({"prog", "--help"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Flags, UsageMentionsFlagsAndDefaults) {
  FlagParser p("prog", "a tester");
  (void)p.add_uint("count", 9, "how many");
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("9"), std::string::npos);
}

}  // namespace
}  // namespace tdt
