#include "util/governor.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/obs.hpp"

namespace tdt {
namespace {

TEST(Budget, UnlimitedByDefault) {
  Budget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_TRUE(b.try_charge(1ull << 60));
  EXPECT_EQ(b.used(), 1ull << 60);
  EXPECT_EQ(b.denials(), 0u);
}

TEST(Budget, ChargesUpToTheLimitThenDenies) {
  Budget b(100);
  EXPECT_TRUE(b.try_charge(60));
  EXPECT_TRUE(b.try_charge(40));
  EXPECT_FALSE(b.try_charge(1));
  EXPECT_EQ(b.used(), 100u);
  EXPECT_EQ(b.peak(), 100u);
  EXPECT_EQ(b.denials(), 1u);
  b.release(40);
  EXPECT_TRUE(b.try_charge(30));
  EXPECT_EQ(b.used(), 90u);
  EXPECT_EQ(b.peak(), 100u);  // high-water mark survives releases
}

TEST(Budget, ChargeThrowsResourceErrorNamingTheConsumer) {
  Budget b(10);
  b.charge(10, "result buffer");
  try {
    b.charge(1, "result buffer");
    FAIL() << "expected Error{Resource}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Resource);
    EXPECT_NE(std::string(e.what()).find("result buffer"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--max-memory"), std::string::npos);
  }
  EXPECT_EQ(b.used(), 10u);  // the failed charge left no residue
  EXPECT_EQ(b.denials(), 1u);
}

TEST(Budget, ConcurrentChargesNeverOvershoot) {
  Budget b(1000);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> granted{0};
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (b.try_charge(7)) granted.fetch_add(7, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(b.used(), granted.load());
  EXPECT_LE(b.used(), 1000u);
  EXPECT_LE(b.peak(), 1000u);
}

TEST(Governor, DefaultGovernsNothing) {
  Governor g;
  EXPECT_FALSE(g.has_deadline());
  EXPECT_FALSE(g.expired());
  EXPECT_FALSE(g.deadline_hit());
  EXPECT_TRUE(g.memory.unlimited());
}

TEST(Governor, NonPositiveDeadlineDisarms) {
  Governor g;
  g.set_deadline(0);
  EXPECT_FALSE(g.has_deadline());
  g.set_deadline(-1);
  EXPECT_FALSE(g.has_deadline());
  EXPECT_FALSE(g.expired());
}

TEST(Governor, ExpiredLatchesOnceThePastDeadlinePasses) {
  Governor g;
  g.set_deadline(1e-9);  // effectively already expired
  ASSERT_TRUE(g.has_deadline());
  while (!g.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(g.deadline_hit());
  EXPECT_TRUE(g.expired());  // latched
  // Re-arming far in the future does not unlatch history: hit stays.
  g.set_deadline(3600);
  EXPECT_TRUE(g.deadline_hit());
}

TEST(Governor, FarDeadlineDoesNotExpire) {
  Governor g;
  g.set_deadline(3600);
  EXPECT_FALSE(g.expired());
  EXPECT_FALSE(g.deadline_hit());
}

TEST(Governor, FoldPublishesGauges) {
  Governor g;
  g.memory.set_limit(100);
  ASSERT_TRUE(g.memory.try_charge(60));
  ASSERT_FALSE(g.memory.try_charge(60));
  obs::Registry registry("test");
  g.fold(&registry);
  const std::string json = registry.metrics_json();
  EXPECT_NE(json.find("governor.memory_limit_bytes"), std::string::npos);
  EXPECT_NE(json.find("governor.memory_peak_bytes"), std::string::npos);
  EXPECT_NE(json.find("governor.memory_denials"), std::string::npos);
  g.fold(nullptr);  // no-op, must not crash
}

}  // namespace
}  // namespace tdt
