#include "util/table.hpp"

#include <gtest/gtest.h>

namespace tdt {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"set", "hits"});
  t.add("0", 124);
  t.add("1", 8);
  const std::string out = t.render();
  EXPECT_NE(out.find("set"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("124"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"name", "value"});
  t.add("a", 1);
  t.add("longer", 1000);
  const std::string out = t.render();
  // Every line has the same width.
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len) << out;
    pos = next + 1;
  }
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTable, CsvEscapesNothingButJoins) {
  TextTable t({"x", "y"});
  t.add(1, 2);
  EXPECT_EQ(t.render_csv(), "x,y\n1,2\n");
}

TEST(TextTable, FloatingCellsFormatted) {
  TextTable t({"metric", "ratio"});
  t.add("miss", 0.277778);
  EXPECT_NE(t.render().find("0.2778"), std::string::npos);
}

TEST(TextTable, MixedCellTypes) {
  TextTable t({"a", "b", "c", "d"});
  t.add(std::string("str"), std::string_view("view"), 42u, -1);
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv, "a,b,c,d\nstr,view,42,-1\n");
}

}  // namespace
}  // namespace tdt
