#include "util/string_pool.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt {
namespace {

TEST(StringPool, EmptyStringIsSymbolZero) {
  StringPool pool;
  EXPECT_EQ(pool.intern("").id(), 0u);
  EXPECT_TRUE(Symbol{}.empty());
  EXPECT_EQ(pool.view(Symbol{}), "");
}

TEST(StringPool, InternIsIdempotent) {
  StringPool pool;
  const Symbol a = pool.intern("lSoA");
  const Symbol b = pool.intern("lSoA");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 2u);  // "" + "lSoA"
}

TEST(StringPool, DistinctStringsDistinctSymbols) {
  StringPool pool;
  const Symbol a = pool.intern("mX");
  const Symbol b = pool.intern("mY");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.view(a), "mX");
  EXPECT_EQ(pool.view(b), "mY");
}

TEST(StringPool, FindDoesNotIntern) {
  StringPool pool;
  EXPECT_TRUE(pool.find("absent").empty());
  EXPECT_EQ(pool.size(), 1u);
  const Symbol a = pool.intern("present");
  EXPECT_EQ(pool.find("present"), a);
}

TEST(StringPool, SurvivesRehashing) {
  StringPool pool;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) {
    syms.push_back(pool.intern("name_" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.view(syms[static_cast<std::size_t>(i)]),
              "name_" + std::to_string(i));
  }
}

TEST(StringPool, ForeignSymbolThrows) {
  StringPool pool;
  EXPECT_THROW((void)pool.view(Symbol{999}), Error);
}

TEST(StringPool, SymbolOrderingFollowsInternOrder) {
  StringPool pool;
  const Symbol a = pool.intern("first");
  const Symbol b = pool.intern("second");
  EXPECT_LT(a, b);
}

TEST(StringPool, HashIsUsableInUnorderedContainers) {
  StringPool pool;
  std::unordered_map<Symbol, int> map;
  map[pool.intern("x")] = 1;
  map[pool.intern("y")] = 2;
  EXPECT_EQ(map.at(pool.intern("x")), 1);
  EXPECT_EQ(map.at(pool.intern("y")), 2);
}

}  // namespace
}  // namespace tdt
