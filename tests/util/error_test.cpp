#include "util/error.hpp"

#include <gtest/gtest.h>

namespace tdt {
namespace {

TEST(Error, WhatIsPreformatted) {
  const Error e(ErrorKind::Parse, "bad token", SourceLoc{3, 7});
  EXPECT_STREQ(e.what(), "parse error at 3:7: bad token");
  EXPECT_EQ(e.kind(), ErrorKind::Parse);
  EXPECT_EQ(e.message(), "bad token");
  EXPECT_EQ(e.where(), (SourceLoc{3, 7}));
}

TEST(Error, UnknownLocationOmitted) {
  const Error e(ErrorKind::Config, "bad size");
  EXPECT_STREQ(e.what(), "config error: bad size");
  EXPECT_FALSE(e.where().known());
}

TEST(Error, KindNames) {
  EXPECT_EQ(to_string(ErrorKind::Parse), "parse");
  EXPECT_EQ(to_string(ErrorKind::Config), "config");
  EXPECT_EQ(to_string(ErrorKind::Semantic), "semantic");
  EXPECT_EQ(to_string(ErrorKind::Io), "io");
  EXPECT_EQ(to_string(ErrorKind::Internal), "internal");
}

TEST(Error, ThrowHelpers) {
  EXPECT_THROW(throw_parse_error("x"), Error);
  EXPECT_THROW(throw_config_error("x"), Error);
  EXPECT_THROW(throw_semantic_error("x"), Error);
  EXPECT_THROW(throw_io_error("x"), Error);
  try {
    throw_semantic_error("msg", {2, 1});
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Semantic);
    EXPECT_EQ(e.where().line, 2u);
  }
}

TEST(Error, InternalCheckPassesAndFails) {
  EXPECT_NO_THROW(internal_check(true, "fine"));
  try {
    internal_check(false, "broken invariant");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Internal);
    EXPECT_EQ(e.message(), "broken invariant");
  }
}

TEST(Error, IsCatchableAsRuntimeError) {
  try {
    throw_io_error("file gone");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("file gone"), std::string::npos);
  }
}

}  // namespace
}  // namespace tdt
