#include "util/lexer.hpp"

#include <gtest/gtest.h>

namespace tdt {
namespace {

TEST(Lexer, TokenizesIdentifiersNumbersPunct) {
  Lexer lex("struct lSoA { int mX[16]; }");
  EXPECT_EQ(lex.next().text, "struct");
  EXPECT_EQ(lex.next().text, "lSoA");
  EXPECT_EQ(lex.next().text, "{");
  EXPECT_EQ(lex.next().text, "int");
  EXPECT_EQ(lex.next().text, "mX");
  EXPECT_EQ(lex.next().text, "[");
  Token n = lex.next();
  EXPECT_EQ(n.kind, TokKind::Number);
  EXPECT_EQ(n.number(), 16u);
  EXPECT_EQ(lex.next().text, "]");
  EXPECT_EQ(lex.next().text, ";");
  EXPECT_EQ(lex.next().text, "}");
  EXPECT_TRUE(lex.at_end());
}

TEST(Lexer, PeekDoesNotConsume) {
  Lexer lex("a b");
  EXPECT_EQ(lex.peek().text, "a");
  EXPECT_EQ(lex.peek().text, "a");
  EXPECT_EQ(lex.next().text, "a");
  EXPECT_EQ(lex.peek().text, "b");
}

TEST(Lexer, HexNumbers) {
  Lexer lex("0x7ff000108");
  Token t = lex.next();
  EXPECT_EQ(t.kind, TokKind::Number);
  EXPECT_EQ(t.number(), 0x7ff000108ull);
}

TEST(Lexer, SkipsLineComments) {
  Lexer lex("a // comment\nb # hash comment\nc");
  EXPECT_EQ(lex.next().text, "a");
  EXPECT_EQ(lex.next().text, "b");
  EXPECT_EQ(lex.next().text, "c");
  EXPECT_TRUE(lex.at_end());
}

TEST(Lexer, SkipsBlockComments) {
  Lexer lex("a /* multi\nline */ b");
  EXPECT_EQ(lex.next().text, "a");
  EXPECT_EQ(lex.next().text, "b");
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  Lexer lex("a /* never closed");
  EXPECT_EQ(lex.next().text, "a");
  EXPECT_THROW(lex.next(), Error);
}

TEST(Lexer, TwoCharPunct) {
  Lexer lex("a->b :: ==");
  EXPECT_EQ(lex.next().text, "a");
  EXPECT_EQ(lex.next().text, "->");
  EXPECT_EQ(lex.next().text, "b");
  EXPECT_EQ(lex.next().text, "::");
  EXPECT_EQ(lex.next().text, "==");
}

TEST(Lexer, TracksLineAndColumn) {
  Lexer lex("a\n  b");
  Token a = lex.next();
  EXPECT_EQ(a.loc.line, 1u);
  EXPECT_EQ(a.loc.column, 1u);
  Token b = lex.next();
  EXPECT_EQ(b.loc.line, 2u);
  EXPECT_EQ(b.loc.column, 3u);
}

TEST(Lexer, AcceptConsumesOnlyOnMatch) {
  Lexer lex("[ 5 ]");
  EXPECT_FALSE(lex.accept("("));
  EXPECT_TRUE(lex.accept("["));
  EXPECT_EQ(lex.next().number(), 5u);
  EXPECT_TRUE(lex.accept("]"));
  EXPECT_TRUE(lex.at_end());
}

TEST(Lexer, ExpectThrowsWithLocation) {
  Lexer lex("foo");
  try {
    lex.expect("{");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Parse);
    EXPECT_EQ(e.where().line, 1u);
  }
}

TEST(Lexer, ExpectKind) {
  Lexer lex("name 42");
  Token id = lex.expect(TokKind::Ident, "identifier");
  EXPECT_EQ(id.text, "name");
  Token num = lex.expect(TokKind::Number, "number");
  EXPECT_EQ(num.number(), 42u);
  EXPECT_THROW(lex.expect(TokKind::Ident, "identifier"), Error);
}

TEST(Lexer, EndTokenIsSticky) {
  Lexer lex("");
  EXPECT_TRUE(lex.at_end());
  EXPECT_EQ(lex.next().kind, TokKind::End);
  EXPECT_EQ(lex.next().kind, TokKind::End);
}

}  // namespace
}  // namespace tdt
