#include "util/diag.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tdt {
namespace {

TEST(Diag, StrictPolicyThrowsOnError) {
  DiagEngine diags(ErrorPolicy::Strict);
  EXPECT_THROW(
      diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "boom"),
      Error);
  // The diagnostic is still counted so the summary reflects the failure.
  EXPECT_EQ(diags.errors(), 1u);
  EXPECT_EQ(diags.count(DiagCode::TraceBadLine), 1u);
}

TEST(Diag, SkipPolicyRecordsAndContinues) {
  DiagEngine diags(ErrorPolicy::Skip);
  diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "a", {3, 1});
  diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "b", {5, 1});
  diags.report(DiagSeverity::Warning, DiagCode::XformUnmatchedVar, "c");
  EXPECT_EQ(diags.errors(), 2u);
  EXPECT_EQ(diags.warnings(), 1u);
  EXPECT_EQ(diags.count(DiagCode::TraceBadLine), 2u);
  EXPECT_EQ(diags.count(DiagCode::XformUnmatchedVar), 1u);
  EXPECT_FALSE(diags.clean());
  EXPECT_EQ(diags.exit_code(), 1);
}

TEST(Diag, WarningsDoNotAffectExitCode) {
  DiagEngine diags(ErrorPolicy::Skip);
  diags.report(DiagSeverity::Warning, DiagCode::XformUnmatchedVar, "w");
  EXPECT_TRUE(diags.clean());
  EXPECT_EQ(diags.exit_code(), 0);
}

TEST(Diag, FatalAlwaysThrows) {
  DiagEngine diags(ErrorPolicy::Skip);
  EXPECT_THROW(
      diags.report(DiagSeverity::Fatal, DiagCode::BinBadMagic, "bad magic"),
      Error);
}

TEST(Diag, MaxErrorsCapTerminatesGarbageStreams) {
  DiagEngine diags(ErrorPolicy::Skip, /*max_errors=*/3);
  for (int i = 0; i < 3; ++i) {
    diags.report(DiagSeverity::Error, DiagCode::DinBadLine, "junk");
  }
  EXPECT_THROW(
      diags.report(DiagSeverity::Error, DiagCode::DinBadLine, "junk"), Error);
  EXPECT_EQ(diags.errors(), 4u);
}

TEST(Diag, ZeroMaxErrorsMeansUnlimited) {
  DiagEngine diags(ErrorPolicy::Skip, /*max_errors=*/0);
  for (int i = 0; i < 500; ++i) {
    diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "junk");
  }
  EXPECT_EQ(diags.errors(), 500u);
}

TEST(Diag, SummaryListsPerCodeCounts) {
  DiagEngine diags(ErrorPolicy::Repair);
  diags.report(DiagSeverity::Error, DiagCode::TraceRepairedLine, "r");
  diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "x");
  diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "y");
  const std::string summary = diags.summary();
  EXPECT_NE(summary.find("3 errors"), std::string::npos);
  EXPECT_NE(summary.find("T001 trace-bad-line: 2"), std::string::npos);
  EXPECT_NE(summary.find("T003 trace-repaired-line: 1"), std::string::npos);
}

TEST(Diag, SummaryEmptyWhenClean) {
  DiagEngine diags(ErrorPolicy::Skip);
  EXPECT_TRUE(diags.summary().empty());
  EXPECT_EQ(diags.exit_code(), 0);
}

TEST(Diag, EchoWritesFormattedDiagnostics) {
  DiagEngine diags(ErrorPolicy::Skip);
  std::ostringstream echo;
  diags.set_echo(&echo);
  diags.report(DiagSeverity::Error, DiagCode::TraceBadLine, "bad kind",
               {7, 1});
  EXPECT_NE(echo.str().find("error T001 (trace-bad-line) at 7:1: bad kind"),
            std::string::npos);
}

TEST(Diag, PolicyParsing) {
  EXPECT_EQ(parse_error_policy("strict"), ErrorPolicy::Strict);
  EXPECT_EQ(parse_error_policy("skip"), ErrorPolicy::Skip);
  EXPECT_EQ(parse_error_policy("repair"), ErrorPolicy::Repair);
  EXPECT_THROW((void)parse_error_policy("lenient"), Error);
}

TEST(Diag, CodeIdsAreUnique) {
  const DiagCode all[] = {
      DiagCode::TraceBadLine,      DiagCode::TraceBadMarker,
      DiagCode::TraceRepairedLine, DiagCode::DinBadLine,
      DiagCode::DinRepairedLine,   DiagCode::BinBadMagic,
      DiagCode::BinBadVersion,     DiagCode::BinTruncated,
      DiagCode::BinBadVarint,      DiagCode::BinFieldOverflow,
      DiagCode::BinBadSymbol,      DiagCode::BinBadTag,
      DiagCode::BinStringTooLong,  DiagCode::BinBadFooter,
      DiagCode::BinCrcMismatch,    DiagCode::BinCountMismatch,
      DiagCode::XformUnmatchedVar, DiagCode::XformFailedRecord,
  };
  for (const DiagCode a : all) {
    for (const DiagCode b : all) {
      if (a != b) {
        EXPECT_NE(diag_code_id(a), diag_code_id(b));
        EXPECT_NE(diag_code_name(a), diag_code_name(b));
      }
    }
  }
}

}  // namespace
}  // namespace tdt
