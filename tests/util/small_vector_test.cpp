#include "util/small_vector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace tdt {
namespace {

TEST(SmallVector, StartsEmptyAndInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapPreservingContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, InitializerList) {
  SmallVector<int, 2> v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVector, CopyIndependent) {
  SmallVector<std::string, 2> a{"x", "y", "z"};
  SmallVector<std::string, 2> b(a);
  b[0] = "changed";
  EXPECT_EQ(a[0], "x");
  EXPECT_EQ(b[0], "changed");
  EXPECT_EQ(a, a);
  EXPECT_FALSE(a == b);
}

TEST(SmallVector, CopyAssign) {
  SmallVector<int, 2> a{1, 2, 3, 4};
  SmallVector<int, 2> b{9};
  b = a;
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 4);
}

TEST(SmallVector, MoveFromHeapStealsStorage) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* data = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), data);  // storage stolen, no copy
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVector, MoveFromInlineMovesElements) {
  SmallVector<std::unique_ptr<int>, 4> a;
  a.push_back(std::make_unique<int>(7));
  SmallVector<std::unique_ptr<int>, 4> b(std::move(a));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(*b[0], 7);
}

TEST(SmallVector, MoveAssign) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 2> b{8, 9};
  b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 3);
}

TEST(SmallVector, PopBackDestroys) {
  SmallVector<std::shared_ptr<int>, 2> v;
  auto p = std::make_shared<int>(1);
  v.push_back(p);
  EXPECT_EQ(p.use_count(), 2);
  v.pop_back();
  EXPECT_EQ(p.use_count(), 1);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, ClearKeepsCapacity) {
  SmallVector<int, 2> v{1, 2, 3, 4, 5};
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVector, ResizeGrowsWithDefaults) {
  SmallVector<int, 2> v;
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVector, IterationMatchesIndexing) {
  SmallVector<int, 3> v{10, 20, 30, 40};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 100);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 40);
}

TEST(SmallVector, EqualityIsElementwise) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 8> b_different_capacity;  // same type family not required
  (void)b_different_capacity;
  SmallVector<int, 2> c{1, 2, 3};
  SmallVector<int, 2> d{1, 2};
  EXPECT_TRUE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(SmallVector, ReserveAvoidsLaterReallocation) {
  SmallVector<int, 2> v;
  v.reserve(64);
  const int* data = v.data();
  for (int i = 0; i < 64; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), data);
}

TEST(SmallVector, StressAgainstStdVector) {
  SmallVector<int, 4> sv;
  std::vector<int> ref;
  for (int i = 0; i < 1000; ++i) {
    if (i % 7 == 3 && !ref.empty()) {
      sv.pop_back();
      ref.pop_back();
    } else {
      sv.push_back(i * 13);
      ref.push_back(i * 13);
    }
  }
  ASSERT_EQ(sv.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(sv[i], ref[i]);
}

}  // namespace
}  // namespace tdt
