#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tdt {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, NextBelowInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro, NextBelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) over 10k draws should be close to 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, RoughlyUniformBuckets) {
  Xoshiro256 rng(2024);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 100);
    EXPECT_LT(b, n / 10 + n / 100);
  }
}

}  // namespace
}  // namespace tdt
