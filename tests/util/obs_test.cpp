// Observability registry: counters/gauges/histograms, the tdt-metrics/1
// JSON schema round-trip, the Chrome trace_event export, and the fold
// helpers' agreement with the component statistics they summarize.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "tools/obs_support.hpp"
#include "util/obs.hpp"

namespace tdt::obs {
namespace {

// ---- minimal JSON parser (validation only) ---------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) {
      ADD_FAILURE() << "missing key '" << key << "'";
      static const JsonValue null_value;
      return null_value;
    }
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return object.contains(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage after JSON value";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(text_[pos_]) != 0) ++pos_;
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c) {
    skip_ws();
    ASSERT_LT(pos_, text_.size()) << "unexpected end of JSON";
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue value() {
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() != '}') {
          while (true) {
            JsonValue key = value();
            EXPECT_EQ(key.kind, JsonValue::Kind::String);
            expect(':');
            v.object[key.str] = value();
            if (peek() != ',') break;
            expect(',');
          }
        }
        expect('}');
        return v;
      }
      case '[': {
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() != ']') {
          while (true) {
            v.array.push_back(value());
            if (peek() != ',') break;
            expect(',');
          }
        }
        expect(']');
        return v;
      }
      case '"': {
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
          v.str += text_[pos_++];
        }
        expect('"');
        return v;
      }
      case 't': pos_ += 4; v.kind = JsonValue::Kind::Bool; v.boolean = true; return v;
      case 'f': pos_ += 5; v.kind = JsonValue::Kind::Bool; return v;
      case 'n': pos_ += 4; return v;
      default: {
        v.kind = JsonValue::Kind::Number;
        skip_ws();
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(text_[end]) != 0 || text_[end] == '-' ||
                text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E')) {
          ++end;
        }
        EXPECT_GT(end, pos_) << "bad number at offset " << pos_;
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

// ---- metric primitives ----------------------------------------------

TEST(ObsCounter, FoldsConcurrentStripes) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), 80000u);
}

TEST(ObsHistogram, Log2Buckets) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(1023), 10u);
  EXPECT_EQ(histogram_bucket(1024), 11u);
  EXPECT_EQ(histogram_bucket_le(0), 1u);
  EXPECT_EQ(histogram_bucket_le(1), 2u);
  EXPECT_EQ(histogram_bucket_le(10), 1024u);

  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(300);
  const HistogramData snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 310u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 300u);
  EXPECT_EQ(snap.buckets[histogram_bucket(5)], 2u);
}

TEST(ObsHistogram, MergesPrivateShard) {
  HistogramData shard;
  shard.record(7);
  shard.record(9000);
  Histogram h;
  h.record(1);
  h.merge(shard);
  const HistogramData snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 9008u);
  EXPECT_EQ(snap.max, 9000u);
}

// ---- JSON round-trip -------------------------------------------------

TEST(ObsRegistry, MetricsJsonSchemaRoundTrip) {
  Registry registry("testtool");
  registry.counter("read.records").add(516);
  registry.counter("sim.records_simulated").add(516);
  registry.gauge("pipeline.jobs").set(4);
  registry.histogram("latency").record(42);
  registry.add_phase("stream", 0.25);
  registry.add_phase("stream", 0.25);

  const JsonValue root = parse_json(registry.metrics_json());
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  EXPECT_EQ(root.at("schema").str, "tdt-metrics/1");
  EXPECT_EQ(root.at("tool").str, "testtool");
  ASSERT_TRUE(root.has("phases"));
  ASSERT_TRUE(root.has("counters"));
  ASSERT_TRUE(root.has("gauges"));
  ASSERT_TRUE(root.has("histograms"));

  // Counter values survive the round trip exactly.
  EXPECT_EQ(root.at("counters").at("read.records").number, 516);
  EXPECT_EQ(root.at("counters").at("sim.records_simulated").number, 516);
  EXPECT_EQ(root.at("gauges").at("pipeline.jobs").number, 4);

  const JsonValue& phases = root.at("phases");
  ASSERT_EQ(phases.kind, JsonValue::Kind::Array);
  ASSERT_EQ(phases.array.size(), 1u);
  EXPECT_EQ(phases.array[0].at("name").str, "stream");
  EXPECT_EQ(phases.array[0].at("count").number, 2);
  EXPECT_DOUBLE_EQ(phases.array[0].at("seconds").number, 0.5);

  const JsonValue& hist = root.at("histograms").at("latency");
  EXPECT_EQ(hist.at("count").number, 1);
  EXPECT_EQ(hist.at("sum").number, 42);
  ASSERT_EQ(hist.at("buckets").kind, JsonValue::Kind::Array);
  double bucket_total = 0;
  for (const JsonValue& b : hist.at("buckets").array) {
    ASSERT_TRUE(b.has("le"));
    bucket_total += b.at("count").number;
  }
  EXPECT_EQ(bucket_total, 1);
}

TEST(ObsRegistry, SpansJsonIsChromeTraceEvent) {
  Registry registry("testtool");
  const auto t0 = Registry::Clock::now();
  registry.add_span("stream", t0, t0 + std::chrono::milliseconds(3), 0);
  registry.add_span("worker 0", t0, t0 + std::chrono::milliseconds(2), 1);

  const JsonValue root = parse_json(registry.spans_json());
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::Array);
  std::size_t complete_events = 0;
  for (const JsonValue& e : events.array) {
    if (e.at("ph").str != "X") continue;  // metadata events
    ++complete_events;
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_GE(e.at("dur").number, 0);
  }
  EXPECT_EQ(complete_events, 2u);
}

TEST(ObsPhaseTimer, NullRegistryIsNoop) {
  PhaseTimer timer(nullptr, "anything");
  timer.stop();
  timer.stop();  // idempotent
}

TEST(ObsPhaseTimer, AccumulatesIntoRegistry) {
  Registry registry("t");
  { PhaseTimer timer(&registry, "phase"); }
  { PhaseTimer timer(&registry, "phase"); }
  const JsonValue root = parse_json(registry.metrics_json());
  ASSERT_EQ(root.at("phases").array.size(), 1u);
  EXPECT_EQ(root.at("phases").array[0].at("count").number, 2);
}

TEST(ObsHeartbeat, FinalLineReportsTotal) {
  std::ostringstream out;
  Heartbeat heartbeat("tool", out, /*interval_seconds=*/1e9);
  heartbeat.tick(100);
  heartbeat.tick(416);
  heartbeat.finish();
  EXPECT_EQ(heartbeat.records(), 516u);
  const std::string line = out.str();
  EXPECT_NE(line.find("tool: 516 records"), std::string::npos) << line;
  EXPECT_NE(line.find(" done"), std::string::npos) << line;
}

// ---- fold helpers agree with the component stats ---------------------

TEST(ObsFold, HierarchyCountersMatchLevelStats) {
  cache::CacheConfig config;
  config.size = 1024;
  config.block_size = 32;
  config.assoc = 2;
  cache::CacheHierarchy hierarchy(config);
  cache::TraceCacheSim sim(hierarchy);
  std::vector<trace::TraceRecord> records;
  for (std::uint64_t i = 0; i < 500; ++i) {
    trace::TraceRecord rec;
    rec.address = (i * 40) % 4096;
    rec.size = 4;
    rec.kind = i % 3 == 0 ? trace::AccessKind::Store : trace::AccessKind::Load;
    records.push_back(rec);
  }
  sim.simulate(records);

  Registry registry("t");
  tools::fold_hierarchy(&registry, hierarchy);
  registry.counter("sim.records_simulated").add(sim.records_simulated());

  const cache::LevelStats& s = hierarchy.l1().stats();
  const JsonValue root = parse_json(registry.metrics_json());
  const JsonValue& counters = root.at("counters");
  EXPECT_EQ(counters.at("cache.L1.read_hits").number,
            static_cast<double>(s.read_hits));
  EXPECT_EQ(counters.at("cache.L1.read_misses").number,
            static_cast<double>(s.read_misses));
  EXPECT_EQ(counters.at("cache.L1.write_hits").number,
            static_cast<double>(s.write_hits));
  EXPECT_EQ(counters.at("cache.L1.write_misses").number,
            static_cast<double>(s.write_misses));
  EXPECT_EQ(counters.at("cache.L1.evictions").number,
            static_cast<double>(s.evictions));
  // The simulated-record counter equals the fetch total the text report
  // prints (every non-instruction record is one simulated access).
  EXPECT_EQ(counters.at("sim.records_simulated").number, 500);
  // Per-set histogram: one sample per set, total == accesses.
  const JsonValue& sets = root.at("histograms").at("cache.L1.set_accesses");
  EXPECT_EQ(sets.at("count").number,
            static_cast<double>(config.num_sets()));
  EXPECT_EQ(sets.at("sum").number, static_cast<double>(s.accesses()));
}

}  // namespace
}  // namespace tdt::obs
