#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace tdt {
namespace {

TEST(Trim, RemovesBothSides) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\r\n "), "");
}

TEST(Trim, LeftAndRightIndependent) {
  EXPECT_EQ(trim_left("  x "), "x ");
  EXPECT_EQ(trim_right("  x "), "  x");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWhenNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparatorYieldsEmptyTail) {
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWs, DropsRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWs, EmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("START PID", "START"));
  EXPECT_FALSE(starts_with("ST", "START"));
  EXPECT_TRUE(ends_with("trace.tdtb", ".tdtb"));
  EXPECT_FALSE(ends_with("tdtb", ".tdtb2"));
}

TEST(ParseInt, AcceptsSignedDecimal) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, RejectsJunk) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("  4").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(ParseUint, DecimalAndHex) {
  EXPECT_EQ(parse_uint("123"), 123u);
  EXPECT_EQ(parse_uint("0x10"), 16u);
  EXPECT_EQ(parse_uint("0XfF"), 255u);
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("0x").has_value());
}

TEST(ParseHex, BareDigits) {
  EXPECT_EQ(parse_hex("7ff000108"), 0x7ff000108ull);
  EXPECT_EQ(parse_hex("0"), 0u);
  EXPECT_FALSE(parse_hex("xyz").has_value());
  EXPECT_FALSE(parse_hex("").has_value());
}

TEST(ToHex, PadsToWidth) {
  EXPECT_EQ(to_hex(0x7ff000108, 9), "7ff000108");
  EXPECT_EQ(to_hex(0x601040, 9), "000601040");
  EXPECT_EQ(to_hex(0, 0), "0");
  EXPECT_EQ(to_hex(15, 4), "000f");
}

TEST(ToHex, RoundTripsThroughParseHex) {
  for (std::uint64_t v : {0ull, 1ull, 0x7ff000108ull, ~0ull}) {
    EXPECT_EQ(parse_hex(to_hex(v, 9)), v);
  }
}

TEST(Identifiers, Classification) {
  EXPECT_TRUE(is_identifier("_zzq_result"));
  EXPECT_TRUE(is_identifier("lSoA"));
  EXPECT_FALSE(is_identifier("1I"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a.b"));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"solo"}, "."), "solo");
}

TEST(FormatBytes, PicksLargestExactUnit) {
  EXPECT_EQ(format_bytes(32), "32 B");
  EXPECT_EQ(format_bytes(32 * 1024), "32 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3 MiB");
  EXPECT_EQ(format_bytes(1536), "1536 B");  // not an exact KiB multiple
}

}  // namespace
}  // namespace tdt
