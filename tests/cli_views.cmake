# View-DAG CLI contract: one dinerosim process whose single ingest
# feeds three consumers at once — the --sweep simulation (stdout), the
# affinity profiler (--affinity-report), and the saved transformed trace
# (--xform-out) — must produce artifacts byte-identical to three
# independent tool runs that each re-read the trace for one consumer.
# The matrix crosses --jobs {1,4} with text and v3-compressed inputs.
file(MAKE_DIRECTORY ${WORKDIR})

set(SWEEP_SPEC "assoc=1;assoc=2;size=8k,assoc=4")

function(check_rc what expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${what}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

function(check_same what file_a file_b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${file_a} ${file_b}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: output differs (${file_a} vs ${file_b})")
  endif()
endfunction()

# -- Fixtures: the same kernel as Gleipnir text and as a framed v3 ------------
# container (zstd when loadable, codec none otherwise — the DAG path is
# identical either way, cli_compress owns the codec matrix).
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 4096 --out ${WORKDIR}/trace.out
  RESULT_VARIABLE rc)
check_rc("gtracer text" 0 "${rc}")

set(traces ${WORKDIR}/trace.out)
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 4096 --binary --compress zstd
          --out ${WORKDIR}/trace.tdtb
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  if(rc EQUAL 2 AND err MATCHES "unavailable")
    message(STATUS "zstd not loadable here; using codec none for the v3 row")
    execute_process(
      COMMAND ${GTRACER} --kernel t1_soa --len 4096 --binary --compress none
              --out ${WORKDIR}/trace.tdtb
      RESULT_VARIABLE rc)
    check_rc("gtracer v3 none" 0 "${rc}")
  else()
    message(FATAL_ERROR "gtracer v3 zstd: exit ${rc}: ${err}")
  endif()
endif()
list(APPEND traces ${WORKDIR}/trace.tdtb)

foreach(trace ${traces})
  get_filename_component(ext ${trace} LAST_EXT)
  string(REPLACE "." "" tag "${ext}")

  # -- The three independent single-consumer runs (the baseline) -------------
  # A: transform + sweep, stdout is the sweep report.
  execute_process(
    COMMAND ${DINEROSIM} --trace ${trace} --rules ${RULES}
            --xform-out ${WORKDIR}/scratch_${tag}.out --sweep ${SWEEP_SPEC}
    OUTPUT_FILE ${WORKDIR}/indep_sweep_${tag}.stdout RESULT_VARIABLE rc)
  check_rc("independent sweep (${tag})" 0 "${rc}")

  # B: transform + save, the transformed trace is the artifact.
  execute_process(
    COMMAND ${DINEROSIM} --trace ${trace} --rules ${RULES}
            --xform-out ${WORKDIR}/indep_xform_${tag}.out --size 4096
    OUTPUT_QUIET RESULT_VARIABLE rc)
  check_rc("independent transform (${tag})" 0 "${rc}")

  # C: affinity profile of the raw (pre-transform) records.
  execute_process(
    COMMAND ${DINEROSIM} --trace ${trace} --size 4096
            --affinity-report ${WORKDIR}/indep_affinity_${tag}.txt
    OUTPUT_QUIET RESULT_VARIABLE rc)
  check_rc("independent affinity (${tag})" 0 "${rc}")

  # -- One process, one ingest, three consumers, across --jobs ---------------
  foreach(jobs 1 4)
    set(prefix ${WORKDIR}/combined_${tag}_j${jobs})
    execute_process(
      COMMAND ${DINEROSIM} --trace ${trace} --rules ${RULES}
              --xform-out ${prefix}.out --sweep ${SWEEP_SPEC}
              --affinity-report ${prefix}.aff --jobs ${jobs}
      OUTPUT_FILE ${prefix}.stdout RESULT_VARIABLE rc)
    check_rc("combined run (${tag}, jobs=${jobs})" 0 "${rc}")

    check_same("sweep report (${tag}, jobs=${jobs})"
               ${WORKDIR}/indep_sweep_${tag}.stdout ${prefix}.stdout)
    check_same("transformed trace (${tag}, jobs=${jobs})"
               ${WORKDIR}/indep_xform_${tag}.out ${prefix}.out)
    check_same("affinity report (${tag}, jobs=${jobs})"
               ${WORKDIR}/indep_affinity_${tag}.txt ${prefix}.aff)
  endforeach()
endforeach()

message(STATUS "cli_views: 3-consumer DAG byte-identical to independent runs")
