#include "analysis/affinity.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"

namespace tdt::analysis {
namespace {

using trace::TraceContext;

/// Streams pre-parsed records through a collector and finalizes it.
void run(AffinityCollector& collector,
         const std::vector<trace::TraceRecord>& records) {
  for (const trace::TraceRecord& r : records) collector.on_record(r);
  collector.on_end();
}

TEST(Affinity, HeatAndReadWriteMix) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS s[0].x\n"
      "S 000000004 4 main GS s[0].y\n"
      "M 000000000 4 main GS s[0].x\n"
      "L 000000010 4 main GS s[1].x\n");
  AffinityCollector collector(ctx);
  run(collector, records);

  ASSERT_EQ(collector.structs().size(), 1u);
  const StructProfile* s = collector.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->accesses, 4u);
  ASSERT_EQ(s->fields.size(), 2u);
  // Layout order: x at offset 0, y after it.
  const FieldProfile& x = s->fields[0];
  const FieldProfile& y = s->fields[1];
  EXPECT_EQ(x.pattern, "[*].x");
  EXPECT_EQ(x.accesses, 3u);
  EXPECT_EQ(x.reads, 3u);   // two Loads + the Modify's read half
  EXPECT_EQ(x.writes, 1u);  // the Modify's write half
  EXPECT_DOUBLE_EQ(x.heat, 0.75);
  EXPECT_EQ(y.accesses, 1u);
  EXPECT_EQ(y.writes, 1u);
  EXPECT_EQ(x.leaf_size, 4u);
  EXPECT_EQ(s->extent, 2u);  // max element index 1
}

TEST(Affinity, WindowCoAccessIsBoundedAndDiscriminates) {
  TraceContext ctx;
  // x and y interleaved tightly; z only long after both left the window.
  std::string text;
  for (int i = 0; i < 32; ++i) {
    text += "L 000000000 4 main GS s[0].x\n";
    text += "L 000000008 4 main GS s[0].y\n";
  }
  for (int i = 0; i < 64; ++i) {
    text += "L 000000010 4 main GS s[0].z\n";
  }
  const auto records = trace::read_trace_string(ctx, text);
  AffinityOptions options;
  options.window = 4;
  AffinityCollector collector(ctx, options);
  run(collector, records);

  const StructProfile* s = collector.find("s");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->fields.size(), 3u);
  // Field rows are in layout (offset) order: x, y, z.
  const double xy = s->affinity_norm(0, 1);
  const double xz = s->affinity_norm(0, 2);
  const double yz = s->affinity_norm(1, 2);
  EXPECT_GT(xy, 0.9);
  EXPECT_LE(xy, 1.0);  // per-record dedupe keeps the fraction bounded
  EXPECT_LT(xz, 0.1);
  // y is the last record before the z run: only the window boundary pairs.
  EXPECT_LT(yz, 0.1);
}

TEST(Affinity, StrideHistogramAndDominantStride) {
  TraceContext ctx;
  std::string text;
  for (int i = 0; i < 16; ++i) {
    char line[64];
    std::snprintf(line, sizeof line, "L %09x 4 main GS a[%d]\n", i * 16,
                  i * 4);
    text += line;
  }
  const auto records = trace::read_trace_string(ctx, text);
  AffinityCollector collector(ctx);
  run(collector, records);

  const StructProfile* a = collector.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->shape, StructShape::FlatArray);
  ASSERT_EQ(a->fields.size(), 1u);
  EXPECT_EQ(a->fields[0].dominant_stride(), 4);
  EXPECT_EQ(a->extent, 61u);  // max index 15*4, observed extent
}

TEST(Affinity, ShapeInference) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS soa.x[0]\n"
      "L 000000100 4 main GS soa.y[0]\n"
      "L 000001000 4 main GS aos[0].x\n"
      "L 000001004 4 main GS aos[0].y\n"
      "L 000002000 4 main GS mixed[0].x\n"
      "L 000002100 4 main GS mixed.y[0]\n");
  AffinityCollector collector(ctx);
  run(collector, records);

  ASSERT_NE(collector.find("soa"), nullptr);
  EXPECT_EQ(collector.find("soa")->shape, StructShape::Soa);
  ASSERT_NE(collector.find("aos"), nullptr);
  EXPECT_EQ(collector.find("aos")->shape, StructShape::Aos);
  ASSERT_NE(collector.find("mixed"), nullptr);
  EXPECT_EQ(collector.find("mixed")->shape, StructShape::Unknown);
}

TEST(Affinity, NestedChainsAndMinorIndices) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS s[0].sub.y\n"
      "L 000000010 4 main GS s[1].sub.y\n"
      "L 000000020 4 main GS s[0].arr[3]\n");
  AffinityCollector collector(ctx);
  run(collector, records);

  const StructProfile* s = collector.find("s");
  ASSERT_NE(s, nullptr);
  const FieldProfile& nested = s->fields[0];
  EXPECT_EQ(nested.pattern, "[*].sub.y");
  ASSERT_EQ(nested.chain.size(), 2u);
  EXPECT_EQ(nested.chain[0], "sub");
  EXPECT_EQ(nested.chain[1], "y");
  EXPECT_EQ(nested.wildcards, 1u);
  const FieldProfile& minor = s->fields[1];
  EXPECT_EQ(minor.pattern, "[*].arr[*]");
  EXPECT_EQ(minor.wildcards, 2u);
  EXPECT_EQ(minor.max_minor_index, 3u);
}

TEST(Affinity, NonStructureScopesIgnored) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GV glScalar\n"
      "L 000000000 4 main GS s[0].x\n");
  AffinityCollector collector(ctx);
  run(collector, records);
  EXPECT_EQ(collector.records_seen(), 1u);
}

TEST(Affinity, ReportListsFieldsAndAffinity) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS s[0].x\n"
      "L 000000004 4 main GS s[0].y\n");
  AffinityCollector collector(ctx);
  run(collector, records);
  const std::string report = collector.report();
  EXPECT_NE(report.find("[*].x"), std::string::npos);
  EXPECT_NE(report.find("co-access"), std::string::npos);
  EXPECT_NE(report.find("aos"), std::string::npos);
}

}  // namespace
}  // namespace tdt::analysis
