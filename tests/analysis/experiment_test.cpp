#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "core/rule_parser.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt::analysis {
namespace {

TEST(Experiment, TraceOnlyRun) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto prog = tracer::make_t1_soa(types, 16);
  const ExperimentResult result =
      run_experiment(types, ctx, prog, cache::paper_direct_mapped());
  EXPECT_FALSE(result.transformed_ran);
  EXPECT_FALSE(result.original.empty());
  EXPECT_EQ(result.original.size(), result.transformed.size());
  EXPECT_GT(result.before.l1.accesses(), 0u);
  EXPECT_EQ(result.before.num_sets, 1024u);
  EXPECT_FALSE(result.before.variable_order.empty());
}

TEST(Experiment, SimulateTraceMatchesDirectSimulation) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records =
      tracer::run_program(types, ctx, tracer::make_t1_soa(types, 16));
  const SimulationResult r =
      simulate_trace(ctx, records, cache::paper_direct_mapped());
  EXPECT_EQ(r.l1.accesses(),
            records.size());  // no block-crossing accesses in this kernel
  // Per-set map contains the kernel's structure.
  EXPECT_TRUE(r.per_set.contains("lSoA"));
  EXPECT_TRUE(r.per_set.contains("lI"));
}

TEST(Experiment, TransformRunProducesDiffAndStats) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto prog = tracer::make_t1_soa(types, 16);
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA {
  int mX[16];
  double mY[16];
};
out:
struct lAoS {
  int mX;
  double mY;
}[16];
)");
  const ExperimentResult result = run_experiment(
      types, ctx, prog, cache::paper_direct_mapped(), &rules);
  EXPECT_TRUE(result.transformed_ran);
  EXPECT_EQ(result.transform_stats.rewritten, 32u);
  EXPECT_EQ(result.diff.modified, 32u);
  EXPECT_EQ(result.diff.inserted, 0u);
  EXPECT_EQ(result.diff.deleted, 0u);
  // The transformed simulation sees the new variable.
  EXPECT_TRUE(result.after.per_set.contains("lAoS"));
  EXPECT_FALSE(result.after.per_set.contains("lSoA"));
  // Access counts identical (pure layout rule inserts nothing).
  EXPECT_EQ(result.before.l1.accesses(), result.after.l1.accesses());
}

TEST(Experiment, T1PaddingGrowsAoSFootprint) {
  // A real T1 side effect the per-set figures expose: interleaving pads
  // each {int,double} element to 16 bytes, growing the walked footprint
  // from 12 KiB (384 lines) to 16 KiB (512 lines).
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto prog = tracer::make_t1_soa(types, 1024);
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct lSoA {
  int mX[1024];
  double mY[1024];
};
out:
struct lAoS {
  int mX;
  double mY;
}[1024];
)");
  const ExperimentResult result = run_experiment(
      types, ctx, prog, cache::paper_direct_mapped(), &rules);
  const auto& soa = result.before.per_set.at("lSoA");
  const auto& aos = result.after.per_set.at("lAoS");
  std::uint64_t soa_misses = 0, aos_misses = 0, soa_sets = 0, aos_sets = 0;
  for (const SetCell& cell : soa) {
    soa_misses += cell.misses;
    soa_sets += (cell.hits + cell.misses) != 0;
  }
  for (const SetCell& cell : aos) {
    aos_misses += cell.misses;
    aos_sets += (cell.hits + cell.misses) != 0;
  }
  // SoA packs 12 KiB (384 lines); the AoS element pads int+double to
  // 16 bytes, growing the footprint to 16 KiB (512 lines). The miss total
  // reflects that padding cost — a real effect the per-set figures show.
  EXPECT_EQ(soa_misses, 384u);
  EXPECT_GE(aos_misses, 512u);
  EXPECT_LE(aos_misses, 520u);  // + a few conflicts with stack scalars
  EXPECT_GT(aos_sets, soa_sets);
}

}  // namespace
}  // namespace tdt::analysis
