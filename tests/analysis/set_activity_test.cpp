#include "analysis/set_activity.hpp"

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "trace/reader.hpp"

namespace tdt::analysis {
namespace {

using cache::CacheConfig;
using cache::CacheHierarchy;
using cache::TraceCacheSim;
using trace::TraceContext;

CacheConfig tiny() {
  CacheConfig c;
  c.size = 256;  // 8 sets of 32 B, direct mapped
  c.block_size = 32;
  c.assoc = 1;
  return c;
}

TEST(SetActivity, AttributesAccessesToVariablesAndSets) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"   // set 0 miss
      "L 000000000 4 main GS a[0]\n"   // set 0 hit
      "L 000000020 4 main GS b[0]\n"); // set 1 miss
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  SetActivityCollector collector(ctx, 8);
  sim.add_observer(&collector);
  sim.simulate(records);

  ASSERT_EQ(collector.variables().size(), 2u);
  EXPECT_EQ(collector.variables()[0], "a");
  EXPECT_EQ(collector.series("a")[0].misses, 1u);
  EXPECT_EQ(collector.series("a")[0].hits, 1u);
  EXPECT_EQ(collector.series("b")[1].misses, 1u);
  EXPECT_EQ(collector.series("b")[0].hits, 0u);
}

TEST(SetActivity, AnonymousRecordsBucketed) {
  TraceContext ctx;
  const auto records =
      trace::read_trace_string(ctx, "L 000000000 4 main\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  SetActivityCollector collector(ctx, 8);
  sim.add_observer(&collector);
  sim.simulate(records);
  EXPECT_EQ(collector.series("<anon>")[0].misses, 1u);
}

TEST(SetActivity, UnknownVariableYieldsEmptySeries) {
  TraceContext ctx;
  SetActivityCollector collector(ctx, 4);
  const auto& series = collector.series("ghost");
  ASSERT_EQ(series.size(), 4u);
  for (const SetCell& c : series) {
    EXPECT_EQ(c.hits + c.misses, 0u);
  }
}

TEST(SetActivity, TotalsSumOverVariables) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"
      "L 000000020 4 main GS b[0]\n"
      "L 000000020 4 main GS b[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  SetActivityCollector collector(ctx, 8);
  sim.add_observer(&collector);
  sim.simulate(records);
  const auto totals = collector.totals();
  std::uint64_t all = 0;
  for (const SetCell& c : totals) all += c.hits + c.misses;
  EXPECT_EQ(all, 3u);
  // Totals per set match the cache's own per-set counters.
  const auto& set_stats = h.l1().set_stats();
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(totals[s].hits, set_stats[s].hits);
    EXPECT_EQ(totals[s].misses, set_stats[s].misses);
  }
}

TEST(SetActivity, ActiveSetsListsTouchedOnly) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"
      "L 0000000e0 4 main GS a[7]\n");  // set 7
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  SetActivityCollector collector(ctx, 8);
  sim.add_observer(&collector);
  sim.simulate(records);
  EXPECT_EQ(collector.active_sets("a"),
            (std::vector<std::uint64_t>{0, 7}));
  EXPECT_TRUE(collector.active_sets("ghost").empty());
}

TEST(SetActivity, VariablesOrderedByFirstTouch) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS zebra[0]\n"
      "L 000000020 4 main GS apple[0]\n"
      "L 000000000 4 main GS zebra[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  SetActivityCollector collector(ctx, 8);
  sim.add_observer(&collector);
  sim.simulate(records);
  EXPECT_EQ(collector.variables(),
            (std::vector<std::string>{"zebra", "apple"}));
}

}  // namespace
}  // namespace tdt::analysis
