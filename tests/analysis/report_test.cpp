#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cache/hierarchy.hpp"
#include "trace/reader.hpp"

namespace tdt::analysis {
namespace {

using cache::CacheConfig;
using cache::CacheHierarchy;
using cache::TraceCacheSim;
using trace::TraceContext;

struct Collected {
  TraceContext ctx;
  std::unique_ptr<SetActivityCollector> collector;

  Collected() {
    const auto records = trace::read_trace_string(
        ctx,
        "L 000000000 4 main GS a[0]\n"
        "L 000000000 4 main GS a[0]\n"
        "L 000000020 4 main GS b[0]\n"
        "L 0000000e0 4 main GS b[7]\n");
    CacheConfig cfg;
    cfg.size = 256;
    cfg.block_size = 32;
    cfg.assoc = 1;
    CacheHierarchy h(cfg);
    TraceCacheSim sim(h);
    collector = std::make_unique<SetActivityCollector>(ctx, 8);
    sim.add_observer(collector.get());
    sim.simulate(records);
  }
};

TEST(Report, SetTableContainsSeriesRows) {
  Collected c;
  const std::string table = set_table(*c.collector, {"a", "b"});
  EXPECT_NE(table.find("a:hits"), std::string::npos);
  EXPECT_NE(table.find("b:misses"), std::string::npos);
  // Set 0 row: a has 1 hit 1 miss.
  EXPECT_NE(table.find("0"), std::string::npos);
}

TEST(Report, SetTableSkipsEmptySetsByDefault) {
  Collected c;
  const std::string table = set_table(*c.collector, {"a", "b"});
  // Sets 2..6 have no activity; rows: header + rule + sets {0,1,7}.
  int newlines = 0;
  for (char ch : table) newlines += ch == '\n';
  EXPECT_EQ(newlines, 2 + 3);
  const std::string full =
      set_table(*c.collector, {"a", "b"}, /*skip_empty_sets=*/false);
  int full_newlines = 0;
  for (char ch : full) full_newlines += ch == '\n';
  EXPECT_EQ(full_newlines, 2 + 8);
}

TEST(Report, CsvHasHeaderAndAllSets) {
  Collected c;
  const std::string csv = set_csv(*c.collector, {"a"});
  EXPECT_EQ(csv.substr(0, 22), "set,a_hits,a_misses\n0,");
  int lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 9);  // header + 8 sets
}

TEST(Report, GnuplotFilesWritten) {
  Collected c;
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "tdt_report_test").string();
  write_gnuplot(*c.collector, {"a", "b"}, prefix, "test title");
  std::ifstream dat(prefix + ".dat");
  ASSERT_TRUE(dat.good());
  std::ifstream gp(prefix + ".gp");
  ASSERT_TRUE(gp.good());
  std::string gp_text((std::istreambuf_iterator<char>(gp)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(gp_text.find("logscale"), std::string::npos);
  EXPECT_NE(gp_text.find("multiplot"), std::string::npos);
  EXPECT_NE(gp_text.find("Cache Sets"), std::string::npos);
  std::remove((prefix + ".dat").c_str());
  std::remove((prefix + ".gp").c_str());
}

TEST(Report, AsciiChartShowsHitsAndMisses) {
  Collected c;
  const std::string chart = ascii_chart(*c.collector, "a");
  EXPECT_NE(chart.find("hits per set"), std::string::npos);
  EXPECT_NE(chart.find("misses per set"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(Report, AsciiChartEmptyVariable) {
  Collected c;
  const std::string chart = ascii_chart(*c.collector, "ghost");
  EXPECT_NE(chart.find("max 0"), std::string::npos);
}

}  // namespace
}  // namespace tdt::analysis
