#include "analysis/autotune.hpp"

#include <gtest/gtest.h>

#include "analysis/affinity.hpp"
#include "core/rule_parser.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "tracer/parser.hpp"

namespace tdt::analysis {
namespace {

using trace::TraceContext;
using trace::TraceRecord;

std::string kernel_path(const std::string& name) {
  return std::string(TDT_KERNELS_DIR) + "/" + name;
}

/// Profiles a record stream and returns the finalized collector.
AffinityCollector profile(const TraceContext& ctx,
                          const std::vector<TraceRecord>& records) {
  AffinityCollector collector(ctx);
  for (const TraceRecord& r : records) collector.on_record(r);
  collector.on_end();
  return collector;
}

/// The paper's direct-mapped evaluation cache as a single sweep point.
std::vector<cache::SweepPoint> paper_point() {
  cache::CacheConfig l1;
  l1.size = 32768;
  l1.block_size = 32;
  l1.assoc = 1;
  return {cache::SweepPoint{{l1}}};
}

TEST(Autotune, OutlinesColdNestedMemberOfListing6Structure) {
  layout::TypeTable types;
  TraceContext ctx;
  const tracer::Program prog =
      tracer::parse_kernel_file(kernel_path("t2_cold.c"), types);
  const std::vector<TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const AffinityCollector collector = profile(ctx, records);

  const StructProfile* s1 = collector.find("lS1");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->shape, StructShape::Aos);

  const std::vector<Candidate> candidates =
      generate_candidates(collector.structs());
  ASSERT_EQ(candidates.size(), 1u);
  const Candidate& c = candidates[0];
  EXPECT_EQ(c.name, "t2:lS1:outline");
  EXPECT_EQ(c.kind, "T2");
  EXPECT_EQ(c.target, "lS1");
  // The cold nested member is outlined behind a pointer into a pool.
  EXPECT_NE(c.rules_text.find("+ mRarelyUsed:lS1_mRarelyUsed;"),
            std::string::npos);
  EXPECT_NE(c.rules_text.find("struct lS1_hot"), std::string::npos);

  // And the outlined layout must actually beat the baseline.
  Autotuner tuner(ctx);
  const AutotuneResult result =
      tuner.evaluate(records, candidates, paper_point());
  ASSERT_EQ(result.ranked.size(), 1u);
  const RankedCandidate* best = result.best();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->candidate.name, "t2:lS1:outline");
  EXPECT_LT(best->miss_delta, 0);
  EXPECT_LT(best->eval.misses, result.baseline.misses);
  EXPECT_GT(best->eval.inserted, 0u);  // pointer indirection is charged
}

TEST(Autotune, InterleavesCoAccessedStructureOfArrays) {
  layout::TypeTable types;
  TraceContext ctx;
  const tracer::Program prog = tracer::make_t1_soa(types, 4096);
  const std::vector<TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const AffinityCollector collector = profile(ctx, records);

  const StructProfile* soa = collector.find("lSoA");
  ASSERT_NE(soa, nullptr);
  EXPECT_EQ(soa->shape, StructShape::Soa);

  const std::vector<Candidate> candidates =
      generate_candidates(collector.structs());
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].name, "t1:lSoA:aos");
  EXPECT_EQ(candidates[0].kind, "T1");
}

TEST(Autotune, SerializedCandidateRoundTripsThroughTheParser) {
  layout::TypeTable types;
  TraceContext ctx;
  const tracer::Program prog =
      tracer::parse_kernel_file(kernel_path("t2_cold.c"), types);
  const std::vector<TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const AffinityCollector collector = profile(ctx, records);
  const std::vector<Candidate> candidates =
      generate_candidates(collector.structs());
  ASSERT_FALSE(candidates.empty());

  // parse -> write must be a fixed point: evaluation scores exactly the
  // file a user would feed back through `dinerosim --rules`.
  const core::RuleSet reparsed = core::parse_rules(candidates[0].rules_text);
  EXPECT_EQ(core::write_rules_string(reparsed), candidates[0].rules_text);
}

TEST(Autotune, EvaluationIsDeterministic) {
  layout::TypeTable types;
  TraceContext ctx;
  const tracer::Program prog =
      tracer::parse_kernel_file(kernel_path("t2_cold.c"), types);
  const std::vector<TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const AffinityCollector collector = profile(ctx, records);
  const std::vector<Candidate> candidates =
      generate_candidates(collector.structs());

  Autotuner tuner(ctx);
  const AutotuneResult a = tuner.evaluate(records, candidates, paper_point());
  const AutotuneResult b =
      tuner.evaluate(records, candidates, paper_point(), {}, {}, /*jobs=*/4);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  EXPECT_EQ(a.baseline.misses, b.baseline.misses);
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].candidate.name, b.ranked[i].candidate.name);
    EXPECT_EQ(a.ranked[i].eval.misses, b.ranked[i].eval.misses);
  }
}

TEST(Autotune, ColdFractionGateControlsT2) {
  layout::TypeTable types;
  TraceContext ctx;
  // The stock t2_inline kernel touches every field equally: nothing is
  // cold, so no outline candidate may be proposed.
  const tracer::Program prog = tracer::make_t2_inline(types, 256);
  const std::vector<TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const AffinityCollector collector = profile(ctx, records);
  for (const Candidate& c : generate_candidates(collector.structs())) {
    EXPECT_NE(c.kind, "T2") << c.name;
  }
}

TEST(Autotune, ReportsCarryBaselineAndRanking) {
  layout::TypeTable types;
  TraceContext ctx;
  const tracer::Program prog =
      tracer::parse_kernel_file(kernel_path("t2_cold.c"), types);
  const std::vector<TraceRecord> records =
      tracer::run_program(types, ctx, prog);
  const AffinityCollector collector = profile(ctx, records);
  Autotuner tuner(ctx);
  const AutotuneResult result = tuner.evaluate(
      records, generate_candidates(collector.structs()), paper_point());

  const std::string table = result.table();
  EXPECT_NE(table.find("(baseline)"), std::string::npos);
  EXPECT_NE(table.find("t2:lS1:outline"), std::string::npos);
  const std::string json = result.json();
  EXPECT_NE(json.find("\"schema\":\"tdt-autotune/1\""), std::string::npos);
  EXPECT_NE(json.find("\"miss_delta\":"), std::string::npos);
}

}  // namespace
}  // namespace tdt::analysis
