#include "analysis/var_stats.hpp"

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "trace/reader.hpp"

namespace tdt::analysis {
namespace {

using cache::CacheConfig;
using cache::CacheHierarchy;
using cache::TraceCacheSim;
using trace::TraceContext;

CacheConfig tiny() {
  CacheConfig c;
  c.size = 256;
  c.block_size = 32;
  c.assoc = 1;
  return c;
}

TEST(VarStats, PerVariableHitMiss) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"
      "L 000000000 4 main GS a[0]\n"
      "L 000000040 4 foo GS b[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  VarStatsCollector vars(ctx);
  sim.add_observer(&vars);
  sim.simulate(records);

  EXPECT_EQ(vars.by_variable().at("a").hits, 1u);
  EXPECT_EQ(vars.by_variable().at("a").misses, 1u);
  EXPECT_EQ(vars.by_variable().at("a").compulsory, 1u);
  EXPECT_EQ(vars.by_variable().at("b").misses, 1u);
  EXPECT_EQ(vars.by_function().at("main").accesses(), 2u);
  EXPECT_EQ(vars.by_function().at("foo").accesses(), 1u);
}

TEST(VarStats, MissRatioPerVariable) {
  HitMiss hm;
  hm.hits = 3;
  hm.misses = 1;
  EXPECT_DOUBLE_EQ(hm.miss_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(HitMiss{}.miss_ratio(), 0.0);
}

TEST(VarStats, ReportContainsTables) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx, "L 000000000 4 main GS myvar[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  VarStatsCollector vars(ctx);
  sim.add_observer(&vars);
  sim.simulate(records);
  const std::string report = vars.report();
  EXPECT_NE(report.find("myvar"), std::string::npos);
  EXPECT_NE(report.find("main"), std::string::npos);
  EXPECT_NE(report.find("compulsory"), std::string::npos);
}

TEST(Conflicts, EvictionPairsAttributed) {
  TraceContext ctx;
  // a and b alternate in the same set of a direct-mapped cache.
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"
      "L 000000100 4 main GS b[0]\n"  // evicts a
      "L 000000000 4 main GS a[0]\n"  // evicts b
      "L 000000100 4 main GS b[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  ConflictCollector conflicts(ctx);
  sim.add_observer(&conflicts);
  sim.simulate(records);
  EXPECT_EQ(conflicts.pairs().at({"b", "a"}), 2u);
  EXPECT_EQ(conflicts.pairs().at({"a", "b"}), 1u);
}

TEST(Conflicts, NoPairsWithoutEvictions) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"
      "L 000000020 4 main GS b[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  ConflictCollector conflicts(ctx);
  sim.add_observer(&conflicts);
  sim.simulate(records);
  EXPECT_TRUE(conflicts.pairs().empty());
}

TEST(Conflicts, ReportTopPairs) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000000000 4 main GS a[0]\n"
      "L 000000100 4 main GS b[0]\n"
      "L 000000000 4 main GS a[0]\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  ConflictCollector conflicts(ctx);
  sim.add_observer(&conflicts);
  sim.simulate(records);
  const std::string report = conflicts.report();
  EXPECT_NE(report.find("evictor"), std::string::npos);
  EXPECT_NE(report.find("a"), std::string::npos);
  EXPECT_NE(report.find("b"), std::string::npos);
}

}  // namespace
}  // namespace tdt::analysis
