#include "analysis/advisor.hpp"

#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "trace/reader.hpp"
#include "util/string_util.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace tdt::analysis {
namespace {

struct Collected {
  trace::TraceContext ctx;
  std::unique_ptr<VarStatsCollector> vars;
  std::unique_ptr<ConflictCollector> conflicts;

  void run(const std::vector<trace::TraceRecord>& records,
           cache::CacheConfig cfg) {
    cache::CacheHierarchy h(cfg);
    cache::TraceCacheSim sim(h);
    vars = std::make_unique<VarStatsCollector>(ctx);
    conflicts = std::make_unique<ConflictCollector>(ctx);
    sim.add_observer(vars.get());
    sim.add_observer(conflicts.get());
    sim.simulate(records);
  }
};

cache::CacheConfig tiny_dm(std::uint64_t size) {
  cache::CacheConfig c;
  c.size = size;
  c.block_size = 32;
  c.assoc = 1;
  return c;
}

TEST(Advisor, HealthyTraceYieldsNoAction) {
  Collected c;
  // A small sequential walk that fits the cache: nothing to improve.
  std::string text;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 32; ++i) {
      text += "L " + to_hex(0x1000 + i * 4ull, 9) + " 4 main GS a[" +
              std::to_string(i) + "]\n";
    }
  }
  c.run(trace::read_trace_string(c.ctx, text), tiny_dm(4096));
  const auto suggestions = advise(*c.vars, *c.conflicts);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].kind, SuggestionKind::NoAction);
}

TEST(Advisor, PingPongConflictSuggestsPadding) {
  Collected c;
  // Two arrays one cache-size apart: pure set conflicts.
  std::string text;
  for (int rep = 0; rep < 64; ++rep) {
    text += "L 000001000 4 main GS a[0]\n";
    text += "L 000002000 4 main GS b[0]\n";  // 4096 = cache size apart
  }
  c.run(trace::read_trace_string(c.ctx, text), tiny_dm(4096));
  const auto suggestions = advise(*c.vars, *c.conflicts);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].kind, SuggestionKind::PadOrDisplace);
  // Both variables named.
  ASSERT_EQ(suggestions[0].variables.size(), 2u);
  EXPECT_NE(suggestions[0].rationale.find("a"), std::string::npos);
  EXPECT_NE(suggestions[0].rationale.find("b"), std::string::npos);
}

TEST(Advisor, CapacityBoundAggregateSuggestsSplit) {
  // Stream a structure 8x larger than the cache, repeatedly.
  Collected c;
  std::string text;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 1024; ++i) {
      text += "L " + to_hex(0x10000 + i * 32ull, 9) + " 4 main GS big[" +
              std::to_string(i) + "]\n";
    }
  }
  c.run(trace::read_trace_string(c.ctx, text), tiny_dm(4096));
  const auto suggestions = advise(*c.vars, *c.conflicts);
  bool saw_split = false;
  for (const Suggestion& s : suggestions) {
    saw_split |= s.kind == SuggestionKind::SplitHotCold &&
                 s.variables == std::vector<std::string>{"big"};
  }
  EXPECT_TRUE(saw_split);
}

TEST(Advisor, MatmulIjkFlagsConflictingMatrices) {
  layout::TypeTable types;
  Collected c;
  const auto records =
      tracer::run_program(types, c.ctx, tracer::make_matmul(types, 32, false));
  cache::CacheConfig cfg;
  cfg.size = 4096;
  cfg.block_size = 64;
  cfg.assoc = 1;
  c.run(records, cfg);
  const auto suggestions = advise(*c.vars, *c.conflicts);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_NE(suggestions[0].kind, SuggestionKind::NoAction);
}

TEST(Advisor, RenderListsEverySuggestion) {
  std::vector<Suggestion> suggestions;
  Suggestion s;
  s.kind = SuggestionKind::PadOrDisplace;
  s.rationale = "x fights y";
  suggestions.push_back(s);
  s.kind = SuggestionKind::SplitHotCold;
  s.rationale = "z streams";
  suggestions.push_back(s);
  const std::string text = render(suggestions);
  EXPECT_NE(text.find("pad-or-displace"), std::string::npos);
  EXPECT_NE(text.find("split-hot-cold"), std::string::npos);
  EXPECT_NE(text.find("x fights y"), std::string::npos);
}

TEST(Advisor, MaxSuggestionsRespected) {
  Collected c;
  std::string text;
  // Many pairwise-conflicting arrays.
  for (int rep = 0; rep < 64; ++rep) {
    for (int v = 0; v < 6; ++v) {
      text += "L " + to_hex(0x1000 + v * 0x1000ull, 9) + " 4 main GS v" +
              std::to_string(v) + "[0]\n";
    }
  }
  c.run(trace::read_trace_string(c.ctx, text), tiny_dm(4096));
  AdvisorOptions opts;
  opts.max_suggestions = 3;
  const auto suggestions = advise(*c.vars, *c.conflicts, opts);
  EXPECT_LE(suggestions.size(), 3u);
}

TEST(Advisor, SoAWalkSuggestsInterleave) {
  // The T1 symptom: alternating mX/mY accesses 4 KiB apart.
  layout::TypeTable types;
  Collected c;
  const auto records =
      tracer::run_program(types, c.ctx, tracer::make_t1_soa(types, 1024));
  cache::CacheHierarchy h(cache::paper_direct_mapped());
  cache::TraceCacheSim sim(h);
  c.vars = std::make_unique<VarStatsCollector>(c.ctx);
  c.conflicts = std::make_unique<ConflictCollector>(c.ctx);
  AdjacencyCollector adjacency(c.ctx, 64);
  sim.add_observer(c.vars.get());
  sim.add_observer(c.conflicts.get());
  sim.add_observer(&adjacency);
  sim.simulate(records);

  EXPECT_GT(adjacency.pairs().at({"lSoA.mX", "lSoA.mY"}), 1000u);
  const auto suggestions = advise(*c.vars, *c.conflicts, {}, &adjacency);
  bool saw_interleave = false;
  for (const Suggestion& s : suggestions) {
    saw_interleave |= s.kind == SuggestionKind::Interleave;
  }
  EXPECT_TRUE(saw_interleave);
}

TEST(Advisor, AoSWalkDoesNotSuggestInterleave) {
  // Already interleaved: adjacent mX/mY are 8 bytes apart — no pair.
  layout::TypeTable types;
  Collected c;
  const auto records =
      tracer::run_program(types, c.ctx, tracer::make_t1_aos(types, 1024));
  cache::CacheHierarchy h(cache::paper_direct_mapped());
  cache::TraceCacheSim sim(h);
  c.vars = std::make_unique<VarStatsCollector>(c.ctx);
  c.conflicts = std::make_unique<ConflictCollector>(c.ctx);
  AdjacencyCollector adjacency(c.ctx, 64);
  sim.add_observer(c.vars.get());
  sim.add_observer(c.conflicts.get());
  sim.add_observer(&adjacency);
  sim.simulate(records);

  const auto suggestions = advise(*c.vars, *c.conflicts, {}, &adjacency);
  for (const Suggestion& s : suggestions) {
    EXPECT_NE(s.kind, SuggestionKind::Interleave) << s.rationale;
  }
}

TEST(SuggestionKind, Names) {
  EXPECT_EQ(to_string(SuggestionKind::PadOrDisplace), "pad-or-displace");
  EXPECT_EQ(to_string(SuggestionKind::SplitHotCold), "split-hot-cold");
  EXPECT_EQ(to_string(SuggestionKind::Interleave), "interleave");
  EXPECT_EQ(to_string(SuggestionKind::NoAction), "no-action");
}

}  // namespace
}  // namespace tdt::analysis
