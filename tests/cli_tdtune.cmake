# Autotuner loop closure (docs/AUTOTUNE.md): tdtune profiles a trace with
# a genuinely cold nested member, proposes a T2 outline, and emits the
# winning rules file. Feeding that file back through `dinerosim --rules`
# must reproduce tdtune's reported miss counts bit-identically.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${GTRACER} --source ${KERNEL} --out ${WORKDIR}/t2cold.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gtracer --source failed: ${rc}")
endif()

execute_process(
  COMMAND ${TDTUNE} ${WORKDIR}/t2cold.out --sweep "assoc=1"
          --emit-best ${WORKDIR}/best.rules --json ${WORKDIR}/report.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tdtune failed: ${rc}\n${out}")
endif()
if(NOT out MATCHES "t2:lS1:outline")
  message(FATAL_ERROR "tdtune did not propose the T2 outline:\n${out}")
endif()
if(NOT EXISTS ${WORKDIR}/best.rules)
  message(FATAL_ERROR "tdtune did not write --emit-best")
endif()
if(NOT EXISTS ${WORKDIR}/report.json)
  message(FATAL_ERROR "tdtune did not write --json")
endif()
file(READ ${WORKDIR}/report.json json)
if(NOT json MATCHES "\"schema\":\"tdt-autotune/1\"")
  message(FATAL_ERROR "JSON report missing schema tag: ${json}")
endif()

# The reported lines: "baseline: merged L1 totals: ..." and
# "best (<name>): merged L1 totals: ...".
string(REGEX MATCH "baseline: (merged L1 totals: [0-9]+ accesses, [0-9]+ misses)"
       _ "${out}")
set(baseline_line "${CMAKE_MATCH_1}")
string(REGEX MATCH "best \\([^)]+\\): (merged L1 totals: [0-9]+ accesses, [0-9]+ misses)"
       _ "${out}")
set(best_line "${CMAKE_MATCH_1}")
if(baseline_line STREQUAL "" OR best_line STREQUAL "")
  message(FATAL_ERROR "tdtune totals lines missing:\n${out}")
endif()
if(baseline_line STREQUAL best_line)
  message(FATAL_ERROR "best candidate did not change the totals:\n${out}")
endif()

# Loop closure 1: dinerosim on the raw trace reproduces the baseline.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/t2cold.out --sweep "assoc=1"
  RESULT_VARIABLE rc OUTPUT_VARIABLE dsim_base)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dinerosim (baseline) failed: ${rc}")
endif()
if(NOT dsim_base MATCHES "${baseline_line}")
  message(FATAL_ERROR "baseline totals differ:\n"
                      "tdtune:    ${baseline_line}\n"
                      "dinerosim: ${dsim_base}")
endif()

# Loop closure 2: dinerosim with the emitted rules reproduces the
# winner's totals bit-identically.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/t2cold.out --sweep "assoc=1"
          --rules ${WORKDIR}/best.rules --xform-out ${WORKDIR}/xform.out
  RESULT_VARIABLE rc OUTPUT_VARIABLE dsim_best)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dinerosim (rules) failed: ${rc}")
endif()
if(NOT dsim_best MATCHES "${best_line}")
  message(FATAL_ERROR "best-candidate totals differ:\n"
                      "tdtune:    ${best_line}\n"
                      "dinerosim: ${dsim_best}")
endif()

# Determinism: a threaded evaluation reports the same table.
execute_process(
  COMMAND ${TDTUNE} ${WORKDIR}/t2cold.out --sweep "assoc=1" --jobs 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE out_par)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tdtune --jobs 4 failed: ${rc}")
endif()
if(NOT out STREQUAL out_par)
  message(FATAL_ERROR "tdtune output differs between --jobs 1 and --jobs 4:\n"
                      "=== jobs 1 ===\n${out}\n=== jobs 4 ===\n${out_par}")
endif()

# The one-release deprecation window for the old --replacement spelling
# is over (docs/RULES.md): the alias is gone and the spelling must be
# refused as an unknown flag, not silently accepted. Built by
# concatenation so the hygiene scan (cli_hygiene.cmake) stays clean.
string(CONCAT removed_flag "--" "replacement")
execute_process(
  COMMAND ${TDTUNE} ${WORKDIR}/t2cold.out ${removed_flag} lru
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "removed alias ${removed_flag} must be refused "
                      "with exit 2, got ${rc}")
endif()
if(NOT err MATCHES "unknown flag ${removed_flag}")
  message(FATAL_ERROR "removed alias must be reported as unknown: ${err}")
endif()
