#include "memsim/address_space.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::memsim {
namespace {

TEST(AddressSpace, GlobalsGrowUpwardFromBase) {
  AddressSpace space;
  const std::uint64_t a = space.alloc_global(4, 4);
  const std::uint64_t b = space.alloc_global(4, 4);
  EXPECT_EQ(a, space.config().global_base);
  EXPECT_EQ(b, a + 4);
}

TEST(AddressSpace, GlobalAlignmentRespected) {
  AddressSpace space;
  (void)space.alloc_global(1, 1);
  const std::uint64_t d = space.alloc_global(8, 8);
  EXPECT_EQ(d % 8, 0u);
}

TEST(AddressSpace, StackGrowsDownward) {
  AddressSpace space;
  const std::uint64_t a = space.alloc_stack(8, 8);
  const std::uint64_t b = space.alloc_stack(8, 8);
  EXPECT_LT(a, space.config().stack_base);
  EXPECT_LT(b, a);
}

TEST(AddressSpace, StackAlignmentRespected) {
  AddressSpace space;
  (void)space.alloc_stack(3, 1);
  const std::uint64_t d = space.alloc_stack(8, 8);
  EXPECT_EQ(d % 8, 0u);
  const std::uint64_t i = space.alloc_stack(4, 4);
  EXPECT_EQ(i % 4, 0u);
}

TEST(AddressSpace, FramesNestAndRelease) {
  AddressSpace space;
  EXPECT_EQ(space.current_frame(), 0u);
  const std::uint64_t outer = space.alloc_stack(16, 8);
  space.push_frame();
  EXPECT_EQ(space.current_frame(), 1u);
  const std::uint64_t inner = space.alloc_stack(16, 8);
  EXPECT_LT(inner, outer);
  space.pop_frame();
  EXPECT_EQ(space.current_frame(), 0u);
  // Allocation after pop reuses the released region.
  const std::uint64_t again = space.alloc_stack(16, 8);
  EXPECT_EQ(again, inner);
}

TEST(AddressSpace, PopOutermostFrameIsInternalError) {
  AddressSpace space;
  EXPECT_THROW(space.pop_frame(), Error);
}

TEST(AddressSpace, StackOverflowDetected) {
  AddressSpaceConfig cfg;
  cfg.stack_base = 0x7ff000000;
  cfg.stack_limit = 0x7fefff000;  // 4 KiB of stack
  AddressSpace space(cfg);
  EXPECT_THROW((void)space.alloc_stack(1 << 20, 8), Error);
}

TEST(AddressSpace, HeapAllocSixteenByteAligned) {
  AddressSpace space;
  const std::uint64_t a = space.heap_alloc(5);
  const std::uint64_t b = space.heap_alloc(17);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GE(b, a + 16);
}

TEST(AddressSpace, HeapLiveBytesTracked) {
  AddressSpace space;
  const std::uint64_t a = space.heap_alloc(32);
  EXPECT_EQ(space.heap_live_bytes(), 32u);
  space.heap_free(a);
  EXPECT_EQ(space.heap_live_bytes(), 0u);
}

TEST(AddressSpace, HeapFreeListReuse) {
  AddressSpace space;
  const std::uint64_t a = space.heap_alloc(64);
  (void)space.heap_alloc(64);
  space.heap_free(a);
  // Next fitting allocation reuses the hole.
  EXPECT_EQ(space.heap_alloc(64), a);
}

TEST(AddressSpace, HeapCoalescingMergesNeighbours) {
  AddressSpace space;
  const std::uint64_t a = space.heap_alloc(32);
  const std::uint64_t b = space.heap_alloc(32);
  const std::uint64_t guard = space.heap_alloc(32);
  (void)guard;
  space.heap_free(a);
  space.heap_free(b);  // coalesces with a
  EXPECT_EQ(space.heap_alloc(64), a);
}

TEST(AddressSpace, HeapDoubleFreeRejected) {
  AddressSpace space;
  const std::uint64_t a = space.heap_alloc(16);
  space.heap_free(a);
  EXPECT_THROW(space.heap_free(a), Error);
  EXPECT_THROW(space.heap_free(0xdead0000), Error);
}

TEST(AddressSpace, SplitFreeBlockKeepsRemainder) {
  AddressSpace space;
  const std::uint64_t a = space.heap_alloc(64);
  (void)space.heap_alloc(16);
  space.heap_free(a);
  const std::uint64_t small = space.heap_alloc(16);
  EXPECT_EQ(small, a);
  const std::uint64_t rest = space.heap_alloc(48);
  EXPECT_EQ(rest, a + 16);
}

TEST(AddressSpace, SegmentClassification) {
  AddressSpace space;
  EXPECT_EQ(space.segment_of(0x7ff000000 - 8), Segment::Stack);
  EXPECT_EQ(space.segment_of(0x000601040), Segment::Globals);
  EXPECT_EQ(space.segment_of(0x000a00010), Segment::Heap);
}

TEST(AddressSpace, PaperLikeAddressRanges) {
  // Default configuration should produce addresses in the ranges visible
  // in the paper's traces: locals near 0x7ff000000, globals near 0x601000.
  AddressSpace space;
  const std::uint64_t local = space.alloc_stack(8, 8);
  const std::uint64_t global = space.alloc_global(4, 4);
  EXPECT_LT(local, 0x7ff000000ULL);
  EXPECT_GE(local, 0x7ff000000ULL - 4096);
  EXPECT_EQ(global >> 12, 0x601u);
}

}  // namespace
}  // namespace tdt::memsim
