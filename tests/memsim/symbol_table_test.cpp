#include "memsim/symbol_table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::memsim {
namespace {

struct Fixture {
  layout::TypeTable types;
  AddressSpace space;
  SymbolTable table{types, space};
};

TEST(SymbolTable, GlobalsAllocatedInDataSegment) {
  Fixture f;
  const VarInfo& v = f.table.declare_global("glScalar", f.types.int_type());
  EXPECT_TRUE(v.global);
  EXPECT_EQ(f.space.segment_of(v.base), Segment::Globals);
  EXPECT_EQ(v.scope(f.types), trace::VarScope::GlobalVariable);
}

TEST(SymbolTable, LocalsAllocatedOnStack) {
  Fixture f;
  const VarInfo& v = f.table.declare_local("i", f.types.int_type());
  EXPECT_FALSE(v.global);
  EXPECT_EQ(f.space.segment_of(v.base), Segment::Stack);
  EXPECT_EQ(v.scope(f.types), trace::VarScope::LocalVariable);
}

TEST(SymbolTable, AggregatesGetStructureScopes) {
  Fixture f;
  const auto arr = f.types.array_of(f.types.int_type(), 10);
  const VarInfo& l = f.table.declare_local("lcArray", arr);
  const VarInfo& g = f.table.declare_global("glArray", arr);
  EXPECT_EQ(l.scope(f.types), trace::VarScope::LocalStructure);
  EXPECT_EQ(g.scope(f.types), trace::VarScope::GlobalStructure);
}

TEST(SymbolTable, LookupInnermostFirst) {
  Fixture f;
  f.table.declare_global("x", f.types.int_type());
  f.table.push_scope();
  const VarInfo& shadow = f.table.declare_local("x", f.types.double_type());
  EXPECT_EQ(f.table.lookup("x"), &shadow);
  f.table.pop_scope();
  const VarInfo* outer = f.table.lookup("x");
  ASSERT_NE(outer, nullptr);
  EXPECT_TRUE(outer->global);
}

TEST(SymbolTable, LookupMissReturnsNull) {
  Fixture f;
  EXPECT_EQ(f.table.lookup("absent"), nullptr);
}

TEST(SymbolTable, ScopesDropVariables) {
  Fixture f;
  f.table.push_scope();
  f.table.declare_local("tmp", f.types.int_type());
  EXPECT_NE(f.table.lookup("tmp"), nullptr);
  f.table.pop_scope();
  EXPECT_EQ(f.table.lookup("tmp"), nullptr);
}

TEST(SymbolTable, PopOutermostThrows) {
  Fixture f;
  EXPECT_THROW(f.table.pop_scope(), Error);
}

TEST(SymbolTable, ResolveAddressScalar) {
  Fixture f;
  const VarInfo& v = f.table.declare_global("glScalar", f.types.int_type());
  auto res = f.table.resolve_address(v.base);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->var, &v);
  EXPECT_TRUE(res->path.empty());
  EXPECT_EQ(res->offset_in_leaf, 0u);
}

TEST(SymbolTable, ResolveAddressNestedElement) {
  Fixture f;
  const auto type_a = f.types.define_struct(
      "_typeA", {{"dl", f.types.double_type()},
                 {"myArray", f.types.array_of(f.types.int_type(), 10)}});
  const VarInfo& v =
      f.table.declare_global("glStructArray", f.types.array_of(type_a, 10));
  // glStructArray[1].myArray[1] = base + 48 + 8 + 4
  auto res = f.table.resolve_address(v.base + 60);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->var, &v);
  EXPECT_EQ(layout::format_path({res->path.data(), res->path.size()}),
            "[1].myArray[1]");
}

TEST(SymbolTable, ResolveAddressInPaddingFails) {
  Fixture f;
  const auto s = f.types.define_struct(
      "Padded", {{"a", f.types.int_type()}, {"b", f.types.double_type()}});
  const VarInfo& v = f.table.declare_global("p", s);
  EXPECT_FALSE(f.table.resolve_address(v.base + 5).has_value());
}

TEST(SymbolTable, ResolveAddressOutsideAllVariables) {
  Fixture f;
  f.table.declare_global("x", f.types.int_type());
  EXPECT_FALSE(f.table.resolve_address(0xdeadbeef).has_value());
}

TEST(SymbolTable, ResolvePrefersInnermostOnOverlap) {
  Fixture f;
  const VarInfo& g = f.table.declare_global("g", f.types.int_type());
  // Shadow pseudo-variable at the same address via declare_at.
  const VarInfo& shadow =
      f.table.declare_at("shadow", f.types.int_type(), g.base, true);
  auto res = f.table.resolve_address(g.base);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->var, &shadow);  // later declaration wins
}

TEST(SymbolTable, DeclareAtPlacesExactly) {
  Fixture f;
  const VarInfo& v =
      f.table.declare_at("fixed", f.types.int_type(), 0x12340, false);
  EXPECT_EQ(v.base, 0x12340u);
  EXPECT_FALSE(v.global);
}

TEST(SymbolTable, LiveVariablesListsAll) {
  Fixture f;
  f.table.declare_global("g", f.types.int_type());
  f.table.declare_local("l", f.types.int_type());
  f.table.push_scope();
  f.table.declare_local("inner", f.types.int_type());
  const auto live = f.table.live_variables();
  EXPECT_EQ(live.size(), 3u);
  f.table.pop_scope();
  EXPECT_EQ(f.table.live_variables().size(), 2u);
}

TEST(SymbolTable, FrameRecordedAtDeclaration) {
  Fixture f;
  const VarInfo& outer = f.table.declare_local("outer", f.types.int_type());
  f.table.push_scope();
  const VarInfo& inner = f.table.declare_local("inner", f.types.int_type());
  EXPECT_EQ(outer.frame, 0u);
  EXPECT_EQ(inner.frame, 1u);
  f.table.pop_scope();
}

}  // namespace
}  // namespace tdt::memsim
