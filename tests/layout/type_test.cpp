#include "layout/type.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::layout {
namespace {

TEST(TypeTable, PrimitiveSizesMatchLp64) {
  TypeTable t;
  EXPECT_EQ(t.size_of(t.char_type()), 1u);
  EXPECT_EQ(t.size_of(t.bool_type()), 1u);
  EXPECT_EQ(t.size_of(t.short_type()), 2u);
  EXPECT_EQ(t.size_of(t.int_type()), 4u);
  EXPECT_EQ(t.size_of(t.long_type()), 8u);
  EXPECT_EQ(t.size_of(t.float_type()), 4u);
  EXPECT_EQ(t.size_of(t.double_type()), 8u);
}

TEST(TypeTable, PrimitiveAlignEqualsSize) {
  TypeTable t;
  for (TypeId id : {t.char_type(), t.short_type(), t.int_type(),
                    t.long_type(), t.float_type(), t.double_type()}) {
    EXPECT_EQ(t.align_of(id), t.size_of(id));
  }
}

TEST(TypeTable, FindPrimitiveByName) {
  TypeTable t;
  EXPECT_EQ(t.find_primitive("int"), t.int_type());
  EXPECT_EQ(t.find_primitive("double"), t.double_type());
  EXPECT_EQ(t.find_primitive("nosuch"), kInvalidType);
}

TEST(TypeTable, PointersAreEightBytesAndInterned) {
  TypeTable t;
  const TypeId p1 = t.pointer_to(t.int_type());
  const TypeId p2 = t.pointer_to(t.int_type());
  const TypeId p3 = t.pointer_to(t.double_type());
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_EQ(t.size_of(p1), 8u);
  EXPECT_EQ(t.align_of(p1), 8u);
  EXPECT_EQ(t.element(p1), t.int_type());
}

TEST(TypeTable, ArraysMultiplySize) {
  TypeTable t;
  const TypeId a = t.array_of(t.int_type(), 10);
  EXPECT_EQ(t.size_of(a), 40u);
  EXPECT_EQ(t.align_of(a), 4u);
  EXPECT_EQ(t.array_count(a), 10u);
  EXPECT_EQ(t.element(a), t.int_type());
}

TEST(TypeTable, ArraysInterned) {
  TypeTable t;
  EXPECT_EQ(t.array_of(t.int_type(), 16), t.array_of(t.int_type(), 16));
  EXPECT_NE(t.array_of(t.int_type(), 16), t.array_of(t.int_type(), 17));
}

TEST(TypeTable, ZeroLengthArrayRejected) {
  TypeTable t;
  EXPECT_THROW(t.array_of(t.int_type(), 0), Error);
}

TEST(TypeTable, StructPaddingAfterIntBeforeDouble) {
  // struct { int a; double b; } -> b at offset 8, size 16, align 8.
  TypeTable t;
  const TypeId s = t.define_struct(
      "S", {{"a", t.int_type()}, {"b", t.double_type()}});
  EXPECT_EQ(t.size_of(s), 16u);
  EXPECT_EQ(t.align_of(s), 8u);
  EXPECT_EQ(t.find_field(s, "a")->offset, 0u);
  EXPECT_EQ(t.find_field(s, "b")->offset, 8u);
  EXPECT_EQ(t.padding_bytes(s), 4u);
}

TEST(TypeTable, StructTailPadding) {
  // struct { double a; int b; } -> size 16 (tail padded), not 12.
  TypeTable t;
  const TypeId s = t.define_struct(
      "S", {{"a", t.double_type()}, {"b", t.int_type()}});
  EXPECT_EQ(t.size_of(s), 16u);
  EXPECT_EQ(t.padding_bytes(s), 4u);
}

TEST(TypeTable, PackedStructNoPadding) {
  TypeTable t;
  const TypeId s = t.define_struct(
      "S", {{"a", t.int_type()}, {"b", t.int_type()}});
  EXPECT_EQ(t.size_of(s), 8u);
  EXPECT_EQ(t.padding_bytes(s), 0u);
}

TEST(TypeTable, PaperTypeALayout) {
  // struct _typeA { double dl; int myArray[10]; } -> dl@0, myArray@8,
  // size 48 (8 + 40).
  TypeTable t;
  const TypeId s = t.define_struct(
      "_typeA",
      {{"dl", t.double_type()}, {"myArray", t.array_of(t.int_type(), 10)}});
  EXPECT_EQ(t.find_field(s, "dl")->offset, 0u);
  EXPECT_EQ(t.find_field(s, "myArray")->offset, 8u);
  EXPECT_EQ(t.size_of(s), 48u);
}

TEST(TypeTable, PaperMyStructLayout) {
  // struct MyStruct { int mX; double mY; } -> 16 bytes, the AoS element of
  // transformation T1.
  TypeTable t;
  const TypeId s = t.define_struct(
      "MyStruct", {{"mX", t.int_type()}, {"mY", t.double_type()}});
  EXPECT_EQ(t.size_of(s), 16u);
  const TypeId arr = t.array_of(s, 16);
  EXPECT_EQ(t.size_of(arr), 256u);
}

TEST(TypeTable, NestedStructAlignmentPropagates) {
  TypeTable t;
  const TypeId inner = t.define_struct(
      "Inner", {{"y", t.double_type()}, {"z", t.int_type()}});
  const TypeId outer = t.define_struct(
      "Outer", {{"hot", t.int_type()}, {"cold", inner}});
  // Inner is 8-aligned, so cold starts at 8: size = 8 + 16 = 24.
  EXPECT_EQ(t.find_field(outer, "cold")->offset, 8u);
  EXPECT_EQ(t.size_of(outer), 24u);
  EXPECT_EQ(t.align_of(outer), 8u);
}

TEST(TypeTable, EmptyStructHasNonZeroSize) {
  TypeTable t;
  const TypeId s = t.define_struct("Empty", {});
  EXPECT_GE(t.size_of(s), 1u);
}

TEST(TypeTable, DuplicateStructNameRejected) {
  TypeTable t;
  (void)t.define_struct("S", {{"a", t.int_type()}});
  EXPECT_THROW(t.define_struct("S", {{"b", t.int_type()}}), Error);
}

TEST(TypeTable, DuplicateFieldRejected) {
  TypeTable t;
  EXPECT_THROW(
      t.define_struct("S", {{"a", t.int_type()}, {"a", t.int_type()}}),
      Error);
}

TEST(TypeTable, FindStructByName) {
  TypeTable t;
  const TypeId s = t.define_struct("Point", {{"x", t.int_type()}});
  EXPECT_EQ(t.find_struct("Point"), s);
  EXPECT_EQ(t.find_struct("NoPoint"), kInvalidType);
}

TEST(TypeTable, RenderNames) {
  TypeTable t;
  const TypeId s = t.define_struct("Pt", {{"x", t.int_type()}});
  EXPECT_EQ(t.render(t.int_type()), "int");
  EXPECT_EQ(t.render(t.pointer_to(t.double_type())), "double*");
  EXPECT_EQ(t.render(t.array_of(t.int_type(), 10)), "int[10]");
  EXPECT_EQ(t.render(s), "Pt");
  EXPECT_EQ(t.render(t.array_of(s, 3)), "Pt[3]");
}

TEST(TypeTable, ForwardDeclarationSelfReference) {
  TypeTable t;
  const TypeId node = t.forward_struct("Node");
  EXPECT_FALSE(t.is_complete(node));
  t.complete_struct(
      node, {{"value", t.int_type()}, {"next", t.pointer_to(node)}});
  EXPECT_TRUE(t.is_complete(node));
  EXPECT_EQ(t.size_of(node), 16u);
  EXPECT_EQ(t.find_field(node, "next")->offset, 8u);
}

TEST(TypeTable, IncompleteFieldRejected) {
  TypeTable t;
  const TypeId fwd = t.forward_struct("Fwd");
  EXPECT_THROW(t.define_struct("Bad", {{"f", fwd}}), Error);
}

TEST(TypeTable, DoubleCompleteRejected) {
  TypeTable t;
  const TypeId fwd = t.forward_struct("F");
  t.complete_struct(fwd, {{"a", t.int_type()}});
  EXPECT_THROW(t.complete_struct(fwd, {{"b", t.int_type()}}), Error);
}

TEST(AlignUp, Basics) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 4), 12u);
  EXPECT_EQ(align_up(13, 1), 13u);
  EXPECT_EQ(align_up(5, 0), 5u);
}

// Property sweep: any mix of primitive fields obeys the two ABI
// invariants — each offset is a multiple of the field's alignment, and
// offsets are strictly increasing with no overlap.
class StructLayoutProperty : public ::testing::TestWithParam<int> {};

TEST_P(StructLayoutProperty, OffsetsAlignedAndNonOverlapping) {
  TypeTable t;
  const TypeId prims[] = {t.char_type(), t.short_type(), t.int_type(),
                          t.long_type(), t.float_type(), t.double_type()};
  // Derive a deterministic pseudo-random field list from the parameter.
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1;
  std::vector<PendingField> fields;
  const int n = 1 + static_cast<int>(state % 7);
  for (int i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    fields.push_back(
        {"f" + std::to_string(i), prims[state % 6]});
  }
  const TypeId s =
      t.define_struct("S" + std::to_string(GetParam()), std::move(fields));
  std::uint64_t prev_end = 0;
  std::uint64_t max_align = 1;
  for (const FieldInfo& f : t.fields(s)) {
    EXPECT_EQ(f.offset % t.align_of(f.type), 0u);
    EXPECT_GE(f.offset, prev_end);
    prev_end = f.offset + t.size_of(f.type);
    max_align = std::max(max_align, t.align_of(f.type));
  }
  EXPECT_EQ(t.align_of(s), max_align);
  EXPECT_EQ(t.size_of(s) % max_align, 0u);
  EXPECT_GE(t.size_of(s), prev_end);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StructLayoutProperty,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace tdt::layout
