#include "layout/path.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::layout {
namespace {

struct Fixture {
  TypeTable t;
  TypeId type_a;       // struct _typeA { double dl; int myArray[10]; }
  TypeId type_a_arr;   // _typeA[10]
  TypeId soa;          // struct { int mX[16]; double mY[16]; }

  Fixture() {
    type_a = t.define_struct(
        "_typeA",
        {{"dl", t.double_type()}, {"myArray", t.array_of(t.int_type(), 10)}});
    type_a_arr = t.array_of(type_a, 10);
    soa = t.define_struct(
        "SoA", {{"mX", t.array_of(t.int_type(), 16)},
                {"mY", t.array_of(t.double_type(), 16)}});
  }
};

TEST(ResolvePath, StructField) {
  Fixture f;
  Path p;
  p.push_back(PathStep::make_field("dl"));
  const Resolved r = resolve_path(f.t, f.type_a, {p.data(), p.size()});
  EXPECT_EQ(r.offset, 0u);
  EXPECT_EQ(r.type, f.t.double_type());
}

TEST(ResolvePath, NestedArrayElement) {
  Fixture f;
  // glStructArray[1].myArray[1] -> 1*48 + 8 + 1*4 = 60
  Path p;
  p.push_back(PathStep::make_index(1));
  p.push_back(PathStep::make_field("myArray"));
  p.push_back(PathStep::make_index(1));
  const Resolved r = resolve_path(f.t, f.type_a_arr, {p.data(), p.size()});
  EXPECT_EQ(r.offset, 60u);
  EXPECT_EQ(r.type, f.t.int_type());
}

TEST(ResolvePath, SoAFieldElement) {
  Fixture f;
  // SoA.mY[3] -> 64 + 3*8 = 88
  Path p;
  p.push_back(PathStep::make_field("mY"));
  p.push_back(PathStep::make_index(3));
  const Resolved r = resolve_path(f.t, f.soa, {p.data(), p.size()});
  EXPECT_EQ(r.offset, 88u);
}

TEST(ResolvePath, EmptyPathIsRoot) {
  Fixture f;
  const Resolved r = resolve_path(f.t, f.type_a, {});
  EXPECT_EQ(r.offset, 0u);
  EXPECT_EQ(r.type, f.type_a);
}

TEST(ResolvePath, UnknownFieldThrows) {
  Fixture f;
  Path p;
  p.push_back(PathStep::make_field("nope"));
  EXPECT_THROW((void)resolve_path(f.t, f.type_a, {p.data(), p.size()}), Error);
}

TEST(ResolvePath, IndexOnStructThrows) {
  Fixture f;
  Path p;
  p.push_back(PathStep::make_index(0));
  EXPECT_THROW((void)resolve_path(f.t, f.type_a, {p.data(), p.size()}), Error);
}

TEST(ResolvePath, FieldOnArrayThrows) {
  Fixture f;
  Path p;
  p.push_back(PathStep::make_field("dl"));
  EXPECT_THROW((void)resolve_path(f.t, f.type_a_arr, {p.data(), p.size()}), Error);
}

TEST(ResolvePath, OutOfRangeIndexThrows) {
  Fixture f;
  Path p;
  p.push_back(PathStep::make_index(10));
  EXPECT_THROW((void)resolve_path(f.t, f.type_a_arr, {p.data(), p.size()}), Error);
}

TEST(ResolvePath, SelectorOnScalarThrows) {
  Fixture f;
  Path p;
  p.push_back(PathStep::make_field("dl"));
  p.push_back(PathStep::make_field("oops"));
  EXPECT_THROW((void)resolve_path(f.t, f.type_a, {p.data(), p.size()}), Error);
}

TEST(PathAtOffset, FindsLeaf) {
  Fixture f;
  auto p = path_at_offset(f.t, f.type_a_arr, 60);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(format_path({p->data(), p->size()}), "[1].myArray[1]");
}

TEST(PathAtOffset, MidLeafRemainder) {
  Fixture f;
  std::uint64_t rem = 99;
  auto p = path_at_offset(f.t, f.type_a, 3, &rem);  // inside dl
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(format_path({p->data(), p->size()}), ".dl");
  EXPECT_EQ(rem, 3u);
}

TEST(PathAtOffset, PaddingReturnsNullopt) {
  TypeTable t;
  // struct { int a; double b; }: bytes 4..7 are padding.
  const TypeId s =
      t.define_struct("P", {{"a", t.int_type()}, {"b", t.double_type()}});
  EXPECT_FALSE(path_at_offset(t, s, 5).has_value());
  EXPECT_TRUE(path_at_offset(t, s, 0).has_value());
  EXPECT_TRUE(path_at_offset(t, s, 8).has_value());
}

TEST(PathAtOffset, BeyondSizeReturnsNullopt) {
  Fixture f;
  EXPECT_FALSE(path_at_offset(f.t, f.type_a, 48).has_value());
}

TEST(ForEachLeaf, VisitsAllInLayoutOrder) {
  Fixture f;
  std::vector<std::uint64_t> offsets;
  for_each_leaf(f.t, f.type_a,
                [&](const Path&, std::uint64_t off, TypeId) {
                  offsets.push_back(off);
                });
  // dl + 10 myArray elements.
  ASSERT_EQ(offsets.size(), 11u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets[1], 8u);
  EXPECT_TRUE(std::is_sorted(offsets.begin(), offsets.end()));
}

TEST(FormatParse, RoundTrip) {
  for (const char* text :
       {".dl", "[3]", ".mX[7]", "[0].myArray[9]", ".a.b.c", "[1][2][3]"}) {
    const Path p = parse_path(text);
    EXPECT_EQ(format_path({p.data(), p.size()}), text);
  }
}

TEST(ParsePath, ToleratesBareLeadingField) {
  const Path p = parse_path("mX[2]");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].field, "mX");
  EXPECT_EQ(p[1].index, 2u);
}

TEST(ParsePath, Malformed) {
  EXPECT_THROW(parse_path("."), Error);
  EXPECT_THROW(parse_path("[abc]"), Error);
  EXPECT_THROW(parse_path("[3"), Error);
  EXPECT_THROW(parse_path("!x"), Error);
}

TEST(LeafFieldNames, CollapsesArrayElements) {
  Fixture f;
  const auto names = leaf_field_names(f.t, f.type_a);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "dl");
  EXPECT_EQ(names[1], "myArray");
}

// Property: for every leaf path produced by for_each_leaf,
// resolve_path(offset) round-trips through path_at_offset.
class PathRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PathRoundTrip, ResolveThenReverse) {
  TypeTable t;
  const TypeId inner = t.define_struct(
      "Inner" + std::to_string(GetParam()),
      {{"y", t.double_type()},
       {"z", t.array_of(t.int_type(), 1 + GetParam() % 5)}});
  const TypeId outer = t.define_struct(
      "Outer" + std::to_string(GetParam()),
      {{"hot", t.int_type()},
       {"cold", t.array_of(inner, 1 + GetParam() % 4)}});
  const TypeId root = t.array_of(outer, 2 + GetParam() % 3);

  std::size_t leaves = 0;
  for_each_leaf(t, root,
                [&](const Path& p, std::uint64_t off, TypeId leaf) {
                  ++leaves;
                  const Resolved r = resolve_path(t, root, {p.data(), p.size()});
                  EXPECT_EQ(r.offset, off);
                  EXPECT_EQ(r.type, leaf);
                  std::uint64_t rem = 1;
                  auto back = path_at_offset(t, root, off, &rem);
                  ASSERT_TRUE(back.has_value());
                  EXPECT_EQ(rem, 0u);
                  EXPECT_EQ(format_path({back->data(), back->size()}),
                            format_path({p.data(), p.size()}));
                });
  EXPECT_GT(leaves, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathRoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace tdt::layout
