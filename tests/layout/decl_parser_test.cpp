#include "layout/decl_parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::layout {
namespace {

TEST(DeclParser, SimpleScalar) {
  TypeTable t;
  const auto vars = parse_declarations("int glScalar;", t);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0].name, "glScalar");
  EXPECT_EQ(vars[0].type, t.int_type());
}

TEST(DeclParser, ArrayDeclarator) {
  TypeTable t;
  const auto vars = parse_declarations("int glArray[10];", t);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(t.kind(vars[0].type), TypeKind::Array);
  EXPECT_EQ(t.array_count(vars[0].type), 10u);
}

TEST(DeclParser, MultiDimArray) {
  TypeTable t;
  const auto vars = parse_declarations("double A[2][3];", t);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(t.size_of(vars[0].type), 48u);
  EXPECT_EQ(t.array_count(vars[0].type), 2u);
  EXPECT_EQ(t.array_count(t.element(vars[0].type)), 3u);
}

TEST(DeclParser, PointerDeclarator) {
  TypeTable t;
  const auto vars = parse_declarations("double *p;", t);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(t.kind(vars[0].type), TypeKind::Pointer);
  EXPECT_EQ(t.element(vars[0].type), t.double_type());
}

TEST(DeclParser, CommaSeparatedDeclarators) {
  TypeTable t;
  const auto vars = parse_declarations("int i, lcScalar, lcArray[10];", t);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0].name, "i");
  EXPECT_EQ(vars[1].name, "lcScalar");
  EXPECT_EQ(t.kind(vars[2].type), TypeKind::Array);
}

TEST(DeclParser, StructDefinitionAndUse) {
  TypeTable t;
  const auto vars = parse_declarations(
      "struct _typeA { double dl; int myArray[10]; };\n"
      "struct _typeA glStruct;\n"
      "struct _typeA glStructArray[10];\n",
      t);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].name, "glStruct");
  EXPECT_EQ(t.size_of(vars[0].type), 48u);
  EXPECT_EQ(t.size_of(vars[1].type), 480u);
}

TEST(DeclParser, TypedefStyleBareStructName) {
  TypeTable t;
  const auto vars = parse_declarations(
      "struct RarelyUsed { double mY; int mZ; };\n"
      "RarelyUsed pool[16];\n",
      t);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(t.size_of(vars[0].type), 16u * 16u);
}

TEST(DeclParser, NestedStructShorthand) {
  // Paper Listing 8: `struct mRarelyUsed;` embeds the struct as a field
  // named after it.
  TypeTable t;
  (void)parse_declarations(
      "struct mRarelyUsed { double mY; int mZ; };\n"
      "struct lS1 { int mFrequentlyUsed; struct mRarelyUsed; };\n",
      t);
  const TypeId s1 = t.find_struct("lS1");
  ASSERT_NE(s1, kInvalidType);
  const FieldInfo* f = t.find_field(s1, "mRarelyUsed");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->offset, 8u);
  EXPECT_EQ(t.size_of(s1), 24u);
}

TEST(DeclParser, TrailingArrayCountDeclaresVariable) {
  // `struct lAoS { ... }[16];` (paper Listing 5) declares variable lAoS
  // of type lAoS[16].
  TypeTable t;
  const auto vars = parse_declarations(
      "struct lAoS { int mX; double mY; }[16];", t);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0].name, "lAoS");
  EXPECT_EQ(t.size_of(vars[0].type), 256u);
}

TEST(DeclParser, UnsignedAndLongCombos) {
  TypeTable t;
  const auto vars = parse_declarations(
      "unsigned int a; unsigned b; long c; long long d; short e; "
      "unsigned long f; signed char g;",
      t);
  ASSERT_EQ(vars.size(), 7u);
  EXPECT_EQ(t.size_of(vars[0].type), 4u);
  EXPECT_EQ(t.size_of(vars[1].type), 4u);
  EXPECT_EQ(t.size_of(vars[2].type), 8u);
  EXPECT_EQ(t.size_of(vars[3].type), 8u);
  EXPECT_EQ(t.size_of(vars[4].type), 2u);
  EXPECT_EQ(t.size_of(vars[5].type), 8u);
  EXPECT_EQ(t.size_of(vars[6].type), 1u);
}

TEST(DeclParser, StructFieldWithDeclarator) {
  TypeTable t;
  (void)parse_declarations(
      "struct Inner { int v; };\n"
      "struct Outer { struct Inner twin[2]; int tail; };\n",
      t);
  const TypeId outer = t.find_struct("Outer");
  EXPECT_EQ(t.size_of(outer), 12u);
}

TEST(DeclParser, PointerFieldInStruct) {
  TypeTable t;
  (void)parse_declarations(
      "struct R { double y; };\n"
      "struct S { int hot; R *cold; };\n",
      t);
  const TypeId s = t.find_struct("S");
  EXPECT_EQ(t.size_of(s), 16u);
  EXPECT_EQ(t.kind(t.find_field(s, "cold")->type), TypeKind::Pointer);
}

TEST(DeclParser, CommentsIgnored) {
  TypeTable t;
  const auto vars = parse_declarations(
      "// leading\nint a; /* inline */ int b; # trailing\n", t);
  EXPECT_EQ(vars.size(), 2u);
}

TEST(DeclParser, Errors) {
  TypeTable t;
  EXPECT_THROW(parse_declarations("struct Undefined x;", t), Error);
  EXPECT_THROW(parse_declarations("int a", t), Error);          // missing ;
  EXPECT_THROW(parse_declarations("int [3];", t), Error);       // no name
  EXPECT_THROW(parse_declarations("int a[];", t), Error);       // no length
  EXPECT_THROW(parse_declarations("banana a;", t), Error);      // bad type
  EXPECT_THROW(parse_declarations("struct S { int a } x;", t),
               Error);  // missing ; after field
}

TEST(DeclParser, EmptyInputIsEmpty) {
  TypeTable t;
  EXPECT_TRUE(parse_declarations("", t).empty());
  EXPECT_TRUE(parse_declarations("  // nothing\n", t).empty());
}

}  // namespace
}  // namespace tdt::layout
