# API hygiene for in-tree facade clients (docs/RULES.md):
#  * tools include only the public facade ("tdt/...") and their own
#    shared plumbing ("tools/..."); examples include only "tdt/...".
#  * nothing spells or re-registers a removed flag alias
#    (--replacement, --cacheline) — their deprecation window is over
#    and the spellings are refused as unknown flags.
set(failures "")

file(GLOB tool_sources ${SOURCE_DIR}/src/tools/*.cpp)
file(GLOB example_sources ${SOURCE_DIR}/examples/*.cpp)

foreach(src ${tool_sources} ${example_sources})
  # cli_common.cpp IS the "tools/" plumbing implementation; the facade
  # rule binds its clients (the tool entry points), not the plumbing.
  if(src MATCHES "cli_common\\.cpp$")
    continue()
  endif()
  file(READ ${src} text)
  string(REGEX MATCHALL "#include \"[^\"]+\"" includes "${text}")
  foreach(inc ${includes})
    string(REGEX REPLACE "#include \"([^\"]+)\"" "\\1" path "${inc}")
    if(src MATCHES "/src/tools/")
      if(NOT path MATCHES "^(tdt|tools)/")
        list(APPEND failures "${src}: internal include \"${path}\"")
      endif()
    else()
      if(NOT path MATCHES "^tdt/")
        list(APPEND failures "${src}: internal include \"${path}\"")
      endif()
    endif()
  endforeach()
endforeach()

# The shared CLI plumbing itself may reach into src/ — it IS the
# implementation layer — but nothing may resurrect a deprecated spelling
# outside the one add_deprecated_alias registration per flag.
file(GLOB cli_sources ${SOURCE_DIR}/src/tools/*.cpp ${SOURCE_DIR}/src/tools/*.hpp
     ${SOURCE_DIR}/examples/*.cpp ${SOURCE_DIR}/tests/cli_smoke.cmake
     ${SOURCE_DIR}/tests/cli_robustness.cmake ${SOURCE_DIR}/tests/cli_metrics.cmake
     ${SOURCE_DIR}/tests/cli_tdtune.cmake ${SOURCE_DIR}/tests/cli_daemon.cmake)
foreach(src ${cli_sources})
  file(STRINGS ${src} lines)
  foreach(line ${lines})
    if(line MATCHES "^[ \t]*(//|#)")  # prose may name the old spelling
      continue()
    endif()
    if(line MATCHES "--replacement|--cacheline")
      list(APPEND failures "${src}: deprecated flag spelling: ${line}")
    endif()
    if(line MATCHES "add_string\\(\"(replacement|cacheline)\"")
      list(APPEND failures "${src}: deprecated spelling re-registered: ${line}")
    endif()
    # The one-release deprecation window for these aliases is over
    # (docs/RULES.md): re-registering them is a hygiene failure, not a
    # compatibility feature.
    if(line MATCHES "add_deprecated_alias\\(\"(replacement|cacheline)\"")
      list(APPEND failures "${src}: removed alias re-registered: ${line}")
    endif()
  endforeach()
endforeach()

if(NOT failures STREQUAL "")
  string(REPLACE ";" "\n  " pretty "${failures}")
  message(FATAL_ERROR "API hygiene violations:\n  ${pretty}")
endif()
