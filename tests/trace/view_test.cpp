// Semantics the view DAG inherits from the TeeSink era and must keep:
// one ingest feeding N consumers delivers every branch its full stream,
// exactly one on_end per sink, errors out of any branch propagate, and
// a VectorSink's memory is charged once regardless of fan-out. Plus the
// view-specific contracts: filter/window/save equivalence, lazy window
// cut-off, and per-node metrics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/binary.hpp"
#include "trace/stream.hpp"
#include "trace/view.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> make_records(TraceContext& ctx, std::size_t n) {
  std::vector<TraceRecord> records;
  records.reserve(n);
  const Symbol fn = ctx.intern("main");
  const VarRef var = ctx.parse_var("buf");
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec;
    rec.kind = i % 3 == 0 ? AccessKind::Store : AccessKind::Load;
    rec.scope = VarScope::GlobalStructure;
    rec.thread = 1;
    rec.size = 4;
    rec.address = 0x10000 + 8 * i;
    rec.function = fn;
    rec.var = var;
    records.push_back(rec);
  }
  return records;
}

/// Counts batches and on_end calls; optionally records everything.
class ProbeSink final : public TraceSink {
 public:
  void on_record(const TraceRecord& rec) override {
    records.push_back(rec);
  }
  void push_batch(std::span<const TraceRecord> batch) override {
    ++batches;
    records.insert(records.end(), batch.begin(), batch.end());
  }
  void on_end() override { ++ends; }

  std::vector<TraceRecord> records;
  int batches = 0;
  int ends = 0;
};

/// Fails on the nth delivered batch (1-based); on_end throws if `fatal_end`.
class FailingSink final : public TraceSink {
 public:
  explicit FailingSink(int fail_on_batch) : fail_on_(fail_on_batch) {}
  void on_record(const TraceRecord&) override {}
  void push_batch(std::span<const TraceRecord>) override {
    if (++seen_ == fail_on_) throw std::runtime_error("branch sink failed");
  }

 private:
  int fail_on_;
  int seen_ = 0;
};

TEST(ViewGraph, EveryBranchGetsFullStreamAndOneEnd) {
  TraceContext ctx;
  const auto records = make_records(ctx, 10'000);  // > 2 batches
  const View source = View::source_records(ctx, records);

  ProbeSink a;
  ProbeSink b;
  ProbeSink teed;
  const View tee_view = source.tee(teed);

  Graph graph;
  graph.add_sink(source, a);
  graph.add_sink(tee_view, b);
  const GraphResult result = graph.run();

  EXPECT_EQ(result.records, records.size());
  for (const ProbeSink* sink : {&a, &b, &teed}) {
    EXPECT_EQ(sink->records, records);
    EXPECT_EQ(sink->ends, 1);
  }
  EXPECT_GT(a.batches, 1);
}

TEST(ViewGraph, SinkRegisteredTwiceGetsTwoFullStreams) {
  TraceContext ctx;
  const auto records = make_records(ctx, 100);
  const View source = View::source_records(ctx, records);
  ProbeSink sink;
  Graph graph;
  graph.add_sink(source, sink);
  graph.add_sink(source, sink);
  graph.run();
  EXPECT_EQ(sink.records.size(), 2 * records.size());
  EXPECT_EQ(sink.ends, 2);
}

TEST(ViewGraph, IngestHappensOnceRegardlessOfFanOut) {
  TraceContext ctx;
  std::string text = "START PID 7\n";
  for (int i = 0; i < 100; ++i) {
    text += "S 7ff000010 4 main\n";
  }
  text += "END PID 7\n";

  obs::Registry registry("test");
  NullSink a;
  NullSink b;
  NullSink c;
  const View source = View::source_text(ctx, text);
  Graph graph;
  graph.add_sink(source, a);
  graph.add_sink(source, b);
  graph.add_sink(source, c);
  const GraphResult result = graph.run({.registry = &registry});

  EXPECT_EQ(result.records, 100u);
  EXPECT_EQ(result.pid, 7u);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(b.count(), 100u);
  EXPECT_EQ(c.count(), 100u);
  // The reader parsed each record once: fan-out shares batches instead
  // of re-reading, so read.records counts the ingest, not the deliveries.
  EXPECT_EQ(registry.counter("read.records").value(), 100u);
  const StageStats* stats = result.stage("source0");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->records, 100u);
}

TEST(ViewGraph, ErrorInOneBranchPropagates) {
  TraceContext ctx;
  const auto records = make_records(ctx, 10'000);
  const View source = View::source_records(ctx, records);
  ProbeSink before;
  FailingSink failing(2);
  ProbeSink after;
  Graph graph;
  graph.add_sink(source, before);
  graph.add_sink(source, failing);
  graph.add_sink(source, after);
  EXPECT_THROW(graph.run(), std::runtime_error);
  // The sink registered before the failing branch saw the fatal batch;
  // the one after did not — and nobody got a misleading clean on_end.
  EXPECT_EQ(before.batches, 2);
  EXPECT_EQ(after.batches, 1);
  EXPECT_EQ(before.ends, 0);
  EXPECT_EQ(after.ends, 0);
}

TEST(ViewGraph, ErrorInTeeBranchPropagates) {
  TraceContext ctx;
  const auto records = make_records(ctx, 10'000);
  FailingSink failing(1);
  ProbeSink downstream;
  const View source = View::source_records(ctx, records);
  Graph graph;
  graph.add_sink(source.tee(failing), downstream);
  EXPECT_THROW(graph.run(), std::runtime_error);
  EXPECT_EQ(downstream.ends, 0);
}

TEST(ViewGraph, VectorSinkChargedOnceNotPerBranch) {
  TraceContext ctx;
  const auto records = make_records(ctx, 5'000);
  const std::uint64_t bytes = records.size() * sizeof(TraceRecord);

  Governor governor;
  governor.memory.set_limit(bytes);  // exactly one copy fits
  VectorSink buffered(&governor.memory);
  NullSink branch_a;
  NullSink branch_b;

  const View source = View::source_records(ctx, records);
  Graph graph;
  graph.add_sink(source, branch_a);
  graph.add_sink(source, buffered);
  graph.add_sink(source, branch_b);
  // Were the buffer charged per branch this would throw Error{Resource}.
  EXPECT_NO_THROW(graph.run({.governor = &governor}));
  EXPECT_EQ(buffered.records().size(), records.size());
  EXPECT_EQ(governor.memory.used(), bytes);
  EXPECT_EQ(governor.memory.denials(), 0u);
}

TEST(ViewGraph, FilterAndWindowMatchNaiveSemantics) {
  TraceContext ctx;
  const auto records = make_records(ctx, 9'000);
  const View source = View::source_records(ctx, records);

  const auto pred = [](const TraceRecord& rec) {
    return rec.kind == AccessKind::Store;
  };
  std::vector<TraceRecord> expected;
  for (const TraceRecord& rec : records) {
    if (pred(rec)) expected.push_back(rec);
  }
  const std::vector<TraceRecord> filtered = source.filter(pred).collect();
  EXPECT_EQ(filtered, expected);

  const std::vector<TraceRecord> windowed =
      source.window(4'000, 4'100).collect();
  EXPECT_EQ(windowed, std::vector<TraceRecord>(records.begin() + 4'000,
                                               records.begin() + 4'100));
  EXPECT_TRUE(source.window(5, 5).collect().empty());
  EXPECT_TRUE(source.window(9, 3).collect().empty());
  // Window past the end: whatever exists.
  EXPECT_EQ(source.window(8'999, 20'000).collect().size(), 1u);
}

TEST(ViewGraph, SatisfiedWindowStopsTheSourceEarly) {
  TraceContext ctx;
  const auto records = make_records(ctx, 50'000);
  const View source = View::source_records(ctx, records);
  ProbeSink sink;
  const GraphResult result = source.window(0, 10).drain(sink);
  EXPECT_EQ(sink.records.size(), 10u);
  EXPECT_EQ(sink.ends, 1);
  // Lazy cut-off: the source pulled one batch, not all 50k records.
  EXPECT_LT(result.records, records.size());
}

TEST(ViewGraph, SaveWritesTheStreamAlongside) {
  TraceContext ctx;
  const auto records = make_records(ctx, 300);
  const std::string path =
      ::testing::TempDir() + "/view_save_roundtrip.out";
  ViewSaveOptions save_options;
  save_options.pid = 42;
  ProbeSink sink;
  View::source_records(ctx, records)
      .save(path, save_options)
      .drain(sink);
  EXPECT_EQ(sink.records, records);

  // The saved Gleipnir file replays to the identical stream.
  ViewSourceOptions source_options;
  const std::vector<TraceRecord> replayed =
      View::source(ctx, path, source_options).collect();
  EXPECT_EQ(replayed, records);
}

TEST(ViewGraph, PipeStageTransformsAndFlushesTail) {
  TraceContext ctx;
  const auto records = make_records(ctx, 4'100);  // forces two batches

  // Doubles every record and appends one sentinel at end of stream.
  class Doubler final : public ViewStage {
   public:
    void on_batch(std::span<const TraceRecord> in,
                  std::vector<TraceRecord>& out) override {
      for (const TraceRecord& rec : in) {
        out.push_back(rec);
        out.push_back(rec);
      }
    }
    void on_end(std::vector<TraceRecord>& out) override {
      TraceRecord tail;
      tail.address = 0xdead;
      out.push_back(tail);
    }
  };

  TraceContext& ctx_ref = ctx;
  const std::vector<TraceRecord> out =
      View::source_records(ctx_ref, records)
          .pipe([](TraceContext&) { return std::make_unique<Doubler>(); },
                "doubler")
          .collect();
  ASSERT_EQ(out.size(), 2 * records.size() + 1);
  EXPECT_EQ(out[0], records[0]);
  EXPECT_EQ(out[1], records[0]);
  EXPECT_EQ(out.back().address, 0xdeadu);
}

TEST(ViewGraph, IndexedContainerFansOutThroughTheBridge) {
  // A v3 container with a valid frame index reads through the parallel
  // seekable decode bridged into the pull cursor; fan-out still ingests
  // once and every consumer sees the full stream.
  TraceContext ctx;
  const auto records = make_records(ctx, 2'000);
  BinaryWriterOptions options;
  options.version = kTdtbVersionFramed;
  options.frame_records = 64;  // plenty of frames for the workers
  const std::vector<char> blob = write_binary_trace(ctx, records, 9, options);
  const std::string path =
      ::testing::TempDir() + "/view_bridge_indexed.tdtb";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    ASSERT_TRUE(out.good());
  }

  for (const int jobs : {1, 4}) {
    obs::Registry registry("test");
    ViewSourceOptions source_options;
    source_options.jobs = jobs;
    source_options.clamp_jobs = false;
    const View source = View::source(ctx, path, source_options);
    ProbeSink a;
    ProbeSink b;
    Graph graph;
    graph.add_sink(source, a);
    graph.add_sink(source, b);
    const GraphResult result = graph.run({.registry = &registry});
    EXPECT_EQ(result.records, records.size());
    EXPECT_EQ(result.pid, 9u);
    EXPECT_EQ(a.records, records);
    EXPECT_EQ(b.records, records);
    EXPECT_EQ(a.ends, 1);
    EXPECT_EQ(b.ends, 1);
    EXPECT_EQ(registry.counter("read.records").value(), records.size());
  }
  std::filesystem::remove(path);
}

TEST(ViewGraph, InvalidViewThrowsConfigError) {
  View invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.filter([](const TraceRecord&) { return true; }),
               Error);
  NullSink sink;
  Graph graph;
  EXPECT_THROW(graph.add_sink(invalid, sink), Error);
}

TEST(ViewGraph, MissingTraceFileThrowsIoError) {
  TraceContext ctx;
  NullSink sink;
  const View source =
      View::source(ctx, "/nonexistent/trace.out", ViewSourceOptions{});
  try {
    source.drain(sink);
    FAIL() << "expected Error{Io}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

}  // namespace
}  // namespace tdt::trace
