#include "trace/source.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/reader.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

void write_file(const std::filesystem::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  ASSERT_TRUE(out.good());
}

std::string drain_source(ByteSource& src) {
  std::string all;
  for (std::string_view chunk = src.next_chunk(); !chunk.empty();
       chunk = src.next_chunk()) {
    all.append(chunk);
  }
  return all;
}

std::string sample_trace() {
  std::string text = "START PID 42\n";
  for (int i = 0; i < 500; ++i) {
    text += "S 7ff0001b0 8 main LS 0 1 arr[" + std::to_string(i) + "]\n";
    text += "L 7ff0001b8 4 main LV 0 1 i\n";
  }
  text += "END PID 42\n";
  return text;
}

TEST(ByteSourceTest, AllBackendsDeliverIdenticalBytes) {
  const std::string text = sample_trace();
  const auto path = temp_path("tdt_source_equiv.trace");
  write_file(path, text);

  MemorySource mem(text);
  EXPECT_EQ(drain_source(mem), text);
  EXPECT_FALSE(mem.failed());
  EXPECT_EQ(mem.name(), "memory");

  std::istringstream stream_in(text);
  StreamSource stream(stream_in);
  EXPECT_EQ(drain_source(stream), text);
  EXPECT_FALSE(stream.failed());
  EXPECT_EQ(stream.name(), "stream");

  // Tiny blocks force chunk boundaries inside lines.
  std::istringstream small_in(text);
  StreamSource small(small_in, 7);
  EXPECT_EQ(drain_source(small), text);
  EXPECT_FALSE(small.failed());

  auto mmap = MmapSource::open(path.string());
  ASSERT_NE(mmap, nullptr);
  EXPECT_EQ(drain_source(*mmap), text);
  EXPECT_FALSE(mmap->failed());
  EXPECT_EQ(mmap->name(), "mmap");

  // Small mmap chunks must cut at newline boundaries yet lose nothing.
  auto mmap_small = MmapSource::open(path.string(), 64);
  ASSERT_NE(mmap_small, nullptr);
  EXPECT_EQ(drain_source(*mmap_small), text);

  std::istringstream ov_in(text);
  OverlappedSource overlapped(ov_in, 128);
  EXPECT_EQ(drain_source(overlapped), text);
  EXPECT_FALSE(overlapped.failed());
  EXPECT_EQ(overlapped.name(), "overlapped");

  std::filesystem::remove(path);
}

TEST(ByteSourceTest, MmapChunksEndAtNewlines) {
  const std::string text = sample_trace();
  const auto path = temp_path("tdt_source_align.trace");
  write_file(path, text);

  auto mmap = MmapSource::open(path.string(), 256);
  ASSERT_NE(mmap, nullptr);
  std::string all;
  std::string_view chunk;
  std::string_view last;
  for (chunk = mmap->next_chunk(); !chunk.empty();
       chunk = mmap->next_chunk()) {
    last = chunk;
    all.append(chunk);
    if (all.size() < text.size()) {
      EXPECT_EQ(chunk.back(), '\n') << "interior chunk split mid-line";
    }
  }
  EXPECT_EQ(all, text);
  std::filesystem::remove(path);
}

TEST(ByteSourceTest, MmapOpenRefusesMissingAndEmptyFiles) {
  EXPECT_EQ(MmapSource::open("/nonexistent/tdt/no_such.trace"), nullptr);

  const auto path = temp_path("tdt_source_empty.trace");
  write_file(path, "");
  EXPECT_EQ(MmapSource::open(path.string()), nullptr);
  std::filesystem::remove(path);
}

TEST(ByteSourceTest, OpenPicksMmapForRegularFiles) {
  const auto path = temp_path("tdt_source_open.trace");
  write_file(path, sample_trace());

  const auto auto_src = open_trace_byte_source(path.string());
  ASSERT_NE(auto_src, nullptr);
  EXPECT_EQ(auto_src->name(), "mmap");

  const auto stream_src =
      open_trace_byte_source(path.string(), IngestMode::Stream);
  EXPECT_EQ(stream_src->name(), "stream");

  const auto mmap_src = open_trace_byte_source(path.string(), IngestMode::Mmap);
  EXPECT_EQ(mmap_src->name(), "mmap");

  const auto ov_src =
      open_trace_byte_source(path.string(), IngestMode::Overlapped);
  EXPECT_EQ(ov_src->name(), "overlapped");

  std::filesystem::remove(path);
}

TEST(ByteSourceTest, TdtNoMmapForcesStreamFallback) {
  const auto path = temp_path("tdt_source_nommap.trace");
  write_file(path, sample_trace());
  ::setenv("TDT_NO_MMAP", "1", 1);
  const auto src = open_trace_byte_source(path.string());
  ::unsetenv("TDT_NO_MMAP");
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->name(), "stream");
  std::filesystem::remove(path);
}

TEST(ByteSourceTest, OpenErrors) {
  // A missing path is fatal whatever the mode.
  EXPECT_THROW((void)open_trace_byte_source("/nonexistent/tdt/no.trace"),
               Error);
  // Forced mmap on an unmappable (empty) file cannot fall back.
  const auto path = temp_path("tdt_source_forced_empty.trace");
  write_file(path, "");
  EXPECT_THROW(
      (void)open_trace_byte_source(path.string(), IngestMode::Mmap), Error);
  std::filesystem::remove(path);
}

TEST(ByteSourceTest, ReaderRecordsIdenticalAcrossIngestModes) {
  const std::string text = sample_trace();
  const auto path = temp_path("tdt_source_reader.trace");
  write_file(path, text);

  TraceContext ref_ctx;
  std::uint64_t ref_pid = 0;
  const auto ref = read_trace_string(ref_ctx, text, &ref_pid);
  EXPECT_EQ(ref_pid, 42u);

  for (const IngestMode mode : {IngestMode::Stream, IngestMode::Mmap,
                                IngestMode::Overlapped, IngestMode::Auto}) {
    TraceContext ctx;
    GleipnirReader reader(ctx, open_trace_byte_source(path.string(), mode));
    std::vector<TraceRecord> records;
    while (reader.next_batch(records, 256) != 0) {
    }
    ASSERT_EQ(records.size(), ref.size())
        << "mode " << static_cast<int>(mode);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ctx.format_record(records[i]),
                ref_ctx.format_record(ref[i]))
          << "mode " << static_cast<int>(mode) << " record " << i;
    }
    EXPECT_EQ(reader.start_pid(), 42u);
    EXPECT_EQ(reader.counters().bytes, text.size());
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tdt::trace
