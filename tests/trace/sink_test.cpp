#include "trace/sink.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> sample(TraceContext& ctx) {
  return read_trace_string(ctx,
                           "L 000001000 4 main\n"
                           "S 000001004 4 main\n"
                           "M 000001008 4 main\n");
}

TEST(VectorSink, AccumulatesAndTakes) {
  TraceContext ctx;
  VectorSink sink;
  for (const TraceRecord& r : sample(ctx)) sink.on_record(r);
  EXPECT_EQ(sink.records().size(), 3u);
  const auto taken = sink.take();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_TRUE(sink.records().empty());
}

TEST(TeeSink, ForwardsToAllDownstreams) {
  TraceContext ctx;
  VectorSink a, b;
  TeeSink tee({&a, &b});
  for (const TraceRecord& r : sample(ctx)) tee.on_record(r);
  tee.on_end();
  EXPECT_EQ(a.records().size(), 3u);
  EXPECT_EQ(b.records().size(), 3u);
  EXPECT_EQ(a.records()[1], b.records()[1]);
}

TEST(NullSink, CountsAndDiscards) {
  TraceContext ctx;
  NullSink sink;
  for (const TraceRecord& r : sample(ctx)) sink.on_record(r);
  EXPECT_EQ(sink.count(), 3u);
}

TEST(TeeSink, EmptyFanOutIsHarmless) {
  TraceContext ctx;
  TeeSink tee({});
  for (const TraceRecord& r : sample(ctx)) tee.on_record(r);
  tee.on_end();
  SUCCEED();
}

}  // namespace
}  // namespace tdt::trace
