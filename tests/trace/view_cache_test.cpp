// Cache-identity contract: a .cache(N) node never changes bytes — it
// only changes how often upstream work reruns. Every budget shape
// (unlimited, zero, one-batch thrash, governor denial mid-fill) must
// evaluate identically to the uncached chain, and eviction degrades to
// recompute, never to wrong or partial output.
#include <gtest/gtest.h>

#include "trace/view.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> make_records(TraceContext& ctx, std::size_t n) {
  std::vector<TraceRecord> records;
  records.reserve(n);
  const Symbol fn = ctx.intern("main");
  const VarRef var = ctx.parse_var("buf");
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec;
    rec.kind = i % 2 == 0 ? AccessKind::Load : AccessKind::Store;
    rec.scope = VarScope::GlobalStructure;
    rec.thread = 1;
    rec.size = 4;
    rec.address = 0x20000 + 4 * i;
    rec.function = fn;
    rec.var = var;
    records.push_back(rec);
  }
  return records;
}

bool keep_stores(const TraceRecord& rec) {
  return rec.kind == AccessKind::Store;
}

/// Counts upstream evaluations: every time the source re-reads, the
/// filter node reruns and this counter moves.
struct CountingFilter {
  std::uint64_t calls = 0;
  bool operator()(const TraceRecord& rec) {
    ++calls;
    return keep_stores(rec);
  }
};

TEST(ViewCache, UnlimitedBudgetServesSecondRunFromMemo) {
  TraceContext ctx;
  const auto records = make_records(ctx, 10'000);
  const View source = View::source_records(ctx, records);
  auto counter = std::make_shared<CountingFilter>();
  const View cached =
      source.filter([counter](const TraceRecord& rec) {
              return (*counter)(rec);
            })
          .cache(1u << 30);

  const std::vector<TraceRecord> expected =
      source.filter(keep_stores).collect();

  const std::vector<TraceRecord> first = cached.collect();
  EXPECT_EQ(first, expected);
  const std::uint64_t calls_after_first = counter->calls;
  EXPECT_EQ(calls_after_first, records.size());

  // Second evaluation: memo replay, upstream untouched, bytes identical.
  NullSink sink;
  Graph graph;
  graph.add_sink(cached, sink);
  const GraphResult result = graph.run();
  EXPECT_EQ(sink.count(), expected.size());
  EXPECT_EQ(counter->calls, calls_after_first);
  EXPECT_EQ(cached.collect(), expected);

  bool saw_cache_hit = false;
  for (const StageStats& s : result.stages) {
    saw_cache_hit = saw_cache_hit || s.cache_hits > 0;
  }
  EXPECT_TRUE(saw_cache_hit);
}

TEST(ViewCache, ZeroBudgetIsPureRecompute) {
  TraceContext ctx;
  const auto records = make_records(ctx, 10'000);
  const View source = View::source_records(ctx, records);
  auto counter = std::make_shared<CountingFilter>();
  const View cached =
      source.filter([counter](const TraceRecord& rec) {
              return (*counter)(rec);
            })
          .cache(0);

  const std::vector<TraceRecord> expected =
      source.filter(keep_stores).collect();
  EXPECT_EQ(cached.collect(), expected);
  EXPECT_EQ(cached.collect(), expected);
  // Both evaluations walked the full upstream: nothing was retained.
  EXPECT_EQ(counter->calls, 2 * records.size());
}

TEST(ViewCache, OneBatchThrashingBudgetStaysCorrect) {
  TraceContext ctx;
  const auto records = make_records(ctx, 20'000);  // several 4096 batches
  const View source = View::source_records(ctx, records);
  // Budget fits exactly one full batch, so the second batch's charge is
  // denied mid-fill and the memo must spill — and still be correct.
  const View cached = source.cache(4096 * sizeof(TraceRecord));

  const std::vector<TraceRecord> first = cached.collect();
  EXPECT_EQ(first, records);
  const std::vector<TraceRecord> second = cached.collect();
  EXPECT_EQ(second, records);
}

TEST(ViewCache, GovernorDenialDropsMemoAndRecomputes) {
  TraceContext ctx;
  const auto records = make_records(ctx, 20'000);
  const View source = View::source_records(ctx, records);
  const View cached = source.cache(1u << 30);  // own budget is ample

  Governor governor;
  // Room for roughly two batches: the memo starts filling, then the
  // shared budget denies and the partial memo must be dropped (with its
  // charges returned), not served.
  governor.memory.set_limit(2 * 4096 * sizeof(TraceRecord) + 1024);

  VectorSink first_sink;
  cached.drain(first_sink, {.governor = &governor});
  EXPECT_EQ(first_sink.records(), records);
  EXPECT_GT(governor.memory.denials(), 0u);
  // The dropped memo returned every byte it had charged.
  EXPECT_EQ(governor.memory.used(), 0u);

  VectorSink second_sink;
  cached.drain(second_sink, {.governor = &governor});
  EXPECT_EQ(second_sink.records(), records);
}

TEST(ViewCache, MemoChargesReportedInStats) {
  TraceContext ctx;
  const auto records = make_records(ctx, 6'000);
  const View cached = View::source_records(ctx, records).cache(1u << 30);

  VectorSink sink;
  const GraphResult result = cached.drain(sink);
  const std::uint64_t expected_bytes = records.size() * sizeof(TraceRecord);
  bool found = false;
  for (const StageStats& s : result.stages) {
    if (s.cache_bytes != 0) {
      found = true;
      EXPECT_EQ(s.cache_bytes, expected_bytes);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ViewCache, ConsumersAboveTheCacheStillSeeTheSource) {
  TraceContext ctx;
  const auto records = make_records(ctx, 9'000);
  const View source = View::source_records(ctx, records);
  const View cached = source.filter(keep_stores).cache(1u << 30);

  // Warm the memo.
  const std::vector<TraceRecord> filtered = cached.collect();

  // Second run mixes a memo consumer with a raw-source consumer.
  VectorSink raw;
  VectorSink from_cache;
  Graph graph;
  graph.add_sink(source, raw);
  graph.add_sink(cached, from_cache);
  graph.run();
  EXPECT_EQ(raw.records(), records);
  EXPECT_EQ(from_cache.records(), filtered);
}

TEST(ViewCache, DownstreamOfMemoReplaysThroughOperators) {
  TraceContext ctx;
  const auto records = make_records(ctx, 9'000);
  const View cached = View::source_records(ctx, records).cache(1u << 30);
  const View windowed = cached.window(100, 300);

  const std::vector<TraceRecord> expected(records.begin() + 100,
                                          records.begin() + 300);
  EXPECT_EQ(windowed.collect(), expected);  // fills the memo
  EXPECT_EQ(windowed.collect(), expected);  // replays it
}

}  // namespace
}  // namespace tdt::trace
