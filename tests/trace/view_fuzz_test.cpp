// Differential topology fuzz for the view DAG: random graphs of
// transform/filter/window/cache nodes (depth <= 4, fan-out <= 4) over
// randomly shaped structs and record streams, evaluated once through
// Graph::run with every consumer sharing one ingest — then checked
// byte-for-byte against the naive baseline that re-reads and re-applies
// the chain independently per consumer. A second evaluation of the same
// graph re-checks with warm cache memos (replay must also be identical).
//
// The suite/round/record-count macros let the same file run as a small
// deterministic tier-1 round (tests_trace) and a big slow round
// (tests_trace_slow, `LABELS slow`).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rules.hpp"
#include "core/transformer.hpp"
#include "layout/path.hpp"
#include "trace/view.hpp"
#include "util/rng.hpp"

#ifndef TDT_VIEW_FUZZ_SUITE
#define TDT_VIEW_FUZZ_SUITE ViewFuzzSmall
#endif
#ifndef TDT_VIEW_FUZZ_ROUNDS
#define TDT_VIEW_FUZZ_ROUNDS 24
#endif
#ifndef TDT_VIEW_FUZZ_RECORDS
#define TDT_VIEW_FUZZ_RECORDS 3000
#endif

namespace tdt::trace {
namespace {

struct NodeSpec {
  enum class Op : std::uint8_t { Source, Transform, Filter, Window, Cache };
  Op op = Op::Source;
  int parent = -1;
  std::uint64_t lo = 0;      // Window
  std::uint64_t hi = 0;
  std::uint64_t budget = 0;  // Cache
  std::uint64_t fk = 0;      // Filter params
  std::uint64_t fr = 0;
};

/// The filter predicate as pure data, so the DAG node and the naive
/// baseline apply bit-identical logic.
bool filter_keeps(const NodeSpec& spec, const TraceRecord& rec) {
  return (rec.address / 4 + spec.fk) % 5 != spec.fr;
}

class ViewFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ViewFuzz, RandomTopologyMatchesNaiveBaseline) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 1299721 + 17);

  // --- random struct + reorder rules (the transform op's substrate) ---
  layout::TypeTable types;
  const layout::TypeId prims[] = {types.char_type(), types.short_type(),
                                  types.int_type(), types.long_type(),
                                  types.float_type(), types.double_type()};
  const std::size_t nfields = 2 + rng.next_below(5);
  std::vector<layout::PendingField> fields;
  for (std::size_t i = 0; i < nfields; ++i) {
    layout::TypeId t = prims[rng.next_below(6)];
    if (rng.next_below(3) == 0) t = types.array_of(t, 1 + rng.next_below(5));
    fields.push_back({"f" + std::to_string(i), t});
  }
  std::vector<layout::PendingField> shuffled = fields;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  }
  const layout::TypeId in_struct =
      types.define_struct("In" + std::to_string(GetParam()),
                          std::move(fields));
  const layout::TypeId out_struct = types.define_struct(
      "Out" + std::to_string(GetParam()), std::move(shuffled));
  core::RuleSet rules(std::move(types));
  {
    core::StructRule rule;
    rule.in_name = "var";
    rule.in_type = in_struct;
    rule.outs = {{"out", out_struct}};
    rules.add(std::move(rule));
  }
  for (const core::RuleDiagnostic& d : rules.validate()) {
    ASSERT_NE(d.severity, core::RuleDiagnostic::Severity::Error) << d.message;
  }

  // --- random record stream: leaf accesses of the struct, plus noise ---
  trace::TraceContext ctx;
  struct Leaf {
    VarRef var;
    std::uint64_t offset;
    std::uint32_t size;
  };
  std::vector<Leaf> leaves;
  const auto& t = rules.types();
  layout::for_each_leaf(
      t, in_struct,
      [&](const layout::Path& path, std::uint64_t offset,
          layout::TypeId leaf) {
        leaves.push_back(
            {ctx.parse_var("var" +
                           layout::format_path({path.data(), path.size()})),
             offset, static_cast<std::uint32_t>(t.size_of(leaf))});
      });
  ASSERT_FALSE(leaves.empty());
  const Symbol fn = ctx.intern("main");
  const VarRef noise_var = ctx.parse_var("other");
  const std::uint64_t in_base = 0x7ff200000;
  const std::size_t n = TDT_VIEW_FUZZ_RECORDS / 2 +
                        rng.next_below(TDT_VIEW_FUZZ_RECORDS / 2 + 1);
  std::vector<TraceRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec;
    rec.kind = rng.next_below(4) == 0 ? AccessKind::Load : AccessKind::Store;
    rec.thread = 1;
    rec.function = fn;
    if (rng.next_below(5) == 0) {
      rec.scope = VarScope::GlobalVariable;
      rec.var = noise_var;
      rec.size = 8;
      rec.address = 0x600000 + 8 * rng.next_below(64);
    } else {
      const Leaf& leaf = leaves[rng.next_below(leaves.size())];
      rec.scope = VarScope::LocalStructure;
      rec.var = leaf.var;
      rec.size = leaf.size;
      rec.address = in_base + leaf.offset;
    }
    records.push_back(rec);
  }

  // --- random DAG topology: depth <= 4, fan-out <= 4 ---
  std::vector<NodeSpec> specs(1);  // [0] = source
  std::vector<int> depth{0};
  std::vector<int> fanout{0};
  const std::size_t ops = 3 + rng.next_below(6);
  for (std::size_t i = 0; i < ops; ++i) {
    int parent = -1;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int candidate = static_cast<int>(rng.next_below(specs.size()));
      if (depth[candidate] < 4 && fanout[candidate] < 4) {
        parent = candidate;
        break;
      }
    }
    if (parent < 0) break;
    NodeSpec spec;
    spec.parent = parent;
    switch (rng.next_below(4)) {
      case 0:
        spec.op = NodeSpec::Op::Transform;
        break;
      case 1:
        spec.op = NodeSpec::Op::Filter;
        spec.fk = rng.next_below(1000);
        spec.fr = rng.next_below(5);
        break;
      case 2: {
        spec.op = NodeSpec::Op::Window;
        spec.lo = rng.next_below(n + n / 4 + 1);
        spec.hi = rng.next_below(n + n / 4 + 1);
        break;
      }
      default: {
        spec.op = NodeSpec::Op::Cache;
        const std::uint64_t budgets[] = {0, 4096 * sizeof(TraceRecord),
                                         std::uint64_t{1} << 30};
        spec.budget = budgets[rng.next_below(3)];
        break;
      }
    }
    ++fanout[parent];
    depth.push_back(depth[parent] + 1);
    fanout.push_back(0);
    specs.push_back(spec);
  }

  // --- build the views ---
  std::vector<View> views;
  views.push_back(View::source_records(ctx, records));
  for (std::size_t i = 1; i < specs.size(); ++i) {
    const NodeSpec& spec = specs[i];
    const View& up = views[static_cast<std::size_t>(spec.parent)];
    switch (spec.op) {
      case NodeSpec::Op::Transform:
        views.push_back(up.transform(rules));
        break;
      case NodeSpec::Op::Filter:
        views.push_back(up.filter([spec](const TraceRecord& rec) {
          return filter_keeps(spec, rec);
        }));
        break;
      case NodeSpec::Op::Window:
        views.push_back(up.window(spec.lo, spec.hi));
        break;
      default:
        views.push_back(up.cache(spec.budget));
        break;
    }
  }

  // --- naive baseline: re-read + re-apply per consumer, no sharing ---
  std::vector<std::vector<TraceRecord>> naive(specs.size());
  std::vector<bool> have_naive(specs.size(), false);
  naive[0] = records;
  have_naive[0] = true;
  for (std::size_t i = 1; i < specs.size(); ++i) {
    const NodeSpec& spec = specs[i];
    const std::vector<TraceRecord>& up =
        naive[static_cast<std::size_t>(spec.parent)];
    switch (spec.op) {
      case NodeSpec::Op::Transform:
        naive[i] = core::transform_trace(rules, ctx, up);
        break;
      case NodeSpec::Op::Filter:
        for (const TraceRecord& rec : up) {
          if (filter_keeps(spec, rec)) naive[i].push_back(rec);
        }
        break;
      case NodeSpec::Op::Window: {
        const std::uint64_t lo = std::min<std::uint64_t>(spec.lo, up.size());
        const std::uint64_t hi = std::min<std::uint64_t>(
            std::max(spec.lo, spec.hi), up.size());
        naive[i].assign(up.begin() + static_cast<std::ptrdiff_t>(lo),
                        up.begin() + static_cast<std::ptrdiff_t>(hi));
        break;
      }
      default:
        naive[i] = up;  // cache is an identity over bytes
        break;
    }
    have_naive[i] = true;
  }

  // --- sink placement: every leaf, plus a sprinkle of inner nodes ---
  std::vector<bool> sinked(specs.size(), false);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sinked[i] = fanout[i] == 0 || rng.next_below(3) == 0;
  }

  // --- evaluate the DAG twice (cold, then warm memos) ---
  for (int round = 0; round < 2; ++round) {
    std::vector<std::unique_ptr<VectorSink>> sinks(specs.size());
    Graph graph;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!sinked[i]) continue;
      sinks[i] = std::make_unique<VectorSink>();
      graph.add_sink(views[i], *sinks[i]);
    }
    graph.run();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!sinked[i]) continue;
      ASSERT_TRUE(have_naive[i]);
      EXPECT_EQ(sinks[i]->records(), naive[i])
          << "node " << i << " diverged from the naive baseline in round "
          << round << " (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TDT_VIEW_FUZZ_SUITE, ViewFuzz,
                         ::testing::Range(0, TDT_VIEW_FUZZ_ROUNDS));

}  // namespace
}  // namespace tdt::trace
