#include "trace/reader.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::trace {
namespace {

// A fragment of the paper's Listing 2 trace, verbatim.
constexpr const char* kPaperSnippet = R"(START PID 13063
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 7ff0001bc 4 main LV 0 1 lcScalar
S 7ff0001b8 4 main LV 0 1 i
L 7ff0001b8 4 main LV 0 1 i
S 7ff000180 4 main LS 0 1 lcArray[0]
M 7ff0001b8 4 main LV 0 1 i
S 0006010e0 8 foo GS glStructArray[0].dl
S 7ff000060 8 foo LS 1 1 lcStrcArray[0].dl
)";

TEST(Reader, ParsesPaperSnippet) {
  TraceContext ctx;
  std::uint64_t pid = 0;
  const auto records = read_trace_string(ctx, kPaperSnippet, &pid);
  EXPECT_EQ(pid, 13063u);
  ASSERT_EQ(records.size(), 10u);

  EXPECT_EQ(records[0].kind, AccessKind::Store);
  EXPECT_EQ(records[0].address, 0x7ff0001b0u);
  EXPECT_EQ(records[0].size, 8u);
  EXPECT_EQ(ctx.name(records[0].function), "main");
  EXPECT_EQ(records[0].scope, VarScope::LocalVariable);
  EXPECT_EQ(ctx.format_var(records[0].var), "_zzq_result");

  EXPECT_EQ(records[1].scope, VarScope::Unknown);

  EXPECT_EQ(records[2].scope, VarScope::GlobalVariable);
  EXPECT_EQ(ctx.format_var(records[2].var), "glScalar");

  EXPECT_EQ(records[7].kind, AccessKind::Modify);

  EXPECT_EQ(records[8].scope, VarScope::GlobalStructure);
  EXPECT_EQ(ctx.format_var(records[8].var), "glStructArray[0].dl");

  EXPECT_EQ(records[9].frame, 1u);  // foo touching main's local
  EXPECT_EQ(records[9].thread, 1u);
}

TEST(Reader, RoundTripThroughFormat) {
  TraceContext ctx;
  const auto records = read_trace_string(ctx, kPaperSnippet);
  std::istringstream in(kPaperSnippet);
  std::string line;
  std::getline(in, line);  // skip START
  for (const TraceRecord& rec : records) {
    std::getline(in, line);
    EXPECT_EQ(ctx.format_record(rec), line);
  }
}

TEST(Reader, SkipsBlankLines) {
  TraceContext ctx;
  const auto records =
      read_trace_string(ctx, "\nL 7ff000000 4 main\n\n\nL 7ff000004 4 main\n");
  EXPECT_EQ(records.size(), 2u);
}

TEST(Reader, EndMarkerAccepted) {
  TraceContext ctx;
  const auto records = read_trace_string(
      ctx, "START PID 1\nL 7ff000000 4 main\nEND PID 1\n");
  EXPECT_EQ(records.size(), 1u);
}

TEST(Reader, StreamingEventsInOrder) {
  TraceContext ctx;
  std::istringstream in("START PID 9\nL 7ff000000 4 main\nEND PID 9\n");
  GleipnirReader reader(ctx, in);
  auto e1 = reader.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, TraceEvent::Kind::Start);
  EXPECT_EQ(e1->pid, 9u);
  auto e2 = reader.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, TraceEvent::Kind::Record);
  auto e3 = reader.next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, TraceEvent::Kind::End);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Reader, ErrorsCarryLineNumbers) {
  TraceContext ctx;
  try {
    (void)read_trace_string(ctx, "L 7ff000000 4 main\nBAD LINE HERE\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Parse);
    EXPECT_EQ(e.where().line, 2u);
  }
}

TEST(Reader, RejectsMalformedLines) {
  TraceContext ctx;
  // too few fields
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 4\n"), Error);
  // bad kind
  EXPECT_THROW((void)read_trace_string(ctx, "Q 7ff000000 4 main\n"), Error);
  // bad address
  EXPECT_THROW((void)read_trace_string(ctx, "L zzz 4 main\n"), Error);
  // zero size
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 0 main\n"), Error);
  // local scope without frame/thread
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 4 main LV x\n"),
               Error);
  // bad scope
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 4 main ZZ 0 1 v\n"),
               Error);
  // trailing junk
  EXPECT_THROW(
      (void)read_trace_string(ctx, "L 7ff000000 4 main GV glScalar extra\n"),
      Error);
  // malformed marker
  EXPECT_THROW((void)read_trace_string(ctx, "START 123\n"), Error);
  EXPECT_THROW((void)read_trace_string(ctx, "START PID abc\n"), Error);
}

TEST(Reader, MissingFileThrowsIo) {
  TraceContext ctx;
  try {
    (void)read_trace_file(ctx, "/nonexistent/path/trace.out");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

// --- zero-copy fast path vs reference slow path ----------------------------

/// Exercises every record shape: global/local scalar and structure
/// scopes, records without symbol info, selector chains, hex indices,
/// markers and blank lines.
constexpr const char* kMixedCorpus = R"(START PID 77

L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
S 7ff0001bc 4 main LV 0 1 lcScalar
M 7ff000060 8 foo LS 1 2 lcStrcArray[0xa].dl

L 7ff000180 4 main LS 0 1 lcArray[0]
END PID 77
)";

std::vector<TraceRecord> read_slow(TraceContext& ctx, const std::string& text,
                                   DiagEngine* diags = nullptr) {
  std::istringstream in(text);
  GleipnirReader reader(ctx, in, diags);
  reader.force_slow_parse(true);
  std::vector<TraceRecord> records;
  while (auto ev = reader.next()) {
    if (ev->kind == TraceEvent::Kind::Record) {
      records.push_back(std::move(ev->record));
    }
  }
  return records;
}

TEST(Reader, FastAndSlowPathsProduceIdenticalRecords) {
  TraceContext fast_ctx;
  TraceContext slow_ctx;
  const auto fast = read_trace_string(fast_ctx, kMixedCorpus);
  const auto slow = read_slow(slow_ctx, kMixedCorpus);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast_ctx.format_record(fast[i]), slow_ctx.format_record(slow[i]));
    EXPECT_EQ(fast[i].frame, slow[i].frame);
    EXPECT_EQ(fast[i].thread, slow[i].thread);
    EXPECT_EQ(fast[i].scope, slow[i].scope);
  }
}

TEST(Reader, FastAndSlowPathsReportIdenticalDiagnostics) {
  const std::string corpus =
      "L 7ff000000 4 main\n"
      "BAD LINE HERE EXTRA JUNK FIELDS\n"
      "L zzz 4 main\n"
      "L 7ff000004 4 main GV glScalar trailing junk\n"
      "L 7ff000008 4 main\n";
  TraceContext fast_ctx;
  DiagEngine fast_diags(ErrorPolicy::Skip);
  const auto fast = read_trace_string(fast_ctx, corpus, nullptr, &fast_diags);
  TraceContext slow_ctx;
  DiagEngine slow_diags(ErrorPolicy::Skip);
  const auto slow = read_slow(slow_ctx, corpus, &slow_diags);
  ASSERT_EQ(fast.size(), slow.size());
  EXPECT_EQ(fast.size(), 2u);
  EXPECT_EQ(fast_diags.count(DiagCode::TraceBadLine),
            slow_diags.count(DiagCode::TraceBadLine));
  EXPECT_EQ(fast_diags.count(DiagCode::TraceBadLine), 3u);
  EXPECT_EQ(fast_diags.exit_code(), slow_diags.exit_code());
}

TEST(Reader, FastAndSlowPathsRepairIdentically) {
  const std::string corpus =
      "L 7ff000000 4 main LV 0 1 lGood\n"
      "L 7ff000004 4 main LV zz 1 lBroken\n";
  TraceContext fast_ctx;
  DiagEngine fast_diags(ErrorPolicy::Repair);
  const auto fast = read_trace_string(fast_ctx, corpus, nullptr, &fast_diags);
  TraceContext slow_ctx;
  DiagEngine slow_diags(ErrorPolicy::Repair);
  const auto slow = read_slow(slow_ctx, corpus, &slow_diags);
  ASSERT_EQ(fast.size(), 2u);
  ASSERT_EQ(slow.size(), 2u);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast_ctx.format_record(fast[i]), slow_ctx.format_record(slow[i]));
  }
  EXPECT_EQ(fast_diags.count(DiagCode::TraceRepairedLine),
            slow_diags.count(DiagCode::TraceRepairedLine));
  EXPECT_EQ(fast_diags.count(DiagCode::TraceRepairedLine), 1u);
}

TEST(Reader, StringViewModeStreamsEventsInOrder) {
  TraceContext ctx;
  // No trailing newline on the final line.
  GleipnirReader reader(ctx, "START PID 9\nL 7ff000000 4 main\nEND PID 9");
  auto e1 = reader.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, TraceEvent::Kind::Start);
  EXPECT_EQ(e1->pid, 9u);
  auto e2 = reader.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, TraceEvent::Kind::Record);
  EXPECT_EQ(e2->record.address, 0x7ff000000u);
  auto e3 = reader.next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, TraceEvent::Kind::End);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Reader, LongLinesGrowTheBlockBuffer) {
  // A function name far longer than the 256 KiB read block forces the
  // line assembler to double its buffer; the surrounding records must
  // still parse, and line numbers stay right.
  const std::string huge(600 * 1024, 'f');
  const std::string corpus = "L 7ff000000 4 before\nL 7ff000004 4 " + huge +
                             "\nL 7ff000008 4 after\n";
  TraceContext ctx;
  std::istringstream in(corpus);
  GleipnirReader reader(ctx, in);
  std::vector<TraceRecord> records;
  while (auto ev = reader.next()) records.push_back(std::move(ev->record));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(ctx.name(records[0].function), "before");
  EXPECT_EQ(ctx.name(records[1].function), huge);
  EXPECT_EQ(ctx.name(records[2].function), "after");
}

TEST(Reader, ParseRecordLineDirect) {
  TraceContext ctx;
  const TraceRecord rec = GleipnirReader::parse_record_line(
      ctx, "M 7ff000044 4 foo LV 0 1 i", 42);
  EXPECT_EQ(rec.kind, AccessKind::Modify);
  EXPECT_EQ(ctx.name(rec.function), "foo");
  EXPECT_EQ(ctx.format_var(rec.var), "i");
}

// Regression (ISSUE satellite 1): read.bytes over-counted the final line
// by one when the corpus had no trailing newline — the terminator was
// charged whether or not it existed. bytes must equal the input size for
// terminated and unterminated corpora alike, in both ingest modes.
TEST(Reader, BytesMatchInputSizeWithAndWithoutFinalNewline) {
  const std::string terminated =
      "START PID 1\nL 7ff0001b0 8 main\nEND PID 1\n";
  const std::string unterminated =
      "START PID 1\nL 7ff0001b0 8 main\nEND PID 1";

  for (const std::string& corpus : {terminated, unterminated}) {
    // Zero-copy in-memory mode.
    {
      TraceContext ctx;
      GleipnirReader reader(ctx, std::string_view(corpus));
      while (reader.next()) {
      }
      EXPECT_EQ(reader.counters().bytes, corpus.size())
          << "memory mode, corpus size " << corpus.size();
    }
    // Stream mode, with a block size that splits the final line.
    {
      std::istringstream in(corpus);
      TraceContext ctx;
      GleipnirReader reader(ctx, std::make_unique<StreamSource>(in, 16));
      while (reader.next()) {
      }
      EXPECT_EQ(reader.counters().bytes, corpus.size())
          << "stream mode, corpus size " << corpus.size();
    }
  }
}

// Regression (ISSUE satellite 3): CRLF terminators. The '\r' belongs to
// the terminator, not the payload, and the records must come out
// identical to the LF-terminated corpus; bytes still match the input.
TEST(Reader, CrlfCorpusParsesIdenticallyToLf) {
  const std::string lf =
      "START PID 9\n"
      "S 7ff0001b0 8 main LV 0 1 x\n"
      "L 7ff0001b0 8 main\n"
      "S 7ff000180 4 main LS 0 1 a[3]\n"
      "END PID 9\n";
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }

  TraceContext lf_ctx;
  std::uint64_t lf_pid = 0;
  const auto want = read_trace_string(lf_ctx, lf, &lf_pid);

  TraceContext ctx;
  std::uint64_t pid = 0;
  GleipnirReader reader(ctx, std::string_view(crlf));
  std::vector<TraceRecord> got;
  while (auto ev = reader.next()) {
    if (ev->kind == TraceEvent::Kind::Record) {
      got.push_back(std::move(ev->record));
    } else if (ev->kind == TraceEvent::Kind::Start) {
      pid = ev->pid;
    }
  }
  EXPECT_EQ(pid, lf_pid);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(ctx.format_record(got[i]), lf_ctx.format_record(want[i]));
  }
  EXPECT_EQ(reader.counters().bytes, crlf.size());

  // A lone '\r' at end-of-input (no '\n' after it) is payload, not a
  // terminator fragment — the line is malformed, not silently eaten.
  TraceContext cr_ctx;
  EXPECT_THROW((void)read_trace_string(cr_ctx, "L 7ff0001b0 8\r"), Error);
}

// Regression (ISSUE satellite 2): when the source dies mid-stream, the
// buffered partial tail is a torn fragment, not a final line. It must
// never surface as a record, and the T004 diagnostic says it was
// discarded.
TEST(Reader, TornTailAfterIoFailureIsSuppressed) {
  fault::FaultInjector::reset();
  // 48-byte blocks: the first read ends inside the second record line,
  // leaving a syntactically valid prefix ("S 7ff0001c0 4 main GV g")
  // buffered when the second read fails.
  const std::string corpus =
      "START PID 5\n"
      "L 7ff0001b0 8 main\n"
      "S 7ff0001c0 4 main GV glScalar\n"
      "S 7ff0001d0 4 main GV glOther\n"
      "END PID 5\n";
  fault::FaultInjector::install("seed=1;reader.read:1:1");

  std::istringstream in(corpus);
  TraceContext ctx;
  DiagEngine diags(ErrorPolicy::Skip);
  GleipnirReader reader(ctx, std::make_unique<StreamSource>(in, 48), &diags);
  std::vector<TraceRecord> records;
  while (auto ev = reader.next()) {
    if (ev->kind == TraceEvent::Kind::Record) {
      records.push_back(std::move(ev->record));
    }
  }
  fault::FaultInjector::reset();

  // Only the complete line from the delivered block survives; the torn
  // fragment of the second record never became a record.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(ctx.format_record(records[0]), "L 7ff0001b0 8 main");

  EXPECT_EQ(diags.count(DiagCode::TraceIoError), 1u);
  ASSERT_FALSE(diags.retained().empty());
  const Diagnostic& d = diags.retained().front();
  EXPECT_EQ(d.code, DiagCode::TraceIoError);
  EXPECT_NE(d.message.find("partial final line discarded"),
            std::string::npos)
      << d.message;
}

// Strict mode: the same torn read is fatal, and the error message still
// names the discarded fragment.
TEST(Reader, TornTailIsFatalWhenStrict) {
  fault::FaultInjector::reset();
  const std::string corpus =
      "START PID 5\n"
      "L 7ff0001b0 8 main\n"
      "S 7ff0001c0 4 main GV glScalar\n";
  fault::FaultInjector::install("seed=1;reader.read:1:1");

  std::istringstream in(corpus);
  TraceContext ctx;
  GleipnirReader reader(ctx, std::make_unique<StreamSource>(in, 24));
  bool threw = false;
  try {
    while (reader.next()) {
    }
  } catch (const Error& e) {
    threw = true;
    EXPECT_EQ(e.kind(), ErrorKind::Io);
    EXPECT_NE(std::string(e.what()).find("partial final line discarded"),
              std::string::npos)
        << e.what();
  }
  fault::FaultInjector::reset();
  EXPECT_TRUE(threw);
}

// next_batch() is the bulk twin of next(): same records, same order,
// same counters, markers consumed inline.
TEST(Reader, NextBatchMatchesNextEventByEvent) {
  std::string corpus = "START PID 11\n";
  for (int i = 0; i < 300; ++i) {
    corpus += "S 7ff000180 4 main LS 0 1 a[" + std::to_string(i) + "]\n";
    corpus += "L 7ff0001b8 4 main LV 0 1 i\n";
  }
  corpus += "END PID 11\n";

  TraceContext one_ctx;
  std::vector<TraceRecord> one;
  GleipnirReader one_reader(one_ctx, std::string_view(corpus));
  while (auto ev = one_reader.next()) {
    if (ev->kind == TraceEvent::Kind::Record) {
      one.push_back(std::move(ev->record));
    }
  }

  TraceContext batch_ctx;
  std::vector<TraceRecord> batch;
  GleipnirReader batch_reader(batch_ctx, std::string_view(corpus));
  while (batch_reader.next_batch(batch, 97) != 0) {  // odd batch size
  }

  ASSERT_EQ(batch.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(batch_ctx.format_record(batch[i]),
              one_ctx.format_record(one[i]));
  }
  EXPECT_EQ(batch_reader.start_pid(), 11u);
  EXPECT_TRUE(batch_reader.saw_start());
  EXPECT_EQ(batch_reader.counters().bytes, one_reader.counters().bytes);
  EXPECT_EQ(batch_reader.counters().fast_records,
            one_reader.counters().fast_records);
}

}  // namespace
}  // namespace tdt::trace
