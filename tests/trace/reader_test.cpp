#include "trace/reader.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace tdt::trace {
namespace {

// A fragment of the paper's Listing 2 trace, verbatim.
constexpr const char* kPaperSnippet = R"(START PID 13063
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 7ff0001bc 4 main LV 0 1 lcScalar
S 7ff0001b8 4 main LV 0 1 i
L 7ff0001b8 4 main LV 0 1 i
S 7ff000180 4 main LS 0 1 lcArray[0]
M 7ff0001b8 4 main LV 0 1 i
S 0006010e0 8 foo GS glStructArray[0].dl
S 7ff000060 8 foo LS 1 1 lcStrcArray[0].dl
)";

TEST(Reader, ParsesPaperSnippet) {
  TraceContext ctx;
  std::uint64_t pid = 0;
  const auto records = read_trace_string(ctx, kPaperSnippet, &pid);
  EXPECT_EQ(pid, 13063u);
  ASSERT_EQ(records.size(), 10u);

  EXPECT_EQ(records[0].kind, AccessKind::Store);
  EXPECT_EQ(records[0].address, 0x7ff0001b0u);
  EXPECT_EQ(records[0].size, 8u);
  EXPECT_EQ(ctx.name(records[0].function), "main");
  EXPECT_EQ(records[0].scope, VarScope::LocalVariable);
  EXPECT_EQ(ctx.format_var(records[0].var), "_zzq_result");

  EXPECT_EQ(records[1].scope, VarScope::Unknown);

  EXPECT_EQ(records[2].scope, VarScope::GlobalVariable);
  EXPECT_EQ(ctx.format_var(records[2].var), "glScalar");

  EXPECT_EQ(records[7].kind, AccessKind::Modify);

  EXPECT_EQ(records[8].scope, VarScope::GlobalStructure);
  EXPECT_EQ(ctx.format_var(records[8].var), "glStructArray[0].dl");

  EXPECT_EQ(records[9].frame, 1u);  // foo touching main's local
  EXPECT_EQ(records[9].thread, 1u);
}

TEST(Reader, RoundTripThroughFormat) {
  TraceContext ctx;
  const auto records = read_trace_string(ctx, kPaperSnippet);
  std::istringstream in(kPaperSnippet);
  std::string line;
  std::getline(in, line);  // skip START
  for (const TraceRecord& rec : records) {
    std::getline(in, line);
    EXPECT_EQ(ctx.format_record(rec), line);
  }
}

TEST(Reader, SkipsBlankLines) {
  TraceContext ctx;
  const auto records =
      read_trace_string(ctx, "\nL 7ff000000 4 main\n\n\nL 7ff000004 4 main\n");
  EXPECT_EQ(records.size(), 2u);
}

TEST(Reader, EndMarkerAccepted) {
  TraceContext ctx;
  const auto records = read_trace_string(
      ctx, "START PID 1\nL 7ff000000 4 main\nEND PID 1\n");
  EXPECT_EQ(records.size(), 1u);
}

TEST(Reader, StreamingEventsInOrder) {
  TraceContext ctx;
  std::istringstream in("START PID 9\nL 7ff000000 4 main\nEND PID 9\n");
  GleipnirReader reader(ctx, in);
  auto e1 = reader.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, TraceEvent::Kind::Start);
  EXPECT_EQ(e1->pid, 9u);
  auto e2 = reader.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, TraceEvent::Kind::Record);
  auto e3 = reader.next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, TraceEvent::Kind::End);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Reader, ErrorsCarryLineNumbers) {
  TraceContext ctx;
  try {
    (void)read_trace_string(ctx, "L 7ff000000 4 main\nBAD LINE HERE\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Parse);
    EXPECT_EQ(e.where().line, 2u);
  }
}

TEST(Reader, RejectsMalformedLines) {
  TraceContext ctx;
  // too few fields
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 4\n"), Error);
  // bad kind
  EXPECT_THROW((void)read_trace_string(ctx, "Q 7ff000000 4 main\n"), Error);
  // bad address
  EXPECT_THROW((void)read_trace_string(ctx, "L zzz 4 main\n"), Error);
  // zero size
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 0 main\n"), Error);
  // local scope without frame/thread
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 4 main LV x\n"),
               Error);
  // bad scope
  EXPECT_THROW((void)read_trace_string(ctx, "L 7ff000000 4 main ZZ 0 1 v\n"),
               Error);
  // trailing junk
  EXPECT_THROW(
      (void)read_trace_string(ctx, "L 7ff000000 4 main GV glScalar extra\n"),
      Error);
  // malformed marker
  EXPECT_THROW((void)read_trace_string(ctx, "START 123\n"), Error);
  EXPECT_THROW((void)read_trace_string(ctx, "START PID abc\n"), Error);
}

TEST(Reader, MissingFileThrowsIo) {
  TraceContext ctx;
  try {
    (void)read_trace_file(ctx, "/nonexistent/path/trace.out");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

// --- zero-copy fast path vs reference slow path ----------------------------

/// Exercises every record shape: global/local scalar and structure
/// scopes, records without symbol info, selector chains, hex indices,
/// markers and blank lines.
constexpr const char* kMixedCorpus = R"(START PID 77

L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
S 7ff0001bc 4 main LV 0 1 lcScalar
M 7ff000060 8 foo LS 1 2 lcStrcArray[0xa].dl

L 7ff000180 4 main LS 0 1 lcArray[0]
END PID 77
)";

std::vector<TraceRecord> read_slow(TraceContext& ctx, const std::string& text,
                                   DiagEngine* diags = nullptr) {
  std::istringstream in(text);
  GleipnirReader reader(ctx, in, diags);
  reader.force_slow_parse(true);
  std::vector<TraceRecord> records;
  while (auto ev = reader.next()) {
    if (ev->kind == TraceEvent::Kind::Record) {
      records.push_back(std::move(ev->record));
    }
  }
  return records;
}

TEST(Reader, FastAndSlowPathsProduceIdenticalRecords) {
  TraceContext fast_ctx;
  TraceContext slow_ctx;
  const auto fast = read_trace_string(fast_ctx, kMixedCorpus);
  const auto slow = read_slow(slow_ctx, kMixedCorpus);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast_ctx.format_record(fast[i]), slow_ctx.format_record(slow[i]));
    EXPECT_EQ(fast[i].frame, slow[i].frame);
    EXPECT_EQ(fast[i].thread, slow[i].thread);
    EXPECT_EQ(fast[i].scope, slow[i].scope);
  }
}

TEST(Reader, FastAndSlowPathsReportIdenticalDiagnostics) {
  const std::string corpus =
      "L 7ff000000 4 main\n"
      "BAD LINE HERE EXTRA JUNK FIELDS\n"
      "L zzz 4 main\n"
      "L 7ff000004 4 main GV glScalar trailing junk\n"
      "L 7ff000008 4 main\n";
  TraceContext fast_ctx;
  DiagEngine fast_diags(ErrorPolicy::Skip);
  const auto fast = read_trace_string(fast_ctx, corpus, nullptr, &fast_diags);
  TraceContext slow_ctx;
  DiagEngine slow_diags(ErrorPolicy::Skip);
  const auto slow = read_slow(slow_ctx, corpus, &slow_diags);
  ASSERT_EQ(fast.size(), slow.size());
  EXPECT_EQ(fast.size(), 2u);
  EXPECT_EQ(fast_diags.count(DiagCode::TraceBadLine),
            slow_diags.count(DiagCode::TraceBadLine));
  EXPECT_EQ(fast_diags.count(DiagCode::TraceBadLine), 3u);
  EXPECT_EQ(fast_diags.exit_code(), slow_diags.exit_code());
}

TEST(Reader, FastAndSlowPathsRepairIdentically) {
  const std::string corpus =
      "L 7ff000000 4 main LV 0 1 lGood\n"
      "L 7ff000004 4 main LV zz 1 lBroken\n";
  TraceContext fast_ctx;
  DiagEngine fast_diags(ErrorPolicy::Repair);
  const auto fast = read_trace_string(fast_ctx, corpus, nullptr, &fast_diags);
  TraceContext slow_ctx;
  DiagEngine slow_diags(ErrorPolicy::Repair);
  const auto slow = read_slow(slow_ctx, corpus, &slow_diags);
  ASSERT_EQ(fast.size(), 2u);
  ASSERT_EQ(slow.size(), 2u);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast_ctx.format_record(fast[i]), slow_ctx.format_record(slow[i]));
  }
  EXPECT_EQ(fast_diags.count(DiagCode::TraceRepairedLine),
            slow_diags.count(DiagCode::TraceRepairedLine));
  EXPECT_EQ(fast_diags.count(DiagCode::TraceRepairedLine), 1u);
}

TEST(Reader, StringViewModeStreamsEventsInOrder) {
  TraceContext ctx;
  // No trailing newline on the final line.
  GleipnirReader reader(ctx, "START PID 9\nL 7ff000000 4 main\nEND PID 9");
  auto e1 = reader.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, TraceEvent::Kind::Start);
  EXPECT_EQ(e1->pid, 9u);
  auto e2 = reader.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, TraceEvent::Kind::Record);
  EXPECT_EQ(e2->record.address, 0x7ff000000u);
  auto e3 = reader.next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, TraceEvent::Kind::End);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Reader, LongLinesGrowTheBlockBuffer) {
  // A function name far longer than the 256 KiB read block forces the
  // line assembler to double its buffer; the surrounding records must
  // still parse, and line numbers stay right.
  const std::string huge(600 * 1024, 'f');
  const std::string corpus = "L 7ff000000 4 before\nL 7ff000004 4 " + huge +
                             "\nL 7ff000008 4 after\n";
  TraceContext ctx;
  std::istringstream in(corpus);
  GleipnirReader reader(ctx, in);
  std::vector<TraceRecord> records;
  while (auto ev = reader.next()) records.push_back(std::move(ev->record));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(ctx.name(records[0].function), "before");
  EXPECT_EQ(ctx.name(records[1].function), huge);
  EXPECT_EQ(ctx.name(records[2].function), "after");
}

TEST(Reader, ParseRecordLineDirect) {
  TraceContext ctx;
  const TraceRecord rec = GleipnirReader::parse_record_line(
      ctx, "M 7ff000044 4 foo LV 0 1 i", 42);
  EXPECT_EQ(rec.kind, AccessKind::Modify);
  EXPECT_EQ(ctx.name(rec.function), "foo");
  EXPECT_EQ(ctx.format_var(rec.var), "i");
}

}  // namespace
}  // namespace tdt::trace
