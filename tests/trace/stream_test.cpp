#include "trace/stream.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/binary.hpp"
#include "trace/codec.hpp"
#include "trace/reader.hpp"
#include "trace/sink.hpp"
#include "trace/writer.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/obs.hpp"

namespace tdt::trace {
namespace {

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

void write_file(const std::filesystem::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Enough records for a healthy frame count at frame_records=16, with
// per-frame symbol churn so v3 string redefinition is exercised.
std::vector<TraceRecord> big_records(TraceContext& ctx, std::size_t n) {
  std::vector<TraceRecord> out;
  out.reserve(n);
  TraceRecord rec;
  rec.size = 8;
  for (std::size_t i = 0; i < n; ++i) {
    rec.kind = i % 3 == 0 ? AccessKind::Store : AccessKind::Load;
    rec.address = 0x7ff0000000ull + i * 16;
    rec.function = ctx.intern("fn_" + std::to_string(i % 17));
    out.push_back(rec);
  }
  return out;
}

std::vector<std::string> formatted(TraceContext& ctx,
                                   const std::vector<TraceRecord>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const TraceRecord& r : records) out.push_back(ctx.format_record(r));
  return out;
}

/// Streams `path` with the given job count and returns formatted
/// records. `clamp` false forces the threaded decode pipeline even on
/// single-core hosts, so the concurrent path is exercised everywhere.
std::vector<std::string> stream_formatted(const std::filesystem::path& path,
                                          int jobs, DiagEngine* diags,
                                          obs::Registry* registry = nullptr,
                                          bool clamp = true) {
  TraceContext ctx;
  VectorSink sink;
  StreamOptions options;
  options.diags = diags;
  options.registry = registry;
  options.jobs = jobs;
  options.clamp_jobs = clamp;
  (void)stream_trace_file(ctx, path.string(), sink, options);
  return formatted(ctx, sink.records());
}

TEST(StreamV3, ParallelDecodeIsByteIdenticalToSequential) {
  TraceContext ctx;
  const auto records = big_records(ctx, 400);
  BinaryWriterOptions options;
  options.version = kTdtbVersionFramed;
  options.frame_records = 16;  // 25 frames
  for (const Codec codec : {Codec::None, Codec::Zstd, Codec::Lz4}) {
    if (!codec_available(codec)) continue;
    options.codec = codec;
    const auto blob = write_binary_trace(ctx, records, 1, options);
    const auto path = temp_path("tdt_stream_par.tdtb");
    write_file(path, std::string_view(blob.data(), blob.size()));

    obs::Registry seq_reg("test");
    DiagEngine seq_diags(ErrorPolicy::Strict);
    const auto seq = stream_formatted(path, 1, &seq_diags, &seq_reg);
    ASSERT_EQ(seq.size(), records.size()) << codec_name(codec);
    EXPECT_EQ(seq_reg.counter("read.frames").value(), 25u);
    if (codec != Codec::None) {
      EXPECT_GT(seq_reg.counter("read.compressed_bytes").value(), 0u);
      EXPECT_LT(seq_reg.counter("read.compressed_bytes").value(), blob.size());
    }

    for (const int jobs : {2, 4, 8}) {
      for (const bool clamp : {true, false}) {
        obs::Registry par_reg("test");
        DiagEngine par_diags(ErrorPolicy::Strict);
        const auto par =
            stream_formatted(path, jobs, &par_diags, &par_reg, clamp);
        EXPECT_EQ(par, seq) << codec_name(codec) << " jobs=" << jobs
                            << " clamp=" << clamp;
        EXPECT_EQ(par_reg.counter("read.frames").value(), 25u);
        EXPECT_EQ(par_reg.counter("read.records").value(), records.size());
      }
    }
    std::filesystem::remove(path);
  }
}

TEST(StreamV3, ParallelRepairMatchesSequentialRepair) {
  TraceContext ctx;
  const auto records = big_records(ctx, 400);
  BinaryWriterOptions options;
  options.version = kTdtbVersionFramed;
  options.frame_records = 16;
  const auto blob = write_binary_trace(ctx, records, 1, options);
  std::string bytes(blob.begin(), blob.end());
  const auto info = probe_tdtb(bytes);
  ASSERT_TRUE(info.has_value());
  ASSERT_GE(info->frames.size(), 10u);
  std::uint64_t payload_off = 0;
  ASSERT_TRUE(
      parse_frame_header(bytes, info->frames[7].offset, &payload_off)
          .has_value());
  bytes[static_cast<std::size_t>(payload_off)] ^= 0x01;
  const auto path = temp_path("tdt_stream_repair.tdtb");
  write_file(path, bytes);

  // Strict parallel decode throws just like the sequential reader.
  {
    TraceContext c;
    VectorSink sink;
    StreamOptions so;
    so.jobs = 4;
    so.clamp_jobs = false;
    EXPECT_THROW((void)stream_trace_file(c, path.string(), sink, so), Error);
  }

  DiagEngine seq_diags(ErrorPolicy::Repair);
  const auto seq = stream_formatted(path, 1, &seq_diags);
  EXPECT_EQ(seq.size(), records.size() - 16);  // one frame dropped
  EXPECT_EQ(seq_diags.count(DiagCode::BinFrameCorrupt), 1u);

  DiagEngine par_diags(ErrorPolicy::Repair);
  const auto par =
      stream_formatted(path, 4, &par_diags, nullptr, /*clamp=*/false);
  EXPECT_EQ(par, seq);
  EXPECT_EQ(par_diags.count(DiagCode::BinFrameCorrupt), 1u);

  // Skip: both decoders salvage the frames before the corruption.
  DiagEngine seq_skip(ErrorPolicy::Skip);
  const auto seq_skipped = stream_formatted(path, 1, &seq_skip);
  DiagEngine par_skip(ErrorPolicy::Skip);
  const auto par_skipped =
      stream_formatted(path, 4, &par_skip, nullptr, /*clamp=*/false);
  EXPECT_EQ(seq_skipped.size(), 7u * 16u);
  EXPECT_EQ(par_skipped, seq_skipped);
  std::filesystem::remove(path);
}

TEST(StreamV3, InvalidIndexFallsBackToSequential) {
  TraceContext ctx;
  const auto records = big_records(ctx, 100);
  BinaryWriterOptions options;
  options.version = kTdtbVersionFramed;
  options.frame_records = 16;
  const auto blob = write_binary_trace(ctx, records, 1, options);
  std::string bytes(blob.begin(), blob.end());
  bytes[bytes.size() - 8] ^= 0x11;  // corrupt the stored index CRC
  const auto path = temp_path("tdt_stream_badindex.tdtb");
  write_file(path, bytes);

  // jobs=4 has no valid index to parallelize over; the sequential
  // fallback still decodes every record and reports the bad index.
  DiagEngine diags(ErrorPolicy::Skip);
  const auto got = stream_formatted(path, 4, &diags);
  EXPECT_EQ(got.size(), records.size());
  EXPECT_EQ(diags.count(DiagCode::BinBadIndex), 1u);
  std::filesystem::remove(path);
}

TEST(StreamGz, GzipTextIngestMatchesPlain) {
  if (!gzip_available()) {
    GTEST_LOG_(INFO) << "zlib not built in; skipping";
    return;
  }
  TraceContext ctx;
  const auto records = big_records(ctx, 200);
  const std::string text = write_trace_string(ctx, records);
  const auto plain_path = temp_path("tdt_stream_text.out");
  write_file(plain_path, text);
  std::string gz;
  ASSERT_TRUE(gzip_compress(text, gz));
  const auto gz_path = temp_path("tdt_stream_text.out.gz");
  write_file(gz_path, gz);
  ASSERT_LT(slurp(gz_path).size(), text.size());

  DiagEngine plain_diags(ErrorPolicy::Strict);
  const auto from_plain = stream_formatted(plain_path, 1, &plain_diags);
  DiagEngine gz_diags(ErrorPolicy::Strict);
  const auto from_gz = stream_formatted(gz_path, 1, &gz_diags);
  EXPECT_EQ(from_gz, from_plain);
  EXPECT_EQ(from_gz.size(), records.size());
  std::filesystem::remove(plain_path);
  std::filesystem::remove(gz_path);
}

}  // namespace
}  // namespace tdt::trace
