// Property / differential fuzz coverage for the ingest fast path
// (ISSUE satellite): random whitespace runs and field shapes through
// every SIMD tier vs the scalar reference, and whole traces pushed
// through tiny-block sources so lines straddle chunk boundaries.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/reader.hpp"
#include "trace/source.hpp"
#include "util/rng.hpp"
#include "util/simd_scan.hpp"
#include "util/string_util.hpp"

namespace tdt {
namespace {

constexpr char kWs[] = {' ', '\t', '\r', '\n', '\x0b', '\x0c'};
constexpr char kField[] = "abcXYZ019_.[]";

std::string random_line(Xoshiro256& rng) {
  std::string line;
  const std::size_t fields = rng.next_below(10);  // 0..9
  if (rng.next_below(2) != 0) {  // optional leading whitespace run
    for (std::size_t k = rng.next_below(4) + 1; k > 0; --k)
      line += kWs[rng.next_below(sizeof kWs)];
  }
  for (std::size_t f = 0; f < fields; ++f) {
    for (std::size_t k = rng.next_below(12) + 1; k > 0; --k)
      line += kField[rng.next_below(sizeof kField - 1)];
    if (f + 1 < fields || rng.next_below(2) != 0) {
      for (std::size_t k = rng.next_below(4) + 1; k > 0; --k)
        line += kWs[rng.next_below(sizeof kWs)];
    }
  }
  // Occasionally pad to land a field edge on the 64-byte word boundary.
  if (rng.next_below(8) == 0 && line.size() < 70) {
    line.insert(0, 64 - (line.size() % 64), 'p');
  }
  return line;
}

/// Reference tokenizer (independent scalar walk over is_ascii_space).
int reference_tokenize(std::string_view line, simd::FieldSpan* out,
                       std::size_t max_fields) {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && is_ascii_space(line[i])) ++i;
    if (i >= line.size()) break;
    const std::size_t begin = i;
    while (i < line.size() && !is_ascii_space(line[i])) ++i;
    if (count == max_fields) return -1;
    out[count++] = {static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(i)};
  }
  return static_cast<int>(count);
}

class TokenizerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = simd::active_tier(); }
  void TearDown() override { simd::set_active_tier(saved_); }

 private:
  simd::Tier saved_ = simd::Tier::Scalar;
};

TEST_F(TokenizerFuzzTest, RandomLinesMatchScalarReferenceOnEveryTier) {
  std::vector<simd::Tier> tiers = {simd::Tier::Scalar};
  if (simd::best_supported_tier() >= simd::Tier::Sse2)
    tiers.push_back(simd::Tier::Sse2);
  if (simd::best_supported_tier() >= simd::Tier::Avx2)
    tiers.push_back(simd::Tier::Avx2);

  Xoshiro256 rng(0x7d7);
  for (int iter = 0; iter < 40000; ++iter) {
    std::string line = random_line(rng);
    // Newlines inside a line never reach the tokenizer in production,
    // but the contract treats them as plain whitespace; keep them.
    constexpr std::size_t kMax = 9;
    simd::FieldSpan want[kMax] = {};
    const int rc_want = reference_tokenize(line, want, kMax);
    for (const simd::Tier t : tiers) {
      ASSERT_EQ(simd::set_active_tier(t), t);
      simd::FieldSpan got[kMax] = {};
      const int rc_got = simd::tokenize_fields(line, got, kMax);
      ASSERT_EQ(rc_got, rc_want)
          << simd::tier_name(t) << " iter " << iter << " [" << line << "]";
      const std::size_t n =
          rc_want < 0 ? kMax : static_cast<std::size_t>(rc_want);
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(got[k].begin, want[k].begin)
            << simd::tier_name(t) << " iter " << iter;
        ASSERT_EQ(got[k].end, want[k].end)
            << simd::tier_name(t) << " iter " << iter;
      }
    }
  }
}

std::string random_trace(Xoshiro256& rng, std::size_t lines) {
  std::string text = "START PID 7\n";
  for (std::size_t i = 0; i < lines; ++i) {
    switch (rng.next_below(4)) {
      case 0:
        text += "L 7feff3ffc 4 main LV 0 1 lI\n";
        break;
      case 1:
        text += "M 7feff3ffc 4 main LV 0 1 lI\n";
        break;
      case 2:
        text += "S " + std::to_string(0x7feff4000 + rng.next_below(1 << 20)) +
                " 4 main LS 0 1 lSoA.mX[" + std::to_string(i) + "]\n";
        break;
      default:
        text += "S 000601040 4 fn" + std::to_string(rng.next_below(5)) +
                " GV glScalar\n";
        break;
    }
  }
  text += "END PID 7\n";
  return text;
}

TEST_F(TokenizerFuzzTest, TinyBlocksStraddlingLinesParseIdentically) {
  Xoshiro256 rng(2026);
  for (int round = 0; round < 30; ++round) {
    const std::string text = random_trace(rng, 200 + rng.next_below(200));

    trace::TraceContext ref_ctx;
    const auto ref = trace::read_trace_string(ref_ctx, text);

    // Block sizes chosen to split lines at every possible offset class,
    // including 1 (every byte its own chunk).
    for (const std::size_t block : {1u, 2u, 3u, 7u, 13u, 64u, 257u}) {
      std::istringstream in(text);
      trace::TraceContext ctx;
      trace::GleipnirReader reader(
          ctx, std::make_unique<trace::StreamSource>(in, block));
      std::vector<trace::TraceRecord> records;
      while (reader.next_batch(records, 128) != 0) {
      }
      ASSERT_EQ(records.size(), ref.size())
          << "round " << round << " block " << block;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ctx.format_record(records[i]),
                  ref_ctx.format_record(ref[i]))
            << "round " << round << " block " << block << " record " << i;
      }
      ASSERT_EQ(reader.counters().bytes, text.size());
    }
  }
}

TEST_F(TokenizerFuzzTest, ScalarAndSimdTiersProduceIdenticalRecords) {
  if (simd::best_supported_tier() == simd::Tier::Scalar) {
    GTEST_SKIP() << "no SIMD tier on this machine";
  }
  Xoshiro256 rng(99);
  const std::string text = random_trace(rng, 2000);

  ASSERT_EQ(simd::set_active_tier(simd::Tier::Scalar), simd::Tier::Scalar);
  trace::TraceContext scalar_ctx;
  const auto scalar = trace::read_trace_string(scalar_ctx, text);

  simd::set_active_tier(simd::best_supported_tier());
  trace::TraceContext simd_ctx;
  const auto vec = trace::read_trace_string(simd_ctx, text);

  ASSERT_EQ(scalar.size(), vec.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar_ctx.format_record(scalar[i]),
              simd_ctx.format_record(vec[i]))
        << "record " << i;
  }
}

}  // namespace
}  // namespace tdt
