#include "trace/binary.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> sample_records(TraceContext& ctx) {
  const char* text = R"(START PID 1
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
M 7ff000044 4 foo LV 0 1 i
S 7ff000060 8 foo LS 1 1 lcStrcArray[0].dl
L 7ff000030 8 foo LV 0 1 StrcParam
)";
  return read_trace_string(ctx, text);
}

TEST(Binary, RoundTripPreservesEverything) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 4242);

  TraceContext ctx2;
  std::uint64_t pid = 0;
  const auto parsed = read_binary_trace(ctx2, blob, &pid);
  EXPECT_EQ(pid, 4242u);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]))
        << "record " << i;
  }
}

TEST(Binary, EmptyTraceRoundTrips) {
  TraceContext ctx;
  const auto blob = write_binary_trace(ctx, {}, 7);
  TraceContext ctx2;
  std::uint64_t pid = 0;
  EXPECT_TRUE(read_binary_trace(ctx2, blob, &pid).empty());
  EXPECT_EQ(pid, 7u);
}

TEST(Binary, IsSubstantiallySmallerThanText) {
  TraceContext ctx;
  std::vector<TraceRecord> records;
  const auto base = sample_records(ctx);
  for (int i = 0; i < 200; ++i) {
    for (const TraceRecord& r : base) records.push_back(r);
  }
  const auto blob = write_binary_trace(ctx, records);
  const std::string text = write_trace_string(ctx, records);
  EXPECT_LT(blob.size() * 2, text.size());
}

TEST(Binary, StringsEmittedOnce) {
  TraceContext ctx;
  std::vector<TraceRecord> records;
  TraceRecord rec;
  rec.kind = AccessKind::Load;
  rec.size = 4;
  rec.function = ctx.intern("very_long_function_name_repeated");
  for (int i = 0; i < 100; ++i) {
    rec.address = static_cast<std::uint64_t>(i);
    records.push_back(rec);
  }
  const auto blob = write_binary_trace(ctx, records);
  // 100 records * ~8 bytes + one string definition; far below 100 copies
  // of the 33-char name.
  EXPECT_LT(blob.size(), 100 * 33 / 2);
}

TEST(Binary, BadMagicRejected) {
  TraceContext ctx;
  const std::vector<char> junk{'N', 'O', 'P', 'E', 1, 0, 2};
  EXPECT_THROW((void)read_binary_trace(ctx, junk), Error);
}

TEST(Binary, TruncatedBlobRejected) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records);
  blob.resize(blob.size() / 2);
  TraceContext ctx2;
  EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
}

TEST(Binary, MissingEndMarkerRejected) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  blob.pop_back();  // drop the end tag
  TraceContext ctx2;
  EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
}

TEST(Binary, StreamingWriterMatchesOneShot) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, 4242);
  for (const TraceRecord& r : records) w.write(r);
  w.finish();
  const std::string s = out.str();
  const auto oneshot = write_binary_trace(ctx, records, 4242);
  ASSERT_EQ(s.size(), oneshot.size());
  EXPECT_TRUE(std::equal(s.begin(), s.end(), oneshot.begin()));
}

TEST(Binary, LargeAddressesSurvive) {
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Store;
  rec.address = 0xFFFFFFFFFFFFFFFFull;
  rec.size = 0x80000001u;
  rec.function = ctx.intern("f");
  const auto blob = write_binary_trace(ctx, {&rec, 1});
  TraceContext ctx2;
  const auto parsed = read_binary_trace(ctx2, blob);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].address, rec.address);
  EXPECT_EQ(parsed[0].size, rec.size);
}

}  // namespace
}  // namespace tdt::trace
