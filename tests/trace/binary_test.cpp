#include "trace/binary.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> sample_records(TraceContext& ctx) {
  const char* text = R"(START PID 1
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
M 7ff000044 4 foo LV 0 1 i
S 7ff000060 8 foo LS 1 1 lcStrcArray[0].dl
L 7ff000030 8 foo LV 0 1 StrcParam
)";
  return read_trace_string(ctx, text);
}

TEST(Binary, RoundTripPreservesEverything) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 4242);

  TraceContext ctx2;
  std::uint64_t pid = 0;
  const auto parsed = read_binary_trace(ctx2, blob, &pid);
  EXPECT_EQ(pid, 4242u);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]))
        << "record " << i;
  }
}

TEST(Binary, EmptyTraceRoundTrips) {
  TraceContext ctx;
  const auto blob = write_binary_trace(ctx, {}, 7);
  TraceContext ctx2;
  std::uint64_t pid = 0;
  EXPECT_TRUE(read_binary_trace(ctx2, blob, &pid).empty());
  EXPECT_EQ(pid, 7u);
}

TEST(Binary, IsSubstantiallySmallerThanText) {
  TraceContext ctx;
  std::vector<TraceRecord> records;
  const auto base = sample_records(ctx);
  for (int i = 0; i < 200; ++i) {
    for (const TraceRecord& r : base) records.push_back(r);
  }
  const auto blob = write_binary_trace(ctx, records);
  const std::string text = write_trace_string(ctx, records);
  EXPECT_LT(blob.size() * 2, text.size());
}

TEST(Binary, StringsEmittedOnce) {
  TraceContext ctx;
  std::vector<TraceRecord> records;
  TraceRecord rec;
  rec.kind = AccessKind::Load;
  rec.size = 4;
  rec.function = ctx.intern("very_long_function_name_repeated");
  for (int i = 0; i < 100; ++i) {
    rec.address = static_cast<std::uint64_t>(i);
    records.push_back(rec);
  }
  const auto blob = write_binary_trace(ctx, records);
  // 100 records * ~8 bytes + one string definition; far below 100 copies
  // of the 33-char name.
  EXPECT_LT(blob.size(), 100 * 33 / 2);
}

TEST(Binary, BadMagicRejected) {
  TraceContext ctx;
  const std::vector<char> junk{'N', 'O', 'P', 'E', 1, 0, 2};
  EXPECT_THROW((void)read_binary_trace(ctx, junk), Error);
}

TEST(Binary, TruncatedBlobRejected) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records);
  blob.resize(blob.size() / 2);
  TraceContext ctx2;
  EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
}

TEST(Binary, MissingEndMarkerRejected) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  blob.pop_back();  // drop the end tag
  TraceContext ctx2;
  EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
}

TEST(Binary, StreamingWriterMatchesOneShot) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, 4242);
  for (const TraceRecord& r : records) w.write(r);
  w.finish();
  const std::string s = out.str();
  const auto oneshot = write_binary_trace(ctx, records, 4242);
  ASSERT_EQ(s.size(), oneshot.size());
  EXPECT_TRUE(std::equal(s.begin(), s.end(), oneshot.begin()));
}

TEST(Binary, V1BlobStillDecodes) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 99, /*version=*/1);

  TraceContext ctx2;
  std::uint64_t pid = 0;
  const auto parsed = read_binary_trace(ctx2, blob, &pid);
  EXPECT_EQ(pid, 99u);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]));
  }
}

TEST(Binary, V2FooterAddsTwelveBytes) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto v1 = write_binary_trace(ctx, records, 0, /*version=*/1);
  const auto v2 = write_binary_trace(ctx, records, 0, /*version=*/2);
  EXPECT_EQ(v2.size(), v1.size() + 12);
}

TEST(Binary, FooterDetectsBitFlip) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  // Flip a byte inside the "main" string payload: the blob stays
  // structurally valid (same length), only the CRC can notice.
  const char needle[] = {'m', 'a', 'i', 'n'};
  const auto it = std::search(blob.begin(), blob.end(), std::begin(needle),
                              std::end(needle));
  ASSERT_NE(it, blob.end());
  *it = 'w';

  // Strict: throws.
  {
    TraceContext ctx2;
    EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
  }
  // Skip: records are salvaged, the corruption is reported and counted.
  {
    TraceContext ctx2;
    DiagEngine diags(ErrorPolicy::Skip);
    const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
    EXPECT_EQ(parsed.size(), sample_records(ctx).size());
    EXPECT_EQ(diags.count(DiagCode::BinCrcMismatch), 1u);
    EXPECT_EQ(diags.exit_code(), 1);
  }
}

TEST(Binary, FooterCountMismatchDetected) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  // Footer layout: ... end-tag | count (8 LE) | crc (4 LE). Corrupt the
  // count's low byte.
  blob[blob.size() - 12] = static_cast<char>(blob[blob.size() - 12] + 1);
  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), sample_records(ctx).size());
  EXPECT_EQ(diags.count(DiagCode::BinCountMismatch), 1u);
}

TEST(Binary, TruncationSalvagesPrefixUnderSkip) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records);
  blob.resize(blob.size() / 2);
  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_LT(parsed.size(), records.size());
  EXPECT_EQ(diags.count(DiagCode::BinTruncated), 1u);
  EXPECT_EQ(diags.exit_code(), 1);
  // Whatever was salvaged matches the original prefix.
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]));
  }
}

TEST(Binary, MissingFooterReportedUnderSkip) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  blob.resize(blob.size() - 12);  // keep the end tag, drop the footer
  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), sample_records(ctx).size());
  EXPECT_EQ(diags.count(DiagCode::BinBadFooter), 1u);
}

TEST(Binary, OverlongVarintRejected) {
  // Header: magic + version 1, then a pid varint of 11 continuation
  // bytes — more than a 64-bit value can need.
  std::vector<char> blob{'T', 'D', 'T', 'B', 1};
  for (int i = 0; i < 11; ++i) blob.push_back(static_cast<char>(0x80));
  blob.push_back(0);
  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);
}

TEST(Binary, VarintOverflowingSixtyFourBitsRejected) {
  // 10 bytes where the last contributes more than bit 63.
  std::vector<char> blob{'T', 'D', 'T', 'B', 1};
  for (int i = 0; i < 9; ++i) blob.push_back(static_cast<char>(0xFF));
  blob.push_back(0x7F);
  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);
}

TEST(Binary, SizeFieldOverflowRejected) {
  // Hand-built v1 blob: string "f" as id 0, then a record whose size
  // varint (0x1'FFFF'FFFF) overflows the 32-bit size field.
  std::vector<char> blob{'T', 'D', 'T', 'B', 1, 0};
  blob.push_back(1);  // kTagString
  blob.push_back(0);  // id 0
  blob.push_back(1);  // len 1
  blob.push_back('f');
  blob.push_back(0);  // kTagRecord
  blob.push_back(0);  // packed kind/scope
  blob.push_back(0);  // address
  for (int i = 0; i < 4; ++i) blob.push_back(static_cast<char>(0xFF));
  blob.push_back(0x1F);  // size = 0x1FFFFFFFF
  blob.push_back(0);     // function id
  blob.push_back(0);     // frame
  blob.push_back(0);     // thread
  blob.push_back(2);     // kTagEnd

  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);

  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(diags.count(DiagCode::BinFieldOverflow), 1u);
}

TEST(Binary, UndefinedSymbolReferenceRejected) {
  std::vector<char> blob{'T', 'D', 'T', 'B', 1, 0};
  blob.push_back(0);   // kTagRecord
  blob.push_back(0);   // packed
  blob.push_back(0);   // address
  blob.push_back(4);   // size
  blob.push_back(9);   // function id — never defined
  blob.push_back(0);   // frame
  blob.push_back(0);   // thread
  blob.push_back(2);   // kTagEnd
  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);

  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(diags.count(DiagCode::BinBadSymbol), 1u);
}

TEST(Binary, StreamingReaderReportsVersionAndCount) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 4242);
  std::istringstream in(std::string(blob.begin(), blob.end()),
                        std::ios::binary);
  TraceContext ctx2;
  BinaryTraceReader r(ctx2, in);
  EXPECT_EQ(r.version(), 2);
  TraceRecord rec;
  std::size_t n = 0;
  while (r.next(rec)) ++n;
  EXPECT_EQ(n, records.size());
  EXPECT_EQ(r.records_read(), records.size());
}

TEST(Binary, LargeAddressesSurvive) {
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Store;
  rec.address = 0xFFFFFFFFFFFFFFFFull;
  rec.size = 0x80000001u;
  rec.function = ctx.intern("f");
  const auto blob = write_binary_trace(ctx, {&rec, 1});
  TraceContext ctx2;
  const auto parsed = read_binary_trace(ctx2, blob);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].address, rec.address);
  EXPECT_EQ(parsed[0].size, rec.size);
}

// --- TDTB v3 framed container ----------------------------------------------

BinaryWriterOptions v3_options(Codec codec = Codec::None,
                               std::uint32_t frame_records = 3) {
  BinaryWriterOptions options;
  options.version = kTdtbVersionFramed;
  options.codec = codec;
  options.frame_records = frame_records;  // tiny frames: multi-frame corpus
  return options;
}

std::vector<std::string> formatted(TraceContext& ctx,
                                   const std::vector<TraceRecord>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const TraceRecord& r : records) out.push_back(ctx.format_record(r));
  return out;
}

TEST(BinaryV3, RoundTripMatchesV2Decode) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto v2 = write_binary_trace(ctx, records, 4242);
  const auto v3 = write_binary_trace(ctx, records, 4242, v3_options());

  TraceContext c2;
  TraceContext c3;
  std::uint64_t pid2 = 0;
  std::uint64_t pid3 = 0;
  const auto from2 = read_binary_trace(c2, v2, &pid2);
  const auto from3 = read_binary_trace(c3, v3, &pid3);
  EXPECT_EQ(pid3, pid2);
  EXPECT_EQ(formatted(c3, from3), formatted(c2, from2));
}

TEST(BinaryV3, CompressedCodecsRoundTrip) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto plain = write_binary_trace(ctx, records, 1);
  for (const Codec codec : {Codec::Zstd, Codec::Lz4}) {
    if (!codec_available(codec)) {
      GTEST_LOG_(INFO) << codec_name(codec) << " unavailable; skipping";
      continue;
    }
    const auto blob = write_binary_trace(ctx, records, 1, v3_options(codec));
    TraceContext cp;
    TraceContext cc;
    EXPECT_EQ(formatted(cc, read_binary_trace(cc, blob)),
              formatted(cp, read_binary_trace(cp, plain)))
        << codec_name(codec);
  }
}

TEST(BinaryV3, ProbeSeesFramesAndFooter) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 77, v3_options());
  const auto info =
      probe_tdtb(std::string_view(blob.data(), blob.size()));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, kTdtbVersionFramed);
  EXPECT_EQ(info->pid, 77u);
  ASSERT_TRUE(info->has_index);
  EXPECT_EQ(info->total_records, records.size());
  ASSERT_EQ(info->frames.size(), (records.size() + 2) / 3);
  std::uint64_t sum = 0;
  for (const TdtbFrameInfo& f : info->frames) {
    sum += f.records;
    std::uint64_t payload_off = 0;
    const auto parsed = parse_frame_header(
        std::string_view(blob.data(), blob.size()), f.offset, &payload_off);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->csize, f.csize);
  }
  EXPECT_EQ(sum, records.size());
}

TEST(BinaryV3, TruncatedMidFrameSalvagesEarlierFrames) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records, 0, v3_options());
  const auto info = probe_tdtb(std::string_view(blob.data(), blob.size()));
  ASSERT_TRUE(info.has_value());
  ASSERT_GE(info->frames.size(), 2u);
  // Cut inside the second frame's payload.
  blob.resize(static_cast<std::size_t>(info->frames[1].offset) + 4);

  {
    TraceContext c;
    EXPECT_THROW((void)read_binary_trace(c, blob), Error);
  }
  TraceContext c;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(c, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), info->frames[0].records);
  EXPECT_GE(diags.count(DiagCode::BinTruncated), 1u);
  EXPECT_EQ(diags.exit_code(), 1);
}

TEST(BinaryV3, CorruptFrameCrcUnderEveryPolicy) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records, 0, v3_options());
  const auto info = probe_tdtb(std::string_view(blob.data(), blob.size()));
  ASSERT_TRUE(info.has_value());
  ASSERT_GE(info->frames.size(), 3u);
  // Flip one payload byte of the middle frame; header and index stay
  // intact, so only the frame CRC can notice.
  std::uint64_t payload_off = 0;
  ASSERT_TRUE(parse_frame_header(std::string_view(blob.data(), blob.size()),
                                 info->frames[1].offset, &payload_off)
                  .has_value());
  blob[static_cast<std::size_t>(payload_off)] ^= 0x40;

  {  // Strict: throws.
    TraceContext c;
    EXPECT_THROW((void)read_binary_trace(c, blob), Error);
  }
  {  // Skip: frames before the corruption are salvaged, then the trace ends.
    TraceContext c;
    DiagEngine diags(ErrorPolicy::Skip);
    const auto parsed = read_binary_trace(c, blob, nullptr, &diags);
    EXPECT_EQ(parsed.size(), info->frames[0].records);
    EXPECT_EQ(diags.count(DiagCode::BinFrameCorrupt), 1u);
  }
  {  // Repair: the bad frame is dropped and reading resumes at the next.
    TraceContext c;
    DiagEngine diags(ErrorPolicy::Repair);
    const auto parsed = read_binary_trace(c, blob, nullptr, &diags);
    EXPECT_EQ(parsed.size(), records.size() - info->frames[1].records);
    EXPECT_EQ(diags.count(DiagCode::BinFrameCorrupt), 1u);
    // The footer totals disagree with what was delivered; that is
    // reported without discarding the salvage.
    EXPECT_GE(diags.count(DiagCode::BinCountMismatch), 1u);
    // Records after the dropped frame decode correctly.
    const auto expect_tail = formatted(ctx, records);
    const auto got = formatted(c, parsed);
    EXPECT_EQ(got.back(), expect_tail.back());
  }
}

TEST(BinaryV3, UnknownCodecIdIsolatesTheFrame) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records, 0, v3_options());
  const auto info = probe_tdtb(std::string_view(blob.data(), blob.size()));
  ASSERT_TRUE(info.has_value());
  ASSERT_GE(info->frames.size(), 2u);
  // Frame header layout: tag byte, then the codec id.
  blob[static_cast<std::size_t>(info->frames[0].offset) + 1] =
      static_cast<char>(9);

  {
    TraceContext c;
    EXPECT_THROW((void)read_binary_trace(c, blob), Error);
  }
  TraceContext c;
  DiagEngine diags(ErrorPolicy::Repair);
  const auto parsed = read_binary_trace(c, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), records.size() - info->frames[0].records);
  EXPECT_EQ(diags.count(DiagCode::BinBadCodec), 1u);
  // The patched header no longer matches the index entry, so the probe
  // demotes the container to sequential-only.
  const auto reprobed = probe_tdtb(std::string_view(blob.data(), blob.size()));
  ASSERT_TRUE(reprobed.has_value());
  EXPECT_FALSE(reprobed->has_index);
}

TEST(BinaryV3, CorruptIndexReportedWithoutDiscardingRecords) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records, 0, v3_options());
  // The 28-byte footer ends with "TDTX"; the 4 bytes before the 8-byte
  // index_len+crc block... index crc sits at footer offset 20..23.
  blob[blob.size() - 8] ^= 0x11;  // corrupt the stored index CRC

  const auto info = probe_tdtb(std::string_view(blob.data(), blob.size()));
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->has_index);  // parallel path must refuse this file

  TraceContext c;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(c, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), records.size());  // records all fine
  EXPECT_EQ(diags.count(DiagCode::BinBadIndex), 1u);
  EXPECT_EQ(diags.exit_code(), 1);
}

TEST(BinaryV3, HandBuiltEmptyFrameDecodes) {
  // Header + one zero-record frame + end tag + index + footer, all by
  // hand: writers never emit empty frames, but readers must accept them.
  std::string blob{'T', 'D', 'T', 'B', 3, 0, 0};  // magic, v3, pid 0, codec 0
  const std::uint64_t frame_off = blob.size();
  const std::uint32_t empty_crc = crc32("", 0);
  blob.push_back(3);  // kTagFrame
  blob.push_back(0);  // codec none
  blob.push_back(0);  // records 0
  blob.push_back(0);  // usize 0
  blob.push_back(0);  // csize 0
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<char>((empty_crc >> (8 * i)) & 0xFF));
  }
  blob.push_back(2);  // kTagEnd
  std::string index;
  index.push_back(static_cast<char>(frame_off));  // offset varint
  index.push_back(0);                             // records
  index.push_back(0);                             // usize
  index.push_back(0);                             // csize
  for (int i = 0; i < 4; ++i) {
    index.push_back(static_cast<char>((empty_crc >> (8 * i)) & 0xFF));
  }
  index.push_back(0);  // codec
  blob += index;
  const std::uint32_t index_crc = crc32(index.data(), index.size());
  const std::uint64_t totals[2] = {0, 1};  // records, frames
  for (const std::uint64_t v : totals) {
    for (int i = 0; i < 8; ++i) {
      blob.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  const std::uint32_t index_len = static_cast<std::uint32_t>(index.size());
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<char>((index_len >> (8 * i)) & 0xFF));
  }
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<char>((index_crc >> (8 * i)) & 0xFF));
  }
  blob += "TDTX";

  const std::vector<char> bytes(blob.begin(), blob.end());
  TraceContext ctx;
  std::uint64_t pid = 9;
  const auto parsed = read_binary_trace(ctx, bytes, &pid);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(pid, 0u);
  const auto info = probe_tdtb(blob);
  ASSERT_TRUE(info.has_value());
  ASSERT_TRUE(info->has_index);
  ASSERT_EQ(info->frames.size(), 1u);
  EXPECT_EQ(info->frames[0].records, 0u);
}

TEST(BinaryV3, EmptyTraceRoundTrips) {
  TraceContext ctx;
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, 5, v3_options());
  w.finish();
  EXPECT_EQ(w.frames_written(), 0u);
  const std::string s = out.str();
  const std::vector<char> blob(s.begin(), s.end());
  TraceContext c;
  std::uint64_t pid = 0;
  EXPECT_TRUE(read_binary_trace(c, blob, &pid).empty());
  EXPECT_EQ(pid, 5u);
}

TEST(BinaryV3, WriterRejectsBadConfigurations) {
  TraceContext ctx;
  std::ostringstream out(std::ios::binary);
  // Codec on a non-framed version is a config error.
  BinaryWriterOptions bad;
  bad.version = 2;
  bad.codec = Codec::Zstd;
  EXPECT_THROW((BinaryTraceWriter{ctx, out, 0, bad}), Error);
  BinaryWriterOptions v9;
  v9.version = 9;
  EXPECT_THROW((BinaryTraceWriter{ctx, out, 0, v9}), Error);
}

TEST(BinaryV3, StreamingReaderCountsFramesAndBytes) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 1, v3_options());
  std::istringstream in(std::string(blob.begin(), blob.end()),
                        std::ios::binary);
  TraceContext c;
  BinaryTraceReader r(c, in);
  EXPECT_EQ(r.version(), kTdtbVersionFramed);
  TraceRecord rec;
  std::size_t n = 0;
  while (r.next(rec)) ++n;
  EXPECT_EQ(n, records.size());
  EXPECT_EQ(r.frames_read(), (records.size() + 2) / 3);
  EXPECT_GT(r.compressed_bytes(), 0u);
  EXPECT_EQ(r.bytes_read(), blob.size());
}

TEST(BinaryV3, V1AndV2StillDecodeUnderEveryPolicy) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto want = formatted(ctx, records);
  for (const std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    const auto blob = write_binary_trace(ctx, records, 1, version);
    for (const ErrorPolicy policy :
         {ErrorPolicy::Strict, ErrorPolicy::Skip, ErrorPolicy::Repair}) {
      TraceContext c;
      DiagEngine diags(policy);
      const auto parsed = read_binary_trace(c, blob, nullptr, &diags);
      EXPECT_EQ(formatted(c, parsed), want)
          << "v" << int(version) << " policy " << int(policy);
      EXPECT_EQ(diags.exit_code(), 0);
    }
  }
}

}  // namespace
}  // namespace tdt::trace

