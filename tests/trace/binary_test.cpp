#include "trace/binary.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> sample_records(TraceContext& ctx) {
  const char* text = R"(START PID 1
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
M 7ff000044 4 foo LV 0 1 i
S 7ff000060 8 foo LS 1 1 lcStrcArray[0].dl
L 7ff000030 8 foo LV 0 1 StrcParam
)";
  return read_trace_string(ctx, text);
}

TEST(Binary, RoundTripPreservesEverything) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 4242);

  TraceContext ctx2;
  std::uint64_t pid = 0;
  const auto parsed = read_binary_trace(ctx2, blob, &pid);
  EXPECT_EQ(pid, 4242u);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]))
        << "record " << i;
  }
}

TEST(Binary, EmptyTraceRoundTrips) {
  TraceContext ctx;
  const auto blob = write_binary_trace(ctx, {}, 7);
  TraceContext ctx2;
  std::uint64_t pid = 0;
  EXPECT_TRUE(read_binary_trace(ctx2, blob, &pid).empty());
  EXPECT_EQ(pid, 7u);
}

TEST(Binary, IsSubstantiallySmallerThanText) {
  TraceContext ctx;
  std::vector<TraceRecord> records;
  const auto base = sample_records(ctx);
  for (int i = 0; i < 200; ++i) {
    for (const TraceRecord& r : base) records.push_back(r);
  }
  const auto blob = write_binary_trace(ctx, records);
  const std::string text = write_trace_string(ctx, records);
  EXPECT_LT(blob.size() * 2, text.size());
}

TEST(Binary, StringsEmittedOnce) {
  TraceContext ctx;
  std::vector<TraceRecord> records;
  TraceRecord rec;
  rec.kind = AccessKind::Load;
  rec.size = 4;
  rec.function = ctx.intern("very_long_function_name_repeated");
  for (int i = 0; i < 100; ++i) {
    rec.address = static_cast<std::uint64_t>(i);
    records.push_back(rec);
  }
  const auto blob = write_binary_trace(ctx, records);
  // 100 records * ~8 bytes + one string definition; far below 100 copies
  // of the 33-char name.
  EXPECT_LT(blob.size(), 100 * 33 / 2);
}

TEST(Binary, BadMagicRejected) {
  TraceContext ctx;
  const std::vector<char> junk{'N', 'O', 'P', 'E', 1, 0, 2};
  EXPECT_THROW((void)read_binary_trace(ctx, junk), Error);
}

TEST(Binary, TruncatedBlobRejected) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records);
  blob.resize(blob.size() / 2);
  TraceContext ctx2;
  EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
}

TEST(Binary, MissingEndMarkerRejected) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  blob.pop_back();  // drop the end tag
  TraceContext ctx2;
  EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
}

TEST(Binary, StreamingWriterMatchesOneShot) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, 4242);
  for (const TraceRecord& r : records) w.write(r);
  w.finish();
  const std::string s = out.str();
  const auto oneshot = write_binary_trace(ctx, records, 4242);
  ASSERT_EQ(s.size(), oneshot.size());
  EXPECT_TRUE(std::equal(s.begin(), s.end(), oneshot.begin()));
}

TEST(Binary, V1BlobStillDecodes) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 99, /*version=*/1);

  TraceContext ctx2;
  std::uint64_t pid = 0;
  const auto parsed = read_binary_trace(ctx2, blob, &pid);
  EXPECT_EQ(pid, 99u);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]));
  }
}

TEST(Binary, V2FooterAddsTwelveBytes) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto v1 = write_binary_trace(ctx, records, 0, /*version=*/1);
  const auto v2 = write_binary_trace(ctx, records, 0, /*version=*/2);
  EXPECT_EQ(v2.size(), v1.size() + 12);
}

TEST(Binary, FooterDetectsBitFlip) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  // Flip a byte inside the "main" string payload: the blob stays
  // structurally valid (same length), only the CRC can notice.
  const char needle[] = {'m', 'a', 'i', 'n'};
  const auto it = std::search(blob.begin(), blob.end(), std::begin(needle),
                              std::end(needle));
  ASSERT_NE(it, blob.end());
  *it = 'w';

  // Strict: throws.
  {
    TraceContext ctx2;
    EXPECT_THROW((void)read_binary_trace(ctx2, blob), Error);
  }
  // Skip: records are salvaged, the corruption is reported and counted.
  {
    TraceContext ctx2;
    DiagEngine diags(ErrorPolicy::Skip);
    const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
    EXPECT_EQ(parsed.size(), sample_records(ctx).size());
    EXPECT_EQ(diags.count(DiagCode::BinCrcMismatch), 1u);
    EXPECT_EQ(diags.exit_code(), 1);
  }
}

TEST(Binary, FooterCountMismatchDetected) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  // Footer layout: ... end-tag | count (8 LE) | crc (4 LE). Corrupt the
  // count's low byte.
  blob[blob.size() - 12] = static_cast<char>(blob[blob.size() - 12] + 1);
  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), sample_records(ctx).size());
  EXPECT_EQ(diags.count(DiagCode::BinCountMismatch), 1u);
}

TEST(Binary, TruncationSalvagesPrefixUnderSkip) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  auto blob = write_binary_trace(ctx, records);
  blob.resize(blob.size() / 2);
  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_LT(parsed.size(), records.size());
  EXPECT_EQ(diags.count(DiagCode::BinTruncated), 1u);
  EXPECT_EQ(diags.exit_code(), 1);
  // Whatever was salvaged matches the original prefix.
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(ctx2.format_record(parsed[i]), ctx.format_record(records[i]));
  }
}

TEST(Binary, MissingFooterReportedUnderSkip) {
  TraceContext ctx;
  auto blob = write_binary_trace(ctx, sample_records(ctx));
  blob.resize(blob.size() - 12);  // keep the end tag, drop the footer
  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_EQ(parsed.size(), sample_records(ctx).size());
  EXPECT_EQ(diags.count(DiagCode::BinBadFooter), 1u);
}

TEST(Binary, OverlongVarintRejected) {
  // Header: magic + version 1, then a pid varint of 11 continuation
  // bytes — more than a 64-bit value can need.
  std::vector<char> blob{'T', 'D', 'T', 'B', 1};
  for (int i = 0; i < 11; ++i) blob.push_back(static_cast<char>(0x80));
  blob.push_back(0);
  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);
}

TEST(Binary, VarintOverflowingSixtyFourBitsRejected) {
  // 10 bytes where the last contributes more than bit 63.
  std::vector<char> blob{'T', 'D', 'T', 'B', 1};
  for (int i = 0; i < 9; ++i) blob.push_back(static_cast<char>(0xFF));
  blob.push_back(0x7F);
  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);
}

TEST(Binary, SizeFieldOverflowRejected) {
  // Hand-built v1 blob: string "f" as id 0, then a record whose size
  // varint (0x1'FFFF'FFFF) overflows the 32-bit size field.
  std::vector<char> blob{'T', 'D', 'T', 'B', 1, 0};
  blob.push_back(1);  // kTagString
  blob.push_back(0);  // id 0
  blob.push_back(1);  // len 1
  blob.push_back('f');
  blob.push_back(0);  // kTagRecord
  blob.push_back(0);  // packed kind/scope
  blob.push_back(0);  // address
  for (int i = 0; i < 4; ++i) blob.push_back(static_cast<char>(0xFF));
  blob.push_back(0x1F);  // size = 0x1FFFFFFFF
  blob.push_back(0);     // function id
  blob.push_back(0);     // frame
  blob.push_back(0);     // thread
  blob.push_back(2);     // kTagEnd

  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);

  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(diags.count(DiagCode::BinFieldOverflow), 1u);
}

TEST(Binary, UndefinedSymbolReferenceRejected) {
  std::vector<char> blob{'T', 'D', 'T', 'B', 1, 0};
  blob.push_back(0);   // kTagRecord
  blob.push_back(0);   // packed
  blob.push_back(0);   // address
  blob.push_back(4);   // size
  blob.push_back(9);   // function id — never defined
  blob.push_back(0);   // frame
  blob.push_back(0);   // thread
  blob.push_back(2);   // kTagEnd
  TraceContext ctx;
  EXPECT_THROW((void)read_binary_trace(ctx, blob), Error);

  TraceContext ctx2;
  DiagEngine diags(ErrorPolicy::Skip);
  const auto parsed = read_binary_trace(ctx2, blob, nullptr, &diags);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(diags.count(DiagCode::BinBadSymbol), 1u);
}

TEST(Binary, StreamingReaderReportsVersionAndCount) {
  TraceContext ctx;
  const auto records = sample_records(ctx);
  const auto blob = write_binary_trace(ctx, records, 4242);
  std::istringstream in(std::string(blob.begin(), blob.end()),
                        std::ios::binary);
  TraceContext ctx2;
  BinaryTraceReader r(ctx2, in);
  EXPECT_EQ(r.version(), 2);
  TraceRecord rec;
  std::size_t n = 0;
  while (r.next(rec)) ++n;
  EXPECT_EQ(n, records.size());
  EXPECT_EQ(r.records_read(), records.size());
}

TEST(Binary, LargeAddressesSurvive) {
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Store;
  rec.address = 0xFFFFFFFFFFFFFFFFull;
  rec.size = 0x80000001u;
  rec.function = ctx.intern("f");
  const auto blob = write_binary_trace(ctx, {&rec, 1});
  TraceContext ctx2;
  const auto parsed = read_binary_trace(ctx2, blob);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].address, rec.address);
  EXPECT_EQ(parsed[0].size, rec.size);
}

}  // namespace
}  // namespace tdt::trace
