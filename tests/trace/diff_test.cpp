#include "trace/diff.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> parse(TraceContext& ctx, const char* text) {
  return read_trace_string(ctx, text);
}

TEST(Diff, IdenticalTracesAllSame) {
  TraceContext ctx;
  const auto a = parse(ctx, "L 7ff000100 4 main\nS 7ff000104 4 main\n");
  const auto entries = diff_traces(a, a);
  const DiffSummary s = summarize(entries);
  EXPECT_EQ(s.same, 2u);
  EXPECT_EQ(s.modified + s.inserted + s.deleted, 0u);
}

TEST(Diff, RewrittenAddressIsModified) {
  TraceContext ctx;
  const auto a = parse(ctx, "S 7ff000100 4 main LS 0 1 lSoA.mX[0]\n");
  const auto b = parse(ctx, "S 7fe800000 4 main LS 0 1 lAoS[0].mX\n");
  const auto entries = diff_traces(a, b);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, DiffKind::Modified);
}

TEST(Diff, InsertionDetectedBetweenMatches) {
  TraceContext ctx;
  const auto a = parse(ctx,
                       "L 7ff000100 4 main LV 0 1 lI\n"
                       "S 7ff000200 4 main LS 0 1 x[0]\n");
  const auto b = parse(ctx,
                       "L 7ff000100 4 main LV 0 1 lI\n"
                       "L 7fe800008 8 main LS 0 1 ptr[0]\n"
                       "S 7ff000200 4 main LS 0 1 x[0]\n");
  const auto entries = diff_traces(a, b);
  const DiffSummary s = summarize(entries);
  EXPECT_EQ(s.same, 2u);
  EXPECT_EQ(s.inserted, 1u);
  EXPECT_EQ(s.deleted, 0u);
  EXPECT_EQ(s.modified, 0u);
}

TEST(Diff, DeletionDetected) {
  TraceContext ctx;
  const auto a = parse(ctx,
                       "L 7ff000100 4 main\n"
                       "L 7ff000104 4 main\n"
                       "S 7ff000200 4 main\n");
  const auto b = parse(ctx,
                       "L 7ff000100 4 main\n"
                       "S 7ff000200 4 main\n");
  const DiffSummary s = summarize(diff_traces(a, b));
  EXPECT_EQ(s.same, 2u);
  EXPECT_EQ(s.deleted, 1u);
}

TEST(Diff, TrailingInsertions) {
  TraceContext ctx;
  const auto a = parse(ctx, "L 7ff000100 4 main\n");
  const auto b = parse(ctx, "L 7ff000100 4 main\nL 7ff000104 4 main\n");
  const DiffSummary s = summarize(diff_traces(a, b));
  EXPECT_EQ(s.same, 1u);
  EXPECT_EQ(s.inserted, 1u);
}

TEST(Diff, TrailingDeletions) {
  TraceContext ctx;
  const auto a = parse(ctx, "L 7ff000100 4 main\nL 7ff000104 4 main\n");
  const auto b = parse(ctx, "L 7ff000100 4 main\n");
  const DiffSummary s = summarize(diff_traces(a, b));
  EXPECT_EQ(s.deleted, 1u);
}

TEST(Diff, EmptyTraces) {
  TraceContext ctx;
  const auto a = parse(ctx, "");
  EXPECT_TRUE(diff_traces(a, a).empty());
  const auto b = parse(ctx, "L 7ff000100 4 main\n");
  EXPECT_EQ(summarize(diff_traces(a, b)).inserted, 1u);
  EXPECT_EQ(summarize(diff_traces(b, a)).deleted, 1u);
}

TEST(Diff, MixedTransformationPattern) {
  // Mimics the paper's T2 diff: unchanged loop loads, modified stores,
  // inserted indirection loads.
  TraceContext ctx;
  const auto a = parse(ctx,
                       "L 7ff00009c 4 main LV 0 1 lI\n"
                       "S 7ff0000a0 4 main LS 0 1 lS1[0].mFrequentlyUsed\n"
                       "L 7ff00009c 4 main LV 0 1 lI\n"
                       "S 7ff0000a8 8 main LS 0 1 lS1[0].mRarelyUsed.mY\n"
                       "M 7ff00009c 4 main LV 0 1 lI\n");
  const auto b = parse(ctx,
                       "L 7ff00009c 4 main LV 0 1 lI\n"
                       "S 7fe800000 4 main LS 0 1 lS2[0].mFrequentlyUsed\n"
                       "L 7ff00009c 4 main LV 0 1 lI\n"
                       "L 7fe800008 8 main LS 0 1 lS2[0].mRarelyUsed\n"
                       "S 7fe900000 8 main LS 0 1 pool[0].mY\n"
                       "M 7ff00009c 4 main LV 0 1 lI\n");
  const DiffSummary s = summarize(diff_traces(a, b));
  EXPECT_EQ(s.same, 3u);
  EXPECT_EQ(s.modified, 2u);
  EXPECT_EQ(s.inserted, 1u);
  EXPECT_EQ(s.deleted, 0u);
}

TEST(Diff, LongInsertionRunResyncsInsteadOfModifying) {
  // A rule that injects many records per access produces insertion runs
  // longer than the short resync window. Those used to degrade into
  // spurious Modified pairs; the diff must report them all as Inserted.
  TraceContext ctx;
  std::string b_text = "L 7ff000100 4 main\n";
  for (int k = 0; k < 12; ++k) {
    b_text += "L 7fe80" + std::string(1, static_cast<char>('0' + k / 10)) +
              std::string(1, static_cast<char>('0' + k % 10)) +
              "0 8 main LV 0 1 lAux\n";
  }
  b_text += "L 7ff000104 4 main\nS 7ff000200 4 main\n";
  const auto a = parse(ctx,
                       "L 7ff000100 4 main\n"
                       "L 7ff000104 4 main\n"
                       "S 7ff000200 4 main\n");
  const auto b = read_trace_string(ctx, b_text);
  ASSERT_EQ(b.size(), 15u);
  const DiffSummary s = summarize(diff_traces(a, b));
  EXPECT_EQ(s.same, 3u);
  EXPECT_EQ(s.inserted, 12u);
  EXPECT_EQ(s.modified, 0u);
  EXPECT_EQ(s.deleted, 0u);
}

TEST(Diff, RepeatedRecordInsideRunDoesNotFalseResync) {
  // The long-run scan must not latch onto a lone equal record that is
  // followed by divergent history (e.g. a loop repeating one access).
  TraceContext ctx;
  std::string b_text;
  for (int k = 0; k < 10; ++k) b_text += "L 7fe800000 8 other\n";
  b_text += "L 7ff000100 4 main\n";  // equal to a[0] but wrong context
  for (int k = 0; k < 10; ++k) b_text += "L 7fe800000 8 other\n";
  const auto a = parse(ctx,
                       "L 7ff000100 4 main\n"
                       "S 7ff000200 4 main\n");
  const auto b = read_trace_string(ctx, b_text);
  const DiffSummary s = summarize(diff_traces(a, b));
  // However classified, every record of each trace is consumed exactly
  // once: 2 original rows, 21 transformed rows.
  EXPECT_EQ(s.same + s.modified + s.deleted, 2u);
  EXPECT_EQ(s.same + s.modified + s.inserted, 21u);
}

TEST(Diff, EntriesIndexCorrectly) {
  TraceContext ctx;
  const auto a = parse(ctx, "L 7ff000100 4 main\nS 7ff000200 4 main\n");
  const auto b = parse(ctx,
                       "L 7ff000100 4 main\nL 7ff000300 8 main\n"
                       "S 7ff000200 4 main\n");
  const auto entries = diff_traces(a, b);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].original, 0u);
  EXPECT_EQ(entries[0].transformed, 0u);
  EXPECT_EQ(entries[1].kind, DiffKind::Inserted);
  EXPECT_EQ(entries[1].original, DiffEntry::kUnpaired);
  EXPECT_EQ(entries[1].transformed, 1u);
  EXPECT_EQ(entries[2].original, 1u);
  EXPECT_EQ(entries[2].transformed, 2u);
}

TEST(Diff, RenderSideBySideHasTags) {
  TraceContext ctx;
  const auto a = parse(ctx, "S 7ff000100 4 main LS 0 1 lSoA.mX[0]\n");
  const auto b = parse(ctx,
                       "L 7fe800008 8 main LS 0 1 p[0]\n"
                       "S 7fe800100 4 main LS 0 1 lAoS[0].mX\n");
  const auto entries = diff_traces(a, b);
  const std::string out = render_side_by_side(ctx, a, b, entries);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find("+ "), std::string::npos);
  EXPECT_NE(out.find("~ "), std::string::npos);
}

TEST(Diff, RenderRespectsMaxRows) {
  TraceContext ctx;
  const auto a = parse(ctx,
                       "L 7ff000100 4 main\nL 7ff000104 4 main\n"
                       "L 7ff000108 4 main\n");
  const auto entries = diff_traces(a, a);
  const std::string out = render_side_by_side(ctx, a, a, entries, 1);
  EXPECT_NE(out.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace tdt::trace
