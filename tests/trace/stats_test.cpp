#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"

namespace tdt::trace {
namespace {

constexpr const char* kTrace = R"(START PID 1
S 7ff000100 4 main LV 0 1 i
L 7ff000100 4 main LV 0 1 i
L 000601040 4 main GV glScalar
S 7ff000180 4 main LS 0 1 lcArray[0]
S 7ff000184 4 main LS 0 1 lcArray[1]
M 7ff000100 4 main LV 0 1 i
L 000601040 4 foo GV glScalar
S 0006010e0 8 foo GS glStructArray[0].dl
)";

TEST(TraceStats, TotalsByKind) {
  TraceContext ctx;
  TraceStats stats;
  stats.add_all(read_trace_string(ctx, kTrace));
  EXPECT_EQ(stats.records(), 8u);
  EXPECT_EQ(stats.totals().loads, 3u);
  EXPECT_EQ(stats.totals().stores, 4u);
  EXPECT_EQ(stats.totals().modifies, 1u);
  EXPECT_EQ(stats.totals().other, 0u);
}

TEST(TraceStats, PerFunctionCounts) {
  TraceContext ctx;
  TraceStats stats;
  stats.add_all(read_trace_string(ctx, kTrace));
  const auto& by_fn = stats.by_function();
  EXPECT_EQ(by_fn.at(ctx.pool().find("main")).total(), 6u);
  EXPECT_EQ(by_fn.at(ctx.pool().find("foo")).total(), 2u);
}

TEST(TraceStats, PerVariableAggregatesUnderBaseName) {
  TraceContext ctx;
  TraceStats stats;
  stats.add_all(read_trace_string(ctx, kTrace));
  const auto& by_var = stats.by_variable();
  // lcArray[0] and lcArray[1] accumulate under lcArray.
  EXPECT_EQ(by_var.at(ctx.pool().find("lcArray")).stores, 2u);
  EXPECT_EQ(by_var.at(ctx.pool().find("glScalar")).loads, 2u);
  EXPECT_EQ(by_var.at(ctx.pool().find("i")).total(), 3u);
}

TEST(TraceStats, ByteGranularityCountsDistinctBytes) {
  TraceContext ctx;
  TraceStats stats(1);
  // Two 4-byte accesses to the same address + one to a different one.
  stats.add_all(read_trace_string(
      ctx,
      "L 7ff000100 4 main\nS 7ff000100 4 main\nL 7ff000104 4 main\n"));
  EXPECT_EQ(stats.footprint_blocks(), 8u);
  EXPECT_EQ(stats.min_address(), 0x7ff000100u);
  EXPECT_EQ(stats.max_address(), 0x7ff000107u);
}

TEST(TraceStats, FootprintBlocks) {
  TraceContext ctx;
  const char* trace =
      "L 7ff000100 4 main\nL 7ff000104 4 main\nL 7ff000120 4 main\n";
  TraceStats at32(32);
  at32.add_all(read_trace_string(ctx, trace));
  EXPECT_EQ(at32.block_size(), 32u);
  EXPECT_EQ(at32.footprint_blocks(), 2u);
  TraceStats at64(64);
  at64.add_all(read_trace_string(ctx, trace));
  EXPECT_EQ(at64.footprint_blocks(), 1u);
  TraceStats at4(4);
  at4.add_all(read_trace_string(ctx, trace));
  EXPECT_EQ(at4.footprint_blocks(), 3u);
}

TEST(TraceStats, AccessSpanningBlocksCountsBoth) {
  TraceContext ctx;
  TraceStats stats(32);
  // 8-byte access starting 4 bytes before a 32-byte boundary.
  stats.add_all(read_trace_string(ctx, "L 7ff00011c 8 main\n"));
  EXPECT_EQ(stats.footprint_blocks(), 2u);
}

TEST(TraceStats, ZeroSizedRecordDoesNotTouchFootprint) {
  // The text reader rejects size 0, but repaired/din traces can carry it;
  // build the record directly.
  TraceContext ctx;
  TraceStats stats;
  TraceRecord rec;
  rec.kind = AccessKind::Load;
  rec.address = 0x7ff000100;
  rec.size = 0;
  rec.function = ctx.intern("main");
  stats.add(rec);
  EXPECT_EQ(stats.records(), 1u);
  EXPECT_EQ(stats.footprint_blocks(), 0u);
}

TEST(TraceStats, ReportPrintsAddressRangeInHex) {
  TraceContext ctx;
  TraceStats stats;
  stats.add_all(read_trace_string(ctx, "L 7ff000100 4 main\n"));
  const std::string report = stats.report(ctx);
  // Regression: the range used to print decimal digits behind the "0x".
  EXPECT_NE(report.find("address range: 0x7ff000100 .. 0x7ff000103"),
            std::string::npos)
      << report;
}

TEST(TraceStats, ReportMentionsTopEntries) {
  TraceContext ctx;
  TraceStats stats;
  stats.add_all(read_trace_string(ctx, kTrace));
  const std::string report = stats.report(ctx);
  EXPECT_NE(report.find("glScalar"), std::string::npos);
  EXPECT_NE(report.find("main"), std::string::npos);
  EXPECT_NE(report.find("records: 8"), std::string::npos);
}

TEST(TraceStats, EmptyStatsAreZero) {
  TraceStats stats;
  EXPECT_EQ(stats.records(), 0u);
  EXPECT_EQ(stats.footprint_blocks(), 0u);
  EXPECT_EQ(stats.block_size(), TraceStats::kDefaultBlockSize);
}

TEST(AccessCounts, AddDispatch) {
  AccessCounts c;
  c.add(AccessKind::Load);
  c.add(AccessKind::Store);
  c.add(AccessKind::Modify);
  c.add(AccessKind::Instr);
  c.add(AccessKind::Misc);
  EXPECT_EQ(c.loads, 1u);
  EXPECT_EQ(c.stores, 1u);
  EXPECT_EQ(c.modifies, 1u);
  EXPECT_EQ(c.other, 2u);
  EXPECT_EQ(c.total(), 5u);
}

}  // namespace
}  // namespace tdt::trace
