#include "trace/parallel.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/reader.hpp"
#include "trace/stream.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/governor.hpp"

namespace tdt::trace {
namespace {

/// Disarms the process-global fault injector on scope exit so a failing
/// test cannot leak an armed spec into the rest of the suite.
struct FaultGuard {
  explicit FaultGuard(const char* spec) { fault::FaultInjector::install(spec); }
  ~FaultGuard() { fault::FaultInjector::reset(); }
};

std::vector<TraceRecord> make_records(TraceContext& ctx, std::size_t n) {
  std::vector<TraceRecord> records;
  records.reserve(n);
  const Symbol fn = ctx.intern("main");
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec;
    rec.kind = i % 3 == 0 ? AccessKind::Store : AccessKind::Load;
    rec.address = 0x7ff000000ULL + i * 4;
    rec.size = 4;
    rec.function = fn;
    records.push_back(rec);
  }
  return records;
}

void feed(TraceSink& sink, std::span<const TraceRecord> records) {
  for (const TraceRecord& rec : records) sink.on_record(rec);
  sink.on_end();
}

TEST(ParallelFanOut, InlineModeBroadcastsToAllSinks) {
  TraceContext ctx;
  const auto input = make_records(ctx, 100);
  VectorSink a, b, c;
  ParallelOptions options;
  options.jobs = 0;
  options.batch_records = 16;
  ParallelFanOut fanout({&a, &b, &c}, options);
  feed(fanout, input);
  EXPECT_EQ(a.records(), input);
  EXPECT_EQ(b.records(), input);
  EXPECT_EQ(c.records(), input);
  EXPECT_EQ(fanout.counters().jobs, 0u);
  EXPECT_EQ(fanout.counters().records, 100u);
}

TEST(ParallelFanOut, WorkersReceiveIdenticalStreams) {
  TraceContext ctx;
  const auto input = make_records(ctx, 1000);
  std::vector<VectorSink> sinks(5);
  std::vector<TraceSink*> ptrs;
  for (VectorSink& s : sinks) ptrs.push_back(&s);
  ParallelOptions options;
  options.jobs = 3;
  options.batch_records = 32;
  options.queue_batches = 2;
  ParallelFanOut fanout(ptrs, options);
  feed(fanout, input);
  for (const VectorSink& s : sinks) EXPECT_EQ(s.records(), input);
  EXPECT_EQ(fanout.counters().jobs, 3u);
  EXPECT_EQ(fanout.counters().workers.size(), 3u);
  for (const WorkerCounters& w : fanout.counters().workers) {
    EXPECT_EQ(w.records, 1000u);
  }
  // 5 sinks round-robined over 3 workers: 2 + 2 + 1.
  EXPECT_EQ(fanout.counters().workers[0].sinks, 2u);
  EXPECT_EQ(fanout.counters().workers[1].sinks, 2u);
  EXPECT_EQ(fanout.counters().workers[2].sinks, 1u);
}

TEST(ParallelFanOut, JobCountIsCappedAtSinkCount) {
  TraceContext ctx;
  const auto input = make_records(ctx, 10);
  VectorSink a, b;
  ParallelOptions options;
  options.jobs = 8;
  ParallelFanOut fanout({&a, &b}, options);
  feed(fanout, input);
  EXPECT_EQ(fanout.counters().jobs, 2u);
  EXPECT_EQ(a.records(), input);
  EXPECT_EQ(b.records(), input);
}

TEST(ParallelFanOut, PushBatchFastPathMatchesPerRecord) {
  TraceContext ctx;
  const auto input = make_records(ctx, 256);
  VectorSink via_batch, via_record;
  ParallelOptions options;
  options.jobs = 1;
  options.batch_records = 64;
  {
    ParallelFanOut fanout({&via_batch}, options);
    fanout.push_batch(input);  // 256 >= 64: taken as whole batches
    fanout.on_end();
  }
  {
    ParallelFanOut fanout({&via_record}, options);
    feed(fanout, input);
  }
  EXPECT_EQ(via_batch.records(), input);
  EXPECT_EQ(via_record.records(), input);
}

TEST(ParallelFanOut, OnEndIsIdempotent) {
  TraceContext ctx;
  const auto input = make_records(ctx, 20);
  VectorSink a;
  ParallelOptions options;
  options.jobs = 1;
  ParallelFanOut fanout({&a}, options);
  feed(fanout, input);
  fanout.on_end();  // second call must be a no-op
  EXPECT_EQ(a.records(), input);
}

TEST(ParallelFanOut, DestructorWithoutOnEndDoesNotHang) {
  TraceContext ctx;
  const auto input = make_records(ctx, 10);
  VectorSink a;
  ParallelOptions options;
  options.jobs = 1;
  options.batch_records = 2;
  ParallelFanOut fanout({&a}, options);
  for (const TraceRecord& rec : input) fanout.on_record(rec);
  // No on_end: the destructor must abort the queue and join the worker.
}

class ThrowingSink final : public TraceSink {
 public:
  explicit ThrowingSink(std::uint64_t fail_at) : fail_at_(fail_at) {}
  void on_record(const TraceRecord&) override {
    if (++seen_ >= fail_at_) throw std::runtime_error("sink failure");
  }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t fail_at_;
};

TEST(ParallelFanOut, WorkerExceptionPropagatesFromOnEnd) {
  TraceContext ctx;
  const auto input = make_records(ctx, 100);
  ThrowingSink bad(10);
  VectorSink good;
  ParallelOptions options;
  options.jobs = 2;
  options.batch_records = 4;
  ParallelFanOut fanout({&bad, &good}, options);
  for (const TraceRecord& rec : input) fanout.on_record(rec);
  EXPECT_THROW(fanout.on_end(), std::runtime_error);
}

TEST(ParallelFanOut, SummaryReportsPipelineShape) {
  TraceContext ctx;
  const auto input = make_records(ctx, 50);
  VectorSink a, b;
  ParallelOptions options;
  options.jobs = 2;
  options.batch_records = 8;
  ParallelFanOut fanout({&a, &b}, options);
  feed(fanout, input);
  const std::string summary = fanout.counters().summary();
  EXPECT_NE(summary.find("pipeline:"), std::string::npos);
  EXPECT_NE(summary.find("50 records"), std::string::npos);
  EXPECT_NE(summary.find("worker 0"), std::string::npos);
  EXPECT_NE(summary.find("worker 1"), std::string::npos);
  EXPECT_NE(summary.find("backpressure"), std::string::npos);
}

/// Resolves every record's function name through the shared TraceContext
/// from inside a worker thread — exercises the StringPool contract that
/// symbols published through the queues are safe to view concurrently
/// with the reader interning new ones.
class NameLengthSink final : public TraceSink {
 public:
  explicit NameLengthSink(const TraceContext& ctx) : ctx_(&ctx) {}
  void on_record(const TraceRecord& rec) override {
    total_ += ctx_->name(rec.function).size();
    if (!rec.var.empty()) total_ += ctx_->name(rec.var.base).size();
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  const TraceContext* ctx_;
  std::uint64_t total_ = 0;
};

TEST(ParallelFanOut, WorkersResolveSymbolsWhileReaderInterns) {
  // ~2000 distinct function and variable names force continuous interning
  // on the reader while the workers resolve names of earlier records.
  std::string text = "START PID 1\n";
  for (int i = 0; i < 2000; ++i) {
    text += "L 7ff000100 4 fn_" + std::to_string(i) + " LV 0 1 var_" +
            std::to_string(i) + "\n";
  }

  std::uint64_t expected = 0;
  {
    TraceContext ctx;
    NameLengthSink seq(ctx);
    std::istringstream in(text);
    stream_trace(ctx, in, TraceFormat::Gleipnir, seq);
    expected = seq.total();
    ASSERT_GT(expected, 0u);
  }

  TraceContext ctx;
  NameLengthSink a(ctx), b(ctx);
  ParallelOptions options;
  options.jobs = 2;
  options.batch_records = 16;
  options.queue_batches = 2;
  ParallelFanOut fanout({&a, &b}, options);
  std::istringstream in(text);
  stream_trace(ctx, in, TraceFormat::Gleipnir, fanout);
  EXPECT_EQ(a.total(), expected);
  EXPECT_EQ(b.total(), expected);
}

TEST(ParallelFanOutSupervision, StalledWorkersRecoverBitIdentically) {
  TraceContext ctx;
  const auto input = make_records(ctx, 500);

  // Sequential reference run: what every sink must end up holding.
  VectorSink reference;
  {
    ParallelOptions options;
    options.jobs = 0;
    options.batch_records = 16;
    ParallelFanOut fanout({&reference}, options);
    feed(fanout, input);
  }

  // Every batch pop past the second stalls; the watchdog must flag the
  // workers, release the injected stalls, and replay their missed
  // batches sequentially to the exact same contents.
  FaultGuard guard("worker.stall:1:2");
  VectorSink a, b;
  ParallelOptions options;
  options.jobs = 2;
  options.batch_records = 16;
  options.queue_batches = 2;
  options.worker_timeout = 0.2;
  ParallelFanOut fanout({&a, &b}, options);
  feed(fanout, input);

  const PipelineCounters& counters = fanout.counters();
  EXPECT_GE(counters.stalled_workers, 1u);
  EXPECT_EQ(counters.recovered_workers, counters.stalled_workers);
  EXPECT_EQ(counters.lost_workers, 0u);
  EXPECT_GE(counters.replayed_batches, 1u);
  EXPECT_EQ(a.records(), reference.records());
  EXPECT_EQ(b.records(), reference.records());
  const std::string summary = counters.summary();
  EXPECT_NE(summary.find("supervision:"), std::string::npos);
}

TEST(ParallelFanOutSupervision, ThrowingWorkerIsRecovered) {
  TraceContext ctx;
  const auto input = make_records(ctx, 300);
  FaultGuard guard("worker.throw:1:1");
  VectorSink a;
  ParallelOptions options;
  options.jobs = 1;
  options.batch_records = 16;
  options.worker_timeout = 0.2;
  ParallelFanOut fanout({&a}, options);
  feed(fanout, input);  // must not throw: the failure is recovered
  EXPECT_EQ(fanout.counters().recovered_workers, 1u);
  EXPECT_EQ(fanout.counters().lost_workers, 0u);
  EXPECT_EQ(a.records(), input);
}

TEST(ParallelFanOutSupervision, UnsupervisedWorkerFaultStaysFatal) {
  TraceContext ctx;
  const auto input = make_records(ctx, 300);
  FaultGuard guard("worker.throw:1:1");
  VectorSink a;
  ParallelOptions options;
  options.jobs = 1;
  options.batch_records = 16;  // worker_timeout stays 0: no supervision
  ParallelFanOut fanout({&a}, options);
  for (const TraceRecord& rec : input) fanout.on_record(rec);
  EXPECT_THROW(fanout.on_end(), Error);
}

TEST(ParallelFanOutSupervision, PrematureExitIsRecovered) {
  TraceContext ctx;
  const auto input = make_records(ctx, 300);
  FaultGuard guard("worker.exit:1:1");
  VectorSink a;
  ParallelOptions options;
  options.jobs = 1;
  options.batch_records = 16;
  options.worker_timeout = 0.2;
  ParallelFanOut fanout({&a}, options);
  feed(fanout, input);
  EXPECT_EQ(fanout.counters().recovered_workers, 1u);
  EXPECT_EQ(a.records(), input);
}

TEST(ParallelFanOutSupervision, SpilledReplayBufferLosesFailedWorker) {
  TraceContext ctx;
  const auto input = make_records(ctx, 300);
  FaultGuard guard("worker.throw:1:1");
  Budget tiny(64);  // far below one batch: retention spills immediately
  VectorSink a;
  ParallelOptions options;
  options.jobs = 1;
  options.batch_records = 16;
  options.worker_timeout = 0.2;
  options.memory = &tiny;
  ParallelFanOut fanout({&a}, options);
  for (const TraceRecord& rec : input) fanout.on_record(rec);
  EXPECT_THROW(fanout.on_end(), Error);
  EXPECT_TRUE(fanout.counters().replay_spilled);
  EXPECT_EQ(fanout.counters().lost_workers, 1u);
  EXPECT_EQ(fanout.counters().recovered_workers, 0u);
  EXPECT_EQ(tiny.used(), 0u);  // the spill released every charge
}

TEST(ParallelFanOutSupervision, CleanSupervisedRunRetainsNothingVisible) {
  TraceContext ctx;
  const auto input = make_records(ctx, 200);
  VectorSink a, b;
  ParallelOptions options;
  options.jobs = 2;
  options.batch_records = 16;
  options.worker_timeout = 5;  // armed but never tripped
  ParallelFanOut fanout({&a, &b}, options);
  feed(fanout, input);
  EXPECT_EQ(fanout.counters().stalled_workers, 0u);
  EXPECT_EQ(fanout.counters().recovered_workers, 0u);
  EXPECT_EQ(fanout.counters().lost_workers, 0u);
  EXPECT_EQ(a.records(), input);
  EXPECT_EQ(b.records(), input);
  // The summary must not mention supervision on a clean run — tools
  // print it verbatim and clean output stays byte-identical.
  EXPECT_EQ(fanout.counters().summary().find("supervision:"),
            std::string::npos);
}

}  // namespace
}  // namespace tdt::trace
