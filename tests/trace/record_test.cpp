#include "trace/record.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::trace {
namespace {

TEST(AccessKind, CodesRoundTrip) {
  for (AccessKind k : {AccessKind::Load, AccessKind::Store, AccessKind::Modify,
                       AccessKind::Instr, AccessKind::Misc}) {
    AccessKind parsed;
    ASSERT_TRUE(parse_access_kind(access_kind_code(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  AccessKind dummy;
  EXPECT_FALSE(parse_access_kind('Q', dummy));
}

TEST(VarScope, CodesRoundTrip) {
  for (VarScope s : {VarScope::LocalVariable, VarScope::LocalStructure,
                     VarScope::GlobalVariable, VarScope::GlobalStructure}) {
    VarScope parsed;
    ASSERT_TRUE(parse_var_scope(var_scope_code(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  VarScope dummy;
  EXPECT_FALSE(parse_var_scope("XX", dummy));
  EXPECT_FALSE(parse_var_scope("", dummy));
}

TEST(VarScope, Predicates) {
  EXPECT_TRUE(is_structure_scope(VarScope::LocalStructure));
  EXPECT_TRUE(is_structure_scope(VarScope::GlobalStructure));
  EXPECT_FALSE(is_structure_scope(VarScope::LocalVariable));
  EXPECT_TRUE(is_global_scope(VarScope::GlobalVariable));
  EXPECT_TRUE(is_global_scope(VarScope::GlobalStructure));
  EXPECT_FALSE(is_global_scope(VarScope::LocalStructure));
}

TEST(VarRef, ParseAndFormatSimple) {
  TraceContext ctx;
  const VarRef v = ctx.parse_var("glScalar");
  EXPECT_EQ(ctx.name(v.base), "glScalar");
  EXPECT_TRUE(v.steps.empty());
  EXPECT_EQ(ctx.format_var(v), "glScalar");
}

TEST(VarRef, ParseNestedStructureAccess) {
  TraceContext ctx;
  const VarRef v = ctx.parse_var("glStructArray[0].myArray[1]");
  EXPECT_EQ(ctx.name(v.base), "glStructArray");
  ASSERT_EQ(v.steps.size(), 3u);
  EXPECT_FALSE(v.steps[0].is_field);
  EXPECT_EQ(v.steps[0].index, 0u);
  EXPECT_TRUE(v.steps[1].is_field);
  EXPECT_EQ(ctx.name(v.steps[1].field), "myArray");
  EXPECT_EQ(v.steps[2].index, 1u);
  EXPECT_EQ(ctx.format_var(v), "glStructArray[0].myArray[1]");
}

TEST(VarRef, RoundTripSweep) {
  TraceContext ctx;
  for (const char* text :
       {"lSoA.mX[3]", "lAoS[7].mY", "lS1[0].mRarelyUsed.mZ", "_zzq_args[5]",
        "a.b.c.d", "x[1][2][3]"}) {
    EXPECT_EQ(ctx.format_var(ctx.parse_var(text)), text);
  }
}

TEST(VarRef, ParseErrors) {
  TraceContext ctx;
  EXPECT_THROW(ctx.parse_var(""), Error);
  EXPECT_THROW(ctx.parse_var("1bad"), Error);
  EXPECT_THROW(ctx.parse_var("a..b"), Error);
  EXPECT_THROW(ctx.parse_var("a[x]"), Error);
  EXPECT_THROW(ctx.parse_var("a[3"), Error);
  EXPECT_THROW(ctx.parse_var("a!"), Error);
}

TEST(VarRef, Equality) {
  TraceContext ctx;
  EXPECT_EQ(ctx.parse_var("a.b[1]"), ctx.parse_var("a.b[1]"));
  EXPECT_FALSE(ctx.parse_var("a.b[1]") == ctx.parse_var("a.b[2]"));
  EXPECT_FALSE(ctx.parse_var("a.b[1]") == ctx.parse_var("a.c[1]"));
}

TEST(FormatRecord, LocalScalarMatchesPaperShape) {
  // Paper Listing 2: `S 7ff0001bc 4 main LV 0 1 lcScalar`
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Store;
  rec.address = 0x7ff0001bc;
  rec.size = 4;
  rec.function = ctx.intern("main");
  rec.scope = VarScope::LocalVariable;
  rec.frame = 0;
  rec.thread = 1;
  rec.var = ctx.parse_var("lcScalar");
  EXPECT_EQ(ctx.format_record(rec), "S 7ff0001bc 4 main LV 0 1 lcScalar");
}

TEST(FormatRecord, GlobalOmitsFrameAndThread) {
  // Paper Listing 2: `S 000601040 4 main GV glScalar`
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Store;
  rec.address = 0x601040;
  rec.size = 4;
  rec.function = ctx.intern("main");
  rec.scope = VarScope::GlobalVariable;
  rec.var = ctx.parse_var("glScalar");
  EXPECT_EQ(ctx.format_record(rec), "S 000601040 4 main GV glScalar");
}

TEST(FormatRecord, UnannotatedStopsAfterFunction) {
  // Paper Listing 2: `L 7ff0001b0 8 main`
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Load;
  rec.address = 0x7ff0001b0;
  rec.size = 8;
  rec.function = ctx.intern("main");
  EXPECT_EQ(ctx.format_record(rec), "L 7ff0001b0 8 main");
}

TEST(FormatRecord, GlobalStructureElement) {
  // Paper Listing 2: `S 0006010e0 8 foo GS glStructArray[0].dl`
  TraceContext ctx;
  TraceRecord rec;
  rec.kind = AccessKind::Store;
  rec.address = 0x6010e0;
  rec.size = 8;
  rec.function = ctx.intern("foo");
  rec.scope = VarScope::GlobalStructure;
  rec.var = ctx.parse_var("glStructArray[0].dl");
  EXPECT_EQ(ctx.format_record(rec), "S 0006010e0 8 foo GS glStructArray[0].dl");
}

TEST(TraceRecord, DefaultEqualityIsStructural) {
  TraceContext ctx;
  TraceRecord a, b;
  a.function = b.function = ctx.intern("main");
  EXPECT_EQ(a, b);
  b.address = 4;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace tdt::trace
