#include "trace/codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/error.hpp"

namespace tdt::trace {
namespace {

std::string sample_payload() {
  std::string s;
  for (int i = 0; i < 500; ++i) {
    s += "L 7ff0001b0 8 main LV 0 1 lcl_" + std::to_string(i % 7) + "\n";
  }
  return s;
}

TEST(Codec, NamesRoundTrip) {
  EXPECT_EQ(codec_name(Codec::None), "none");
  EXPECT_EQ(codec_name(Codec::Zstd), "zstd");
  EXPECT_EQ(codec_name(Codec::Lz4), "lz4");
  for (const Codec c : {Codec::None, Codec::Zstd, Codec::Lz4}) {
    EXPECT_EQ(parse_codec(codec_name(c)), c);
  }
  EXPECT_FALSE(parse_codec("gzip").has_value());
  EXPECT_FALSE(parse_codec("").has_value());
}

TEST(Codec, IdsAreWireStable) {
  EXPECT_EQ(codec_from_id(0), Codec::None);
  EXPECT_EQ(codec_from_id(1), Codec::Zstd);
  EXPECT_EQ(codec_from_id(2), Codec::Lz4);
  EXPECT_FALSE(codec_from_id(3).has_value());
  EXPECT_FALSE(codec_from_id(255).has_value());
}

TEST(Codec, CompressSpecGrammar) {
  EXPECT_EQ(parse_compress_spec("none").codec, Codec::None);
  EXPECT_EQ(parse_compress_spec("zstd").level, 0);
  const CompressSpec z9 = parse_compress_spec("zstd:9");
  EXPECT_EQ(z9.codec, Codec::Zstd);
  EXPECT_EQ(z9.level, 9);
  EXPECT_EQ(parse_compress_spec("lz4:3").codec, Codec::Lz4);
  EXPECT_THROW((void)parse_compress_spec("brotli"), Error);
  EXPECT_THROW((void)parse_compress_spec("zstd:fast"), Error);
  EXPECT_THROW((void)parse_compress_spec("zstd:"), Error);
  EXPECT_THROW((void)parse_compress_spec("zstd:99"), Error);
}

TEST(Codec, NoneAlwaysRoundTrips) {
  ASSERT_TRUE(codec_available(Codec::None));
  const std::string src = sample_payload();
  std::string packed;
  ASSERT_TRUE(codec_compress(Codec::None, 0, src, packed));
  EXPECT_EQ(packed, src);  // stored verbatim
  std::string restored;
  ASSERT_TRUE(codec_decompress(Codec::None, packed, src.size(), restored));
  EXPECT_EQ(restored, src);
  // None is strict about the declared size.
  EXPECT_FALSE(codec_decompress(Codec::None, packed, src.size() - 1,
                                restored));
}

TEST(Codec, OptionalCodecsRoundTripWhenAvailable) {
  const std::string src = sample_payload();
  for (const Codec c : {Codec::Zstd, Codec::Lz4}) {
    if (!codec_available(c)) {
      GTEST_LOG_(INFO) << codec_name(c) << " not available; skipping";
      continue;
    }
    std::string packed;
    ASSERT_TRUE(codec_compress(c, 0, src, packed)) << codec_name(c);
    EXPECT_LT(packed.size(), src.size()) << codec_name(c);
    std::string restored;
    ASSERT_TRUE(codec_decompress(c, packed, src.size(), restored))
        << codec_name(c);
    EXPECT_EQ(restored, src) << codec_name(c);
    // Corrupt input must fail cleanly, not crash or return garbage.
    std::string garbled = packed;
    garbled[garbled.size() / 2] =
        static_cast<char>(garbled[garbled.size() / 2] ^ 0x5A);
    std::string out;
    const bool ok = codec_decompress(c, garbled, src.size(), out);
    if (ok) EXPECT_NE(out, src) << codec_name(c);
  }
}

TEST(Codec, CompressBoundCoversEmptyAndLarge) {
  for (const Codec c : {Codec::None, Codec::Zstd, Codec::Lz4}) {
    EXPECT_GE(codec_compress_bound(c, 0), 0u);
    EXPECT_GE(codec_compress_bound(c, 1 << 20), std::size_t{1} << 20);
  }
}

TEST(Codec, GzipRoundTripsWhenAvailable) {
  if (!gzip_available()) {
    GTEST_LOG_(INFO) << "zlib not built in; skipping";
    return;
  }
  const std::string src = sample_payload();
  std::string gz;
  ASSERT_TRUE(gzip_compress(src, gz));
  ASSERT_GE(gz.size(), 2u);
  EXPECT_TRUE(looks_gzip(gz));
  EXPECT_FALSE(looks_gzip(src));

  GzipInflater inflater;
  inflater.set_input(gz);
  std::string out;
  char buf[4096];
  for (;;) {
    std::size_t produced = 0;
    const GzipInflater::Status st =
        inflater.inflate_chunk(buf, sizeof buf, &produced);
    out.append(buf, produced);
    if (st == GzipInflater::Status::Done ||
        st == GzipInflater::Status::NeedInput) {
      break;
    }
    ASSERT_NE(st, GzipInflater::Status::Error);
  }
  EXPECT_EQ(out, src);
}

TEST(Codec, GzipInflaterHandlesConcatenatedMembers) {
  if (!gzip_available()) {
    GTEST_LOG_(INFO) << "zlib not built in; skipping";
    return;
  }
  std::string a;
  std::string b;
  ASSERT_TRUE(gzip_compress("hello ", a));
  ASSERT_TRUE(gzip_compress("world\n", b));
  const std::string cat = a + b;  // what `cat a.gz b.gz` produces

  GzipInflater inflater;
  inflater.set_input(cat);
  std::string out;
  char buf[64];
  for (;;) {
    std::size_t produced = 0;
    const GzipInflater::Status st =
        inflater.inflate_chunk(buf, sizeof buf, &produced);
    out.append(buf, produced);
    if (st == GzipInflater::Status::Done ||
        st == GzipInflater::Status::NeedInput) {
      break;
    }
    ASSERT_NE(st, GzipInflater::Status::Error);
  }
  EXPECT_EQ(out, "hello world\n");
}

}  // namespace
}  // namespace tdt::trace
