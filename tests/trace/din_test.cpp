#include "trace/din.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

TEST(Din, ParsesLabelsAndAddresses) {
  TraceContext ctx;
  const auto records = read_din_string(ctx,
                                       "0 7ff000100\n"
                                       "1 7ff000104 8\n"
                                       "2 400000\n");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, AccessKind::Load);
  EXPECT_EQ(records[0].address, 0x7ff000100u);
  EXPECT_EQ(records[0].size, 4u);  // default
  EXPECT_EQ(records[1].kind, AccessKind::Store);
  EXPECT_EQ(records[1].size, 8u);
  EXPECT_EQ(records[2].kind, AccessKind::Instr);
  EXPECT_EQ(records[0].scope, VarScope::Unknown);
}

TEST(Din, DefaultSizeConfigurable) {
  TraceContext ctx;
  const auto records = read_din_string(ctx, "0 100\n", 8);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size, 8u);
}

TEST(Din, SkipsCommentsAndBlanks) {
  TraceContext ctx;
  const auto records =
      read_din_string(ctx, "# header\n\n0 100\n  \n# trailer\n");
  EXPECT_EQ(records.size(), 1u);
}

TEST(Din, RejectsMalformed) {
  TraceContext ctx;
  EXPECT_THROW((void)read_din_string(ctx, "3 100\n"), Error);       // label
  EXPECT_THROW((void)read_din_string(ctx, "0 zz\n"), Error);        // addr
  EXPECT_THROW((void)read_din_string(ctx, "0\n"), Error);           // fields
  EXPECT_THROW((void)read_din_string(ctx, "0 100 4 junk\n"), Error);
  EXPECT_THROW((void)read_din_string(ctx, "0 100 0\n"), Error);     // size 0
}

TEST(Din, WriteMapsKinds) {
  TraceContext ctx;
  const auto records = read_trace_string(ctx,
                                         "L 7ff000100 4 main\n"
                                         "S 7ff000104 8 main\n"
                                         "M 7ff000108 4 main\n"
                                         "I 000400000 4 main\n"
                                         "X 7ff000110 4 main\n");
  const std::string din = write_din_string(records);
  EXPECT_EQ(din,
            "0 7ff000100 4\n"
            "1 7ff000104 8\n"
            "1 7ff000108 4\n"  // Modify exports as a write
            "2 400000 4\n");   // Misc dropped
}

TEST(Din, RoundTripPreservesAddressStream) {
  TraceContext ctx;
  const auto original = read_din_string(ctx,
                                        "0 100 4\n1 104 8\n2 400000 4\n");
  const auto reparsed = read_din_string(ctx, write_din_string(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].kind, original[i].kind);
    EXPECT_EQ(reparsed[i].address, original[i].address);
    EXPECT_EQ(reparsed[i].size, original[i].size);
  }
}

TEST(Din, MissingFileThrowsIo) {
  TraceContext ctx;
  try {
    (void)read_din_file(ctx, "/no/such/trace.din");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

TEST(Din, GleipnirTraceExportsLosingOnlyMetadata) {
  // A Gleipnir trace exported to din and re-imported simulates to the
  // same hit/miss totals (addresses and kinds are what the cache sees).
  TraceContext ctx;
  const auto rich = read_trace_string(
      ctx,
      "S 7ff000100 4 main LV 0 1 i\n"
      "L 7ff000100 4 main LV 0 1 i\n"
      "S 000601040 4 main GV glScalar\n");
  const auto lean = read_din_string(ctx, write_din_string(rich));
  ASSERT_EQ(lean.size(), rich.size());
  for (std::size_t i = 0; i < rich.size(); ++i) {
    EXPECT_EQ(lean[i].address, rich[i].address);
    EXPECT_TRUE(lean[i].var.empty());
  }
}

}  // namespace
}  // namespace tdt::trace
