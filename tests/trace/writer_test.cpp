#include "trace/writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/reader.hpp"
#include "util/error.hpp"

namespace tdt::trace {
namespace {

TraceRecord make_record(TraceContext& ctx, AccessKind kind,
                        std::uint64_t addr, std::uint32_t size,
                        const char* func, VarScope scope = VarScope::Unknown,
                        const char* var = nullptr, std::uint16_t frame = 0) {
  TraceRecord rec;
  rec.kind = kind;
  rec.address = addr;
  rec.size = size;
  rec.function = ctx.intern(func);
  rec.scope = scope;
  rec.frame = frame;
  rec.thread = 1;
  if (var != nullptr) rec.var = ctx.parse_var(var);
  return rec;
}

TEST(Writer, EmitsMarkersAndRecords) {
  TraceContext ctx;
  std::vector<TraceRecord> records{
      make_record(ctx, AccessKind::Store, 0x7ff000100, 4, "main",
                  VarScope::LocalVariable, "i"),
      make_record(ctx, AccessKind::Load, 0x601040, 4, "main",
                  VarScope::GlobalVariable, "glScalar"),
  };
  const std::string text = write_trace_string(ctx, records, 777);
  EXPECT_EQ(text,
            "START PID 777\n"
            "S 7ff000100 4 main LV 0 1 i\n"
            "L 000601040 4 main GV glScalar\n"
            "END PID 777\n");
}

TEST(Writer, CountsRecords) {
  TraceContext ctx;
  std::ostringstream out;
  GleipnirWriter w(ctx, out);
  EXPECT_EQ(w.records_written(), 0u);
  w.write(make_record(ctx, AccessKind::Load, 0x10, 4, "f"));
  w.write(make_record(ctx, AccessKind::Load, 0x20, 4, "f"));
  EXPECT_EQ(w.records_written(), 2u);
}

// Parameterized round trip: format -> parse -> format over a spread of
// record shapes.
struct RoundTripCase {
  AccessKind kind;
  std::uint64_t addr;
  std::uint32_t size;
  VarScope scope;
  const char* var;
  std::uint16_t frame;
};

class WriterRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(WriterRoundTrip, TextSurvives) {
  const RoundTripCase& c = GetParam();
  TraceContext ctx;
  std::vector<TraceRecord> records{make_record(
      ctx, c.kind, c.addr, c.size, "fn", c.scope, c.var, c.frame)};
  const std::string text = write_trace_string(ctx, records, 1);
  TraceContext ctx2;
  const auto parsed = read_trace_string(ctx2, text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(ctx2.format_record(parsed[0]), ctx.format_record(records[0]));
  EXPECT_EQ(parsed[0].kind, c.kind);
  EXPECT_EQ(parsed[0].address, c.addr);
  EXPECT_EQ(parsed[0].size, c.size);
  EXPECT_EQ(parsed[0].scope, c.scope);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WriterRoundTrip,
    ::testing::Values(
        RoundTripCase{AccessKind::Load, 0x7ff000000, 8, VarScope::Unknown,
                      nullptr, 0},
        RoundTripCase{AccessKind::Store, 0x601040, 4,
                      VarScope::GlobalVariable, "glScalar", 0},
        RoundTripCase{AccessKind::Modify, 0x7ff000044, 4,
                      VarScope::LocalVariable, "i", 0},
        RoundTripCase{AccessKind::Store, 0x6010e0, 8,
                      VarScope::GlobalStructure, "glStructArray[0].dl", 0},
        RoundTripCase{AccessKind::Load, 0x7ff000060, 8,
                      VarScope::LocalStructure, "lcStrcArray[4].dl", 2},
        RoundTripCase{AccessKind::Misc, 0xdeadbeef, 1, VarScope::Unknown,
                      nullptr, 0},
        RoundTripCase{AccessKind::Store, 0x7ff000108, 8,
                      VarScope::LocalStructure, "_zzq_args[5]", 0},
        RoundTripCase{AccessKind::Instr, 0x400000, 4, VarScope::Unknown,
                      nullptr, 0}));

TEST(Writer, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tdt_writer_test.out")
          .string();
  TraceContext ctx;
  std::vector<TraceRecord> records{
      make_record(ctx, AccessKind::Store, 0x7ff000100, 4, "main",
                  VarScope::LocalStructure, "lSoA.mX[3]"),
  };
  write_trace_file(ctx, records, path, 55);
  TraceContext ctx2;
  std::uint64_t pid = 0;
  const auto parsed = read_trace_file(ctx2, path, &pid);
  EXPECT_EQ(pid, 55u);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(ctx2.format_var(parsed[0].var), "lSoA.mX[3]");
  std::remove(path.c_str());
}

TEST(Writer, UnwritablePathThrowsIo) {
  TraceContext ctx;
  try {
    write_trace_file(ctx, {}, "/nonexistent-dir/trace.out");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

}  // namespace
}  // namespace tdt::trace
