# Daemon byte-identity contract (docs/SERVICE.md): a tool invocation
# served by tdtd over --connect must produce the same stdout, the same
# stderr, and the same exit code as the standalone run — for successes,
# for --help, for io errors, for corrupt inputs under every --on-error
# policy, and for injected faults. Plus the daemon lifecycle: detach
# readiness, memo-warm repeats, the gtracer local-only refusal, fault
# survival, and clean shutdown with the socket unlinked.
file(MAKE_DIRECTORY ${WORKDIR})
set(SOCK ${WORKDIR}/tdtd.sock)

function(check_rc what expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${what}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

# Run `tool args...` standalone and again through the daemon; all three
# observable channels must agree byte-for-byte, and the exit code must
# be the expected one.
function(run_pair what expect_rc tool)
  execute_process(
    COMMAND ${tool} ${ARGN}
    RESULT_VARIABLE local_rc OUTPUT_VARIABLE local_out
    ERROR_VARIABLE local_err)
  execute_process(
    COMMAND ${tool} --connect ${SOCK} ${ARGN}
    RESULT_VARIABLE rpc_rc OUTPUT_VARIABLE rpc_out ERROR_VARIABLE rpc_err)
  if(NOT local_rc STREQUAL rpc_rc)
    message(FATAL_ERROR "${what}: exit codes diverge: local ${local_rc} "
                        "vs --connect ${rpc_rc}\nlocal stderr: ${local_err}\n"
                        "rpc stderr: ${rpc_err}")
  endif()
  if(NOT local_out STREQUAL rpc_out)
    message(FATAL_ERROR "${what}: stdout diverges\n=== local ===\n"
                        "${local_out}\n=== --connect ===\n${rpc_out}")
  endif()
  if(NOT local_err STREQUAL rpc_err)
    message(FATAL_ERROR "${what}: stderr diverges\n=== local ===\n"
                        "${local_err}\n=== --connect ===\n${rpc_err}")
  endif()
  check_rc("${what}" ${expect_rc} "${local_rc}")
endfunction()

# Sweep-style runs print wall-clock pipeline counters on stderr, so only
# stdout and the exit code are comparable across two executions (the
# same contract cli_smoke.cmake pins for --jobs 1 vs --jobs 4).
function(run_pair_stdout what expect_rc tool)
  execute_process(
    COMMAND ${tool} ${ARGN}
    RESULT_VARIABLE local_rc OUTPUT_VARIABLE local_out ERROR_QUIET)
  execute_process(
    COMMAND ${tool} --connect ${SOCK} ${ARGN}
    RESULT_VARIABLE rpc_rc OUTPUT_VARIABLE rpc_out ERROR_QUIET)
  if(NOT local_rc STREQUAL rpc_rc)
    message(FATAL_ERROR "${what}: exit codes diverge: local ${local_rc} "
                        "vs --connect ${rpc_rc}")
  endif()
  if(NOT local_out STREQUAL rpc_out)
    message(FATAL_ERROR "${what}: stdout diverges\n=== local ===\n"
                        "${local_out}\n=== --connect ===\n${rpc_out}")
  endif()
  check_rc("${what}" ${expect_rc} "${local_rc}")
endfunction()

# -- Inputs: clean trace, transformed counterpart, corrupt trace. -------------
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 1024 --out ${WORKDIR}/orig.out
  RESULT_VARIABLE rc)
check_rc("gtracer" 0 "${rc}")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/orig.out --rules ${RULES}
          --xform-out ${WORKDIR}/xform.out --size 32768 --block 32 --assoc 1
  RESULT_VARIABLE rc OUTPUT_QUIET)
check_rc("dinerosim --xform-out" 0 "${rc}")
file(READ ${WORKDIR}/orig.out trace_text)
string(APPEND trace_text
  "Z 7ff0001b0 8 main\n"
  "S nothex 8 main\n")
file(WRITE ${WORKDIR}/bad.out "${trace_text}")

# -- Daemon up: --detach parent exits 0 only once the socket accepts. ---------
execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --workers 2 --queue 8
          --detach --pid-file ${WORKDIR}/tdtd.pid
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
check_rc("tdtd --detach" 0 "${rc}")
if(NOT out MATCHES "listening on")
  message(FATAL_ERROR "tdtd --detach readiness line missing: ${out}")
endif()
if(NOT EXISTS ${WORKDIR}/tdtd.pid)
  message(FATAL_ERROR "pid file not written")
endif()

execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --rpc status
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
check_rc("tdtd --rpc status" 0 "${rc}")
if(NOT out MATCHES "tdtd: workers=2 queue=")
  message(FATAL_ERROR "status reply unexpected: ${out}")
endif()

# -- Byte-identity matrix. ----------------------------------------------------
run_pair("traceinfo" 0 ${TRACEINFO} ${WORKDIR}/orig.out)
run_pair("traceinfo --help" 0 ${TRACEINFO} --help)
run_pair("traceinfo missing file" 2 ${TRACEINFO} ${WORKDIR}/no_such.out)
run_pair("dinerosim single config" 0 ${DINEROSIM}
         --trace ${WORKDIR}/orig.out --size 32768 --block 32 --assoc 1
         --per-set)
# Semicolons are escaped so the values survive the trip through the
# helper's ${ARGN} list expansion as single arguments.
run_pair_stdout("dinerosim sweep" 0 ${DINEROSIM} --trace ${WORKDIR}/orig.out
         --sweep "assoc=1\;assoc=2\;size=8k,assoc=4\;block=64")
run_pair("tracediff" 1 ${TRACEDIFF}
         ${WORKDIR}/orig.out ${WORKDIR}/xform.out --summary)
run_pair_stdout("tdtune" 0 ${TDTUNE} ${WORKDIR}/orig.out --sweep "assoc=1")
run_pair("dinerosim corrupt strict" 2 ${DINEROSIM}
         --trace ${WORKDIR}/bad.out --size 4096)
run_pair("dinerosim corrupt skip" 1 ${DINEROSIM}
         --trace ${WORKDIR}/bad.out --size 4096 --on-error=skip)

# -- Fault injection through the daemon. A reader fault at --jobs 1 is
#    fully deterministic (fixed seed, single refill on a small trace), so
#    it rides the byte-identity matrix: the daemon-served request must
#    degrade exactly like the local run.
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 64 --out ${WORKDIR}/small.out
  RESULT_VARIABLE rc)
check_rc("gtracer small" 0 "${rc}")
run_pair("dinerosim reader.read skip" 1 ${DINEROSIM}
         --trace ${WORKDIR}/small.out --size 4096 --on-error=skip
         --fault-spec "seed=7\;reader.read:1:1")
run_pair("dinerosim reader.read strict" 2 ${DINEROSIM}
         --trace ${WORKDIR}/small.out --size 4096 --on-error=strict
         --fault-spec "seed=7\;reader.read:1:1")

# Parallel-pipeline faults (worker.throw, queue.push-delay) print
# wall-clock pipeline counters, so exact bytes vary run to run; the
# contract here is survival — the worker throw degrades the request to
# exit 1 with the recovery diagnostic in the relayed stderr, the
# injected queue delays leave the result clean, and the daemon answers
# the next request as if nothing happened.
execute_process(
  COMMAND ${DINEROSIM} --connect ${SOCK} --trace ${WORKDIR}/orig.out
          --size 4096 --sweep "assoc=1;assoc=2" --jobs 4 --worker-timeout 5
          --fault-spec "seed=5;worker.throw:1:1"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
check_rc("daemon-served worker.throw" 1 "${rc}")
if(NOT out MATCHES "sweep summary")
  message(FATAL_ERROR "worker.throw run lost its results: ${out}")
endif()
if(NOT err MATCHES "pipe-worker")
  message(FATAL_ERROR "worker.throw recovery diagnostic missing: ${err}")
endif()
execute_process(
  COMMAND ${DINEROSIM} --connect ${SOCK} --trace ${WORKDIR}/orig.out
          --size 4096 --sweep "assoc=1;assoc=2" --jobs 4
          --fault-spec "seed=3;queue.push-delay:0.5;queue.pop-delay:0.5"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
check_rc("daemon-served queue delays" 0 "${rc}")
if(NOT out MATCHES "sweep summary")
  message(FATAL_ERROR "queue-delay run lost its results: ${out}")
endif()
execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --rpc status
  RESULT_VARIABLE rc OUTPUT_QUIET)
check_rc("tdtd alive after faults" 0 "${rc}")

# -- transform-digest: the daemon-only op (paper step 5 as one number). -------
execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --rpc transform-digest --
          ${WORKDIR}/orig.out --rules ${RULES}
  RESULT_VARIABLE rc OUTPUT_VARIABLE digest_a)
check_rc("transform-digest" 0 "${rc}")
if(NOT digest_a MATCHES "transform-digest: crc32:[0-9a-f]+ records_in=")
  message(FATAL_ERROR "transform-digest reply malformed: ${digest_a}")
endif()

# -- Memo: an identical repeat is byte-identical and counted as a hit. --------
execute_process(
  COMMAND ${TRACEINFO} --connect ${SOCK} ${WORKDIR}/orig.out
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm_out ERROR_VARIABLE warm_err)
check_rc("traceinfo memo-warm" 0 "${rc}")
execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/orig.out
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold_out)
check_rc("traceinfo local reference" 0 "${rc}")
if(NOT warm_out STREQUAL cold_out)
  message(FATAL_ERROR "memo-warm reply diverges from local run:\n"
                      "=== local ===\n${cold_out}\n=== warm ===\n${warm_out}")
endif()
execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --rpc metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE metrics)
check_rc("tdtd --rpc metrics" 0 "${rc}")
if(NOT metrics MATCHES "\"service.memo_hits\": [1-9]")
  message(FATAL_ERROR "memo hit not counted in metrics: ${metrics}")
endif()
if(NOT metrics MATCHES "\"service.requests\": [1-9]")
  message(FATAL_ERROR "request counter missing from metrics: ${metrics}")
endif()

# -- gtracer is local-only: --connect must be refused, not proxied. -----------
execute_process(
  COMMAND ${GTRACER} --connect ${SOCK} --kernel t1_soa --len 64
          --out ${WORKDIR}/refused.out
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("gtracer --connect refusal" 2 "${rc}")
if(NOT err MATCHES "--connect is not supported")
  message(FATAL_ERROR "gtracer refusal diagnostic missing: ${err}")
endif()

# -- Clean shutdown: the op replies first, then the daemon drains and
#    unlinks its socket.
execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --rpc shutdown
  RESULT_VARIABLE rc)
check_rc("tdtd --rpc shutdown" 0 "${rc}")
foreach(attempt RANGE 50)
  if(NOT EXISTS ${SOCK})
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(EXISTS ${SOCK})
  message(FATAL_ERROR "socket not unlinked after shutdown")
endif()
execute_process(
  COMMAND ${TDTD} --socket ${SOCK} --rpc status
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
check_rc("status after shutdown" 2 "${rc}")
if(NOT err MATCHES "is tdtd running")
  message(FATAL_ERROR "post-shutdown connect error unexpected: ${err}")
endif()
