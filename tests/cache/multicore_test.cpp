#include "cache/multicore.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"

namespace tdt::cache {
namespace {

using trace::TraceContext;
using trace::TraceRecord;

CacheConfig tiny() {
  CacheConfig c;
  c.size = 256;
  c.block_size = 32;
  c.assoc = 2;
  return c;
}

TEST(MultiCore, RoutesByThreadId) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "S 000001000 4 w LS 0 1 a[0]\n"   // thread 1 -> core 0
      "S 000002000 4 w LS 0 2 b[0]\n"); // thread 2 -> core 1
  MesiSystem sys(tiny(), 2);
  MultiCoreSim sim(sys, ctx);
  sim.simulate(records);
  EXPECT_EQ(sys.core_stats(0).accesses(), 1u);
  EXPECT_EQ(sys.core_stats(1).accesses(), 1u);
}

TEST(MultiCore, ThreadIdsWrapAroundCores) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx, "S 000001000 4 w LS 0 3 a[0]\n");  // thread 3 on 2 cores -> core 0
  MesiSystem sys(tiny(), 2);
  MultiCoreSim sim(sys, ctx);
  sim.simulate(records);
  EXPECT_EQ(sys.core_stats(0).accesses(), 1u);
}

TEST(MultiCore, FalseSharingDetectedOnDisjointBytes) {
  TraceContext ctx;
  // Two counters in the same 32-byte line, each written by its own core.
  std::string text;
  for (int i = 0; i < 8; ++i) {
    text += "M 000001000 4 w LS 0 1 counters[0]\n";
    text += "M 000001004 4 w LS 0 2 counters[1]\n";
  }
  MesiSystem sys(tiny(), 2);
  MultiCoreSim sim(sys, ctx);
  sim.simulate(trace::read_trace_string(ctx, text));
  EXPECT_GT(sim.false_sharing_invalidations(), 10u);
  EXPECT_EQ(sim.true_sharing_invalidations(), 0u);
  const auto& pairs = sim.false_sharing_pairs();
  EXPECT_EQ(pairs.at({"counters", "counters"}),
            sim.false_sharing_invalidations());
}

TEST(MultiCore, TrueSharingDetectedOnOverlappingBytes) {
  TraceContext ctx;
  std::string text;
  for (int i = 0; i < 8; ++i) {
    text += "M 000001000 4 w LS 0 1 flag\n";
    text += "M 000001000 4 w LS 0 2 flag\n";  // same bytes
  }
  MesiSystem sys(tiny(), 2);
  MultiCoreSim sim(sys, ctx);
  sim.simulate(trace::read_trace_string(ctx, text));
  EXPECT_GT(sim.true_sharing_invalidations(), 10u);
  EXPECT_EQ(sim.false_sharing_invalidations(), 0u);
}

TEST(MultiCore, SeparateLinesNoInvalidations) {
  TraceContext ctx;
  std::string text;
  for (int i = 0; i < 8; ++i) {
    text += "M 000001000 4 w LS 0 1 a\n";
    text += "M 000001040 4 w LS 0 2 b\n";  // different line
  }
  MesiSystem sys(tiny(), 2);
  MultiCoreSim sim(sys, ctx);
  sim.simulate(trace::read_trace_string(ctx, text));
  EXPECT_EQ(sys.total_invalidations(), 0u);
  EXPECT_EQ(sim.false_sharing_invalidations(), 0u);
}

TEST(MultiCore, ReportMentionsSharing) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "M 000001000 4 w LS 0 1 c[0]\n"
      "M 000001004 4 w LS 0 2 c[1]\n");
  MesiSystem sys(tiny(), 2);
  MultiCoreSim sim(sys, ctx);
  sim.simulate(records);
  const std::string report = sim.report();
  EXPECT_NE(report.find("false"), std::string::npos);
  EXPECT_NE(report.find("MESI"), std::string::npos);
}

TEST(Interleave, RoundRobinAssignsThreadIds) {
  TraceContext ctx;
  auto t1 = trace::read_trace_string(ctx,
                                     "L 000000010 4 f\nL 000000014 4 f\n");
  auto t2 = trace::read_trace_string(ctx, "S 000000020 4 g\n");
  const auto merged = trace::interleave_threads({t1, t2});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].thread, 1u);
  EXPECT_EQ(merged[0].address, 0x10u);
  EXPECT_EQ(merged[1].thread, 2u);
  EXPECT_EQ(merged[1].address, 0x20u);
  EXPECT_EQ(merged[2].thread, 1u);
  EXPECT_EQ(merged[2].address, 0x14u);
}

TEST(Interleave, ChunkGranularity) {
  TraceContext ctx;
  auto t1 = trace::read_trace_string(
      ctx, "L 000000010 4 f\nL 000000014 4 f\nL 000000018 4 f\n");
  auto t2 = trace::read_trace_string(
      ctx, "S 000000020 4 g\nS 000000024 4 g\n");
  const auto merged = trace::interleave_threads({t1, t2}, 2);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].thread, 1u);
  EXPECT_EQ(merged[1].thread, 1u);
  EXPECT_EQ(merged[2].thread, 2u);
  EXPECT_EQ(merged[3].thread, 2u);
  EXPECT_EQ(merged[4].thread, 1u);
}

TEST(Interleave, EmptyInputs) {
  EXPECT_TRUE(trace::interleave_threads({}).empty());
  TraceContext ctx;
  auto t1 = trace::read_trace_string(ctx, "L 000000010 4 f\n");
  const auto merged = trace::interleave_threads({t1, {}});
  ASSERT_EQ(merged.size(), 1u);
}

}  // namespace
}  // namespace tdt::cache
