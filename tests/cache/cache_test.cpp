#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::cache {
namespace {

CacheConfig tiny_dm() {
  CacheConfig c;
  c.name = "tiny";
  c.size = 256;  // 8 blocks of 32
  c.block_size = 32;
  c.assoc = 1;
  return c;
}

TEST(Cache, FirstTouchMisses) {
  CacheLevel cache(tiny_dm());
  const AccessOutcome o = cache.access(0x1000, false);
  EXPECT_FALSE(o.hit);
  EXPECT_EQ(o.miss_class, MissClass::Compulsory);
  EXPECT_EQ(cache.stats().read_misses, 1u);
}

TEST(Cache, SecondTouchHits) {
  CacheLevel cache(tiny_dm());
  (void)cache.access(0x1000, false);
  const AccessOutcome o = cache.access(0x1000, false);
  EXPECT_TRUE(o.hit);
  EXPECT_EQ(o.miss_class, MissClass::None);
}

TEST(Cache, SameBlockDifferentByteHits) {
  CacheLevel cache(tiny_dm());
  (void)cache.access(0x1000, false);
  EXPECT_TRUE(cache.access(0x101f, false).hit);
  EXPECT_FALSE(cache.access(0x1020, false).hit);  // next block
}

TEST(Cache, SetAndBlockComputedCorrectly) {
  CacheLevel cache(tiny_dm());
  const AccessOutcome o = cache.access(0x1234, false);
  EXPECT_EQ(o.block, 0x1234u / 32u);
  EXPECT_EQ(o.set, (0x1234u / 32u) % 8u);
}

TEST(Cache, DirectMappedConflictEvicts) {
  CacheLevel cache(tiny_dm());
  // Two addresses 256 bytes apart share a set in an 8-set cache.
  (void)cache.access(0x0, false);
  const AccessOutcome o = cache.access(0x100, false);
  EXPECT_FALSE(o.hit);
  EXPECT_TRUE(o.evicted);
  EXPECT_EQ(o.evicted_block, 0u);
  EXPECT_FALSE(cache.access(0x0, false).hit);  // evicted
}

TEST(Cache, TwoWaySurvivesTwoConflictingBlocks) {
  CacheConfig c = tiny_dm();
  c.assoc = 2;  // 4 sets
  CacheLevel cache(c);
  (void)cache.access(0x0, false);    // set 0
  (void)cache.access(0x80, false);   // 128 = block 4, set 0
  EXPECT_TRUE(cache.access(0x0, false).hit);
  EXPECT_TRUE(cache.access(0x80, false).hit);
}

TEST(Cache, HitsPlusMissesEqualsAccesses) {
  CacheLevel cache(tiny_dm());
  for (int i = 0; i < 1000; ++i) {
    (void)cache.access(static_cast<std::uint64_t>(i * 13) % 4096, i % 3 == 0);
  }
  const LevelStats& s = cache.stats();
  EXPECT_EQ(s.accesses(), 1000u);
  EXPECT_EQ(s.hits() + s.misses(), 1000u);
  EXPECT_EQ(s.compulsory + s.capacity + s.conflict, s.misses());
}

TEST(Cache, PerSetStatsSumToTotals) {
  CacheLevel cache(tiny_dm());
  for (int i = 0; i < 500; ++i) {
    (void)cache.access(static_cast<std::uint64_t>(i * 37) % 2048, false);
  }
  std::uint64_t hits = 0, misses = 0;
  for (const SetStats& s : cache.set_stats()) {
    hits += s.hits;
    misses += s.misses;
  }
  EXPECT_EQ(hits, cache.stats().hits());
  EXPECT_EQ(misses, cache.stats().misses());
}

TEST(Cache, WriteBackMarksDirtyAndWritesBackOnEviction) {
  CacheConfig c = tiny_dm();
  CacheConfig next_cfg = tiny_dm();
  next_cfg.size = 4096;
  CacheLevel l2(next_cfg);
  CacheLevel l1(c, &l2);
  (void)l1.access(0x0, true);            // write-allocate, dirty
  (void)l1.access(0x100, false);         // evicts dirty block 0
  EXPECT_EQ(l1.stats().writebacks, 1u);
  // L2 saw: fetch 0x0, fetch 0x100, writeback 0x0.
  EXPECT_EQ(l2.stats().accesses(), 3u);
  EXPECT_EQ(l2.stats().write_hits + l2.stats().write_misses, 1u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack) {
  CacheLevel cache(tiny_dm());
  (void)cache.access(0x0, false);
  (void)cache.access(0x100, false);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteThroughForwardsEveryWrite) {
  CacheConfig l1_cfg = tiny_dm();
  l1_cfg.write = WritePolicy::WriteThrough;
  CacheConfig l2_cfg = tiny_dm();
  l2_cfg.size = 4096;
  CacheLevel l2(l2_cfg);
  CacheLevel l1(l1_cfg, &l2);
  (void)l1.access(0x0, true);  // miss: fetch + forwarded write
  (void)l1.access(0x0, true);  // hit: forwarded write
  EXPECT_EQ(l1.stats().write_hits, 1u);
  EXPECT_EQ(l2.stats().write_hits + l2.stats().write_misses, 2u);
  // Write-through lines are never dirty: evicting produces no writeback.
  (void)l1.access(0x100, false);
  EXPECT_EQ(l1.stats().writebacks, 0u);
}

TEST(Cache, NoWriteAllocateBypassesOnWriteMiss) {
  CacheConfig c = tiny_dm();
  c.alloc = AllocPolicy::NoWriteAllocate;
  CacheLevel cache(c);
  (void)cache.access(0x0, true);
  EXPECT_FALSE(cache.contains_block(0));  // not allocated
  (void)cache.access(0x0, false);         // read miss allocates
  EXPECT_TRUE(cache.contains_block(0));
}

TEST(Cache, AccessRangeSplitsAcrossBlocks) {
  CacheLevel cache(tiny_dm());
  // 8 bytes starting 4 before a block boundary -> two blocks touched.
  (void)cache.access_range(0x101c, 8, false);
  EXPECT_TRUE(cache.contains_block(0x101c / 32));
  EXPECT_TRUE(cache.contains_block(0x1020 / 32));
  EXPECT_EQ(cache.stats().accesses(), 2u);
}

TEST(Cache, AccessRangeWithinBlockSingleAccess) {
  CacheLevel cache(tiny_dm());
  (void)cache.access_range(0x1000, 8, false);
  EXPECT_EQ(cache.stats().accesses(), 1u);
}

TEST(Cache, ZeroSizeRangeRejected) {
  CacheLevel cache(tiny_dm());
  EXPECT_THROW((void)cache.access_range(0x1000, 0, false), Error);
}

TEST(Cache, ResetClearsEverything) {
  CacheLevel cache(tiny_dm());
  (void)cache.access(0x0, true);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses(), 0u);
  EXPECT_FALSE(cache.contains_block(0));
  const AccessOutcome o = cache.access(0x0, false);
  EXPECT_EQ(o.miss_class, MissClass::Compulsory);  // seen-set cleared too
}

TEST(Cache, FlushKeepsStats) {
  CacheLevel cache(tiny_dm());
  (void)cache.access(0x0, false);
  cache.flush();
  EXPECT_EQ(cache.stats().accesses(), 1u);
  EXPECT_FALSE(cache.contains_block(0));
  // Re-access misses but is NOT compulsory (block was seen before).
  const AccessOutcome o = cache.access(0x0, false);
  EXPECT_FALSE(o.hit);
  EXPECT_NE(o.miss_class, MissClass::Compulsory);
}

TEST(Cache, SetOccupancyGrowsToAssoc) {
  CacheConfig c = tiny_dm();
  c.assoc = 4;  // 2 sets
  CacheLevel cache(c);
  for (int i = 0; i < 4; ++i) {
    (void)cache.access(static_cast<std::uint64_t>(i) * 64, false);  // set 0
  }
  EXPECT_EQ(cache.set_occupancy(0), 4u);
  EXPECT_EQ(cache.set_occupancy(1), 0u);
}

TEST(Cache, FullyAssociativeNoConflictMisses) {
  CacheConfig c;
  c.size = 256;
  c.block_size = 32;
  c.assoc = 0;
  CacheLevel cache(c);
  // Touch 8 blocks (exactly capacity) twice: all second touches hit.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      (void)cache.access(static_cast<std::uint64_t>(i) * 4096, false);
    }
  }
  EXPECT_EQ(cache.stats().misses(), 8u);
  EXPECT_EQ(cache.stats().conflict, 0u);
}

TEST(Cache, MissRatioComputed) {
  CacheLevel cache(tiny_dm());
  (void)cache.access(0x0, false);
  (void)cache.access(0x0, false);
  EXPECT_DOUBLE_EQ(cache.stats().miss_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(LevelStats{}.miss_ratio(), 0.0);
}

}  // namespace
}  // namespace tdt::cache
