#include "cache/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "trace/parallel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tdt::cache {
namespace {

TEST(SweepSpec, ParsesPointsAndOverrides) {
  CacheConfig base;
  const auto points =
      parse_sweep_spec("assoc=1;assoc=2;size=8k,assoc=4;block=64", base);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].levels[0].assoc, 1u);
  EXPECT_EQ(points[1].levels[0].assoc, 2u);
  EXPECT_EQ(points[2].levels[0].size, 8192u);
  EXPECT_EQ(points[2].levels[0].assoc, 4u);
  EXPECT_EQ(points[3].levels[0].block_size, 64u);
  EXPECT_EQ(points[3].levels[0].size, base.size);
}

TEST(SweepSpec, EmptyPointKeepsBase) {
  CacheConfig base;
  base.assoc = 2;
  const auto points = parse_sweep_spec(";assoc=4", base);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].levels[0].assoc, 2u);
  EXPECT_EQ(points[1].levels[0].assoc, 4u);
}

TEST(SweepSpec, SizeSuffixesAndPolicies) {
  CacheConfig base;
  const auto points =
      parse_sweep_spec("size=1M,repl=rr,prefetch=miss", base);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].levels[0].size, 1024u * 1024u);
  EXPECT_EQ(points[0].levels[0].replacement, ReplacementPolicy::RoundRobin);
  EXPECT_EQ(points[0].levels[0].prefetch, PrefetchPolicy::Miss);
}

TEST(SweepSpec, ExtraLevelsAppendToEveryPoint) {
  CacheConfig base;
  CacheConfig l2;
  l2.name = "L2";
  l2.size = 256 * 1024;
  l2.block_size = 64;
  l2.assoc = 8;
  const auto points = parse_sweep_spec("assoc=1;assoc=2", base, {l2});
  ASSERT_EQ(points.size(), 2u);
  for (const SweepPoint& p : points) {
    ASSERT_EQ(p.levels.size(), 2u);
    EXPECT_EQ(p.levels[1].name, "L2");
  }
}

TEST(SweepSpec, DedupesDuplicatePointsWithWarning) {
  CacheConfig base;
  std::vector<std::string> warnings;
  // "assoc=1" twice, plus a different spelling of the base configuration
  // (the default is already 1-way 32 KiB / 32 B blocks).
  const auto points = parse_sweep_spec("assoc=1;assoc=2;assoc=1;size=32k",
                                       base, {}, &warnings);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].levels[0].assoc, 1u);
  EXPECT_EQ(points[1].levels[0].assoc, 2u);
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("duplicate sweep point 2"), std::string::npos);
  EXPECT_NE(warnings[1].find("duplicate sweep point 3"), std::string::npos);
}

TEST(SweepSpec, DedupeConsidersExtraLevelsAndNeverEmptiesTheList) {
  CacheConfig base;
  CacheConfig l2;
  l2.name = "L2";
  l2.size = 256 * 1024;
  l2.block_size = 64;
  l2.assoc = 8;
  // All duplicates collapse to one point; without a warnings sink the
  // dedupe is silent.
  const auto points = parse_sweep_spec(";;", base, {l2});
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].levels.size(), 2u);
}

TEST(SweepSpec, RejectsMalformedSpecs) {
  CacheConfig base;
  EXPECT_THROW(parse_sweep_spec("bogus=1", base), Error);
  EXPECT_THROW(parse_sweep_spec("assoc", base), Error);
  EXPECT_THROW(parse_sweep_spec("size=abc", base), Error);
  EXPECT_THROW(parse_sweep_spec("", base), Error);
  // Invalid geometry (non-power-of-two) is caught by validate().
  EXPECT_THROW(parse_sweep_spec("size=1000", base), Error);
}

TEST(LevelStatsMerge, SumsEveryField) {
  LevelStats a, b;
  a.read_hits = 1;
  a.write_misses = 2;
  a.conflict = 3;
  b.read_hits = 10;
  b.write_misses = 20;
  b.prefetches = 5;
  merge_into(a, b);
  EXPECT_EQ(a.read_hits, 11u);
  EXPECT_EQ(a.write_misses, 22u);
  EXPECT_EQ(a.conflict, 3u);
  EXPECT_EQ(a.prefetches, 5u);
}

std::vector<trace::TraceRecord> pseudo_random_trace(std::size_t n) {
  // Deterministic mix of sequential walking and random jumps, with loads,
  // stores and modifies of several sizes — enough to hit every stats
  // field (compulsory/capacity/conflict, writebacks, evictions).
  std::vector<trace::TraceRecord> records;
  records.reserve(n);
  Xoshiro256 rng(42);
  std::uint64_t walk = 0x10000;
  for (std::size_t i = 0; i < n; ++i) {
    trace::TraceRecord rec;
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 60) {
      rec.address = walk;
      walk += 8;
    } else {
      rec.address = 0x10000 + rng.next_below(1 << 20);
    }
    rec.kind = roll % 10 < 6   ? trace::AccessKind::Load
               : roll % 10 < 9 ? trace::AccessKind::Store
                               : trace::AccessKind::Modify;
    rec.size = roll % 3 == 0 ? 8 : 4;
    records.push_back(rec);
  }
  return records;
}

std::vector<SweepPoint> property_points() {
  CacheConfig base;
  base.size = 4096;
  base.block_size = 32;
  return parse_sweep_spec(
      "assoc=1;assoc=2,repl=random;assoc=4,repl=rr;size=8k,block=64", base);
}

TEST(ParallelSweep, ParallelRunIsBitIdenticalToSequential) {
  const auto records = pseudo_random_trace(20000);
  SimOptions options;
  options.modify_is_read_write = true;

  // Reference: each point simulated on its own, sequentially.
  ParallelSweep sequential(property_points(), options);
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    sequential.sim(i).simulate(records);
  }

  // One pass, fanned out over 4 worker threads, fed in uneven chunks.
  ParallelSweep parallel(property_points(), options);
  trace::ParallelOptions popt;
  popt.jobs = 4;
  popt.batch_records = 1000;
  popt.queue_batches = 2;
  trace::ParallelFanOut fanout(parallel.sinks(), popt);
  std::span<const trace::TraceRecord> rest(records);
  while (!rest.empty()) {
    const std::size_t take = std::min<std::size_t>(rest.size(), 1000);
    fanout.push_batch(rest.subspan(0, take));
    rest = rest.subspan(take);
  }
  fanout.on_end();

  ASSERT_EQ(fanout.counters().jobs, 4u);
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const CacheLevel& seq_l1 = sequential.hierarchy(i).l1();
    const CacheLevel& par_l1 = parallel.hierarchy(i).l1();
    EXPECT_EQ(seq_l1.stats(), par_l1.stats()) << "point " << i;
    EXPECT_EQ(seq_l1.set_stats(), par_l1.set_stats()) << "point " << i;
  }
  // The rendered reports (including miss-class breakdowns) match byte for
  // byte — the tool-level guarantee behind dinerosim --jobs.
  EXPECT_EQ(sequential.report(), parallel.report());
  EXPECT_EQ(sequential.merged_l1(), parallel.merged_l1());
}

TEST(ParallelSweep, PageMapperIsPerPoint) {
  // A stateful first-touch mapper must not be shared between points:
  // every point sees the same first-touch order, so results still match
  // a sequential run of each point.
  const auto records = pseudo_random_trace(5000);
  PageMapSpec page;
  page.policy = PagePolicy::FirstTouch;
  page.page_size = 4096;

  ParallelSweep sequential(property_points(), {}, page);
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    sequential.sim(i).simulate(records);
  }

  ParallelSweep parallel(property_points(), {}, page);
  trace::ParallelOptions popt;
  popt.jobs = 2;
  popt.batch_records = 512;
  trace::ParallelFanOut fanout(parallel.sinks(), popt);
  fanout.push_batch(records);
  fanout.on_end();

  EXPECT_EQ(sequential.report(), parallel.report());
}

TEST(ParallelSweep, ReportContainsSummaryTable) {
  ParallelSweep sweep(property_points(), {});
  const auto records = pseudo_random_trace(100);
  trace::ParallelFanOut fanout(sweep.sinks(), {});
  fanout.push_batch(records);
  fanout.on_end();
  const std::string report = sweep.report();
  EXPECT_NE(report.find("sweep point 0"), std::string::npos);
  EXPECT_NE(report.find("sweep summary"), std::string::npos);
  EXPECT_NE(report.find("merged L1 totals"), std::string::npos);
  EXPECT_NE(report.find("miss ratio"), std::string::npos);
}

}  // namespace
}  // namespace tdt::cache
