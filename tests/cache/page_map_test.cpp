#include "cache/page_map.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "trace/reader.hpp"
#include "util/error.hpp"

namespace tdt::cache {
namespace {

TEST(PageMap, IdentityIsTransparent) {
  PageMapper mapper(PagePolicy::Identity);
  EXPECT_EQ(mapper.translate(0x7ff000123), 0x7ff000123u);
  EXPECT_EQ(mapper.pages_touched(), 0u);  // identity keeps no table
}

TEST(PageMap, FirstTouchAssignsSequentialFrames) {
  PageMapper mapper(PagePolicy::FirstTouch, 4096);
  // Two addresses on distant virtual pages land on frames 0 and 1.
  EXPECT_EQ(mapper.translate(0x7ff000010), 0x010u);
  EXPECT_EQ(mapper.translate(0x000601040), 4096u + 0x040u);
  EXPECT_EQ(mapper.pages_touched(), 2u);
}

TEST(PageMap, MappingIsStablePerPage) {
  PageMapper mapper(PagePolicy::FirstTouch, 4096);
  const std::uint64_t first = mapper.translate(0x7ff000010);
  EXPECT_EQ(mapper.translate(0x7ff000020), first + 0x10);
  EXPECT_EQ(mapper.translate(0x7ff000010), first);
  EXPECT_EQ(mapper.pages_touched(), 1u);
}

TEST(PageMap, OffsetWithinPagePreserved) {
  PageMapper mapper(PagePolicy::Random, 4096, 64, 7);
  for (std::uint64_t v : {0x12345ull, 0x7ff000abcull, 0x601fffull}) {
    EXPECT_EQ(mapper.translate(v) % 4096, v % 4096);
  }
}

TEST(PageMap, RandomIsDeterministicPerSeed) {
  PageMapper a(PagePolicy::Random, 4096, 128, 42);
  PageMapper b(PagePolicy::Random, 4096, 128, 42);
  for (std::uint64_t page = 0; page < 50; ++page) {
    EXPECT_EQ(a.translate(page * 4096), b.translate(page * 4096));
  }
}

TEST(PageMap, RandomFramesBoundedByFrameCount) {
  PageMapper mapper(PagePolicy::Random, 4096, 16, 3);
  for (std::uint64_t page = 0; page < 200; ++page) {
    EXPECT_LT(mapper.translate(page * 4096) / 4096, 16u);
  }
}

TEST(PageMap, FirstTouchWrapsAtFrameCount) {
  PageMapper mapper(PagePolicy::FirstTouch, 4096, 4);
  std::set<std::uint64_t> frames;
  for (std::uint64_t page = 0; page < 8; ++page) {
    frames.insert(mapper.translate(page * 4096) / 4096);
  }
  EXPECT_EQ(frames.size(), 4u);  // wrapped: pages share frames
}

TEST(PageMap, NonPowerOfTwoPageRejected) {
  EXPECT_THROW(PageMapper(PagePolicy::FirstTouch, 3000), Error);
}

TEST(PageMap, PolicyNames) {
  EXPECT_EQ(to_string(PagePolicy::Identity), "identity");
  EXPECT_EQ(to_string(PagePolicy::FirstTouch), "first-touch");
  EXPECT_EQ(to_string(PagePolicy::Random), "random");
}

TEST(PageMap, SimWithMapperTranslatesBeforeIndexing) {
  // Two virtual addresses 1 MiB apart map to adjacent physical pages
  // under first-touch — in a physically indexed cache they no longer
  // share a set the way their virtual addresses would.
  trace::TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000100000 4 main\n"   // vpage 0x100
      "L 000200000 4 main\n"); // vpage 0x200, same virtual set alignment
  CacheConfig cfg;
  cfg.size = 4096;  // page-sized cache: virtual aliases collide, physical
  cfg.block_size = 32;
  cfg.assoc = 1;

  // Virtual (identity): both addresses map to set 0 -> conflict eviction.
  {
    CacheHierarchy h(cfg);
    TraceCacheSim sim(h);
    sim.simulate(records);
    EXPECT_EQ(h.l1().stats().misses(), 2u);
    (void)h;
  }
  // Physical (first-touch): pages land on frames 0 and 1; with a
  // 4 KiB cache both still index set 0... use a 8 KiB cache so distinct
  // frames reach distinct halves.
  cfg.size = 8192;
  CacheHierarchy virt(cfg);
  TraceCacheSim vsim(virt);
  vsim.simulate(records);
  const std::uint64_t virt_set0 = virt.l1().set_stats()[0].misses;

  CacheHierarchy phys(cfg);
  PageMapper mapper(PagePolicy::FirstTouch, 4096);
  SimOptions opts;
  opts.page_mapper = &mapper;
  TraceCacheSim psim(phys, opts);
  psim.simulate(records);
  // Physical placement packs the two pages adjacently: accesses land in
  // different sets than the sparse virtual layout.
  EXPECT_EQ(mapper.pages_touched(), 2u);
  EXPECT_EQ(phys.l1().stats().misses(), 2u);
  const std::uint64_t phys_set_hits =
      phys.l1().set_stats()[0].misses + phys.l1().set_stats()[128].misses;
  (void)virt_set0;
  EXPECT_EQ(phys_set_hits, 2u);  // sets 0 and 128 (4096/32) touched
}

}  // namespace
}  // namespace tdt::cache
