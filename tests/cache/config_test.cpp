#include "cache/config.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::cache {
namespace {

TEST(Config, GeometryDerivations) {
  CacheConfig c;
  c.size = 32768;
  c.block_size = 32;
  c.assoc = 1;
  EXPECT_EQ(c.num_blocks(), 1024u);
  EXPECT_EQ(c.num_sets(), 1024u);
  EXPECT_EQ(c.effective_assoc(), 1u);
}

TEST(Config, FullyAssociativeHasOneSet) {
  CacheConfig c;
  c.size = 4096;
  c.block_size = 64;
  c.assoc = 0;
  EXPECT_EQ(c.effective_assoc(), 64u);
  EXPECT_EQ(c.num_sets(), 1u);
}

TEST(Config, SetMappingModulo) {
  CacheConfig c;
  c.size = 32768;
  c.block_size = 32;
  c.assoc = 64;  // 16 sets (PPC440)
  EXPECT_EQ(c.num_sets(), 16u);
  EXPECT_EQ(c.set_of(0), 0u);
  EXPECT_EQ(c.set_of(32), 1u);
  EXPECT_EQ(c.set_of(16 * 32), 0u);
  EXPECT_EQ(c.set_of(512 + 31), 0u);
  EXPECT_EQ(c.block_of(95), 2u);
}

TEST(Config, ValidateRejectsNonPowerOfTwo) {
  CacheConfig c;
  c.size = 3000;
  c.block_size = 32;
  EXPECT_THROW(c.validate(), Error);
  c.size = 32768;
  c.block_size = 48;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Config, ValidateRejectsBadAssociativity) {
  CacheConfig c;
  c.size = 32768;
  c.block_size = 32;
  c.assoc = 3;  // 1024 blocks not divisible into power-of-two sets by 3
  EXPECT_THROW(c.validate(), Error);
}

TEST(Config, ValidateRejectsSizeBelowBlock) {
  CacheConfig c;
  c.size = 16;
  c.block_size = 32;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Config, PresetsAreValid) {
  EXPECT_NO_THROW(paper_direct_mapped().validate());
  EXPECT_NO_THROW(ppc440().validate());
  EXPECT_NO_THROW(modern_l1().validate());
  EXPECT_NO_THROW(modern_l2().validate());
}

TEST(Config, PaperPresetMatchesFigures3to7) {
  const CacheConfig c = paper_direct_mapped();
  EXPECT_EQ(c.size, 32768u);
  EXPECT_EQ(c.block_size, 32u);
  EXPECT_EQ(c.assoc, 1u);
  EXPECT_EQ(c.num_sets(), 1024u);
}

TEST(Config, Ppc440PresetMatchesSection4) {
  // "32k bytes, 64 ways per set with 32 bytes per cache line and ...
  // round-robin eviction" -> 16 sets, 2048 bytes per set.
  const CacheConfig c = ppc440();
  EXPECT_EQ(c.num_sets(), 16u);
  EXPECT_EQ(c.effective_assoc(), 64u);
  EXPECT_EQ(c.replacement, ReplacementPolicy::RoundRobin);
  EXPECT_EQ(c.effective_assoc() * c.block_size, 2048u);
}

TEST(Config, DescribeMentionsEverything) {
  const std::string d = ppc440().describe();
  EXPECT_NE(d.find("32 KiB"), std::string::npos);
  EXPECT_NE(d.find("64-way"), std::string::npos);
  EXPECT_NE(d.find("round-robin"), std::string::npos);
}

TEST(Config, PolicyNames) {
  EXPECT_EQ(to_string(ReplacementPolicy::Lru), "lru");
  EXPECT_EQ(to_string(ReplacementPolicy::Fifo), "fifo");
  EXPECT_EQ(to_string(ReplacementPolicy::Random), "random");
  EXPECT_EQ(to_string(ReplacementPolicy::RoundRobin), "round-robin");
  EXPECT_EQ(to_string(WritePolicy::WriteBack), "write-back");
  EXPECT_EQ(to_string(WritePolicy::WriteThrough), "write-through");
  EXPECT_EQ(to_string(AllocPolicy::WriteAllocate), "write-allocate");
  EXPECT_EQ(to_string(AllocPolicy::NoWriteAllocate), "no-write-allocate");
}

}  // namespace
}  // namespace tdt::cache
