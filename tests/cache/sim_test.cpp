#include "cache/sim.hpp"

#include <gtest/gtest.h>

#include "trace/reader.hpp"

namespace tdt::cache {
namespace {

using trace::TraceContext;
using trace::TraceRecord;

struct Probe final : AccessObserver {
  std::vector<AccessOutcome> outcomes;
  std::vector<TraceRecord> records;
  bool done = false;

  void on_access(const TraceRecord& rec, const AccessOutcome& o) override {
    records.push_back(rec);
    outcomes.push_back(o);
  }
  void on_done() override { done = true; }
};

CacheConfig tiny() {
  CacheConfig c;
  c.size = 256;
  c.block_size = 32;
  c.assoc = 1;
  return c;
}

TEST(Sim, SimulatesLoadsAndStores) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000001000 4 main\n"
      "S 000001000 4 main\n"
      "L 000001020 4 main\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  sim.simulate(records);
  EXPECT_EQ(sim.records_simulated(), 3u);
  EXPECT_EQ(h.l1().stats().read_misses, 2u);
  EXPECT_EQ(h.l1().stats().write_hits, 1u);
}

TEST(Sim, ModifyDefaultsToSingleWrite) {
  TraceContext ctx;
  const auto records =
      trace::read_trace_string(ctx, "M 000001000 4 main\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  sim.simulate(records);
  EXPECT_EQ(h.l1().stats().accesses(), 1u);
  EXPECT_EQ(h.l1().stats().write_misses, 1u);
}

TEST(Sim, ModifyAsReadWriteCountsBoth) {
  TraceContext ctx;
  const auto records =
      trace::read_trace_string(ctx, "M 000001000 4 main\n");
  CacheHierarchy h(tiny());
  SimOptions opts;
  opts.modify_is_read_write = true;
  TraceCacheSim sim(h, opts);
  sim.simulate(records);
  EXPECT_EQ(h.l1().stats().accesses(), 2u);
  EXPECT_EQ(h.l1().stats().read_misses, 1u);
  EXPECT_EQ(h.l1().stats().write_hits, 1u);
}

TEST(Sim, InstrRecordsIgnoredByDefault) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx, "I 000400000 4 main\nL 000001000 4 main\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  sim.simulate(records);
  EXPECT_EQ(sim.records_simulated(), 1u);

  CacheHierarchy h2(tiny());
  SimOptions opts;
  opts.ignore_instr = false;
  TraceCacheSim sim2(h2, opts);
  sim2.simulate(records);
  EXPECT_EQ(sim2.records_simulated(), 2u);
}

TEST(Sim, ObserversSeeEveryAccessAndDone) {
  TraceContext ctx;
  const auto records = trace::read_trace_string(
      ctx,
      "L 000001000 4 main GV glScalar\n"
      "S 000001020 4 main GV glScalar\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  Probe probe;
  sim.add_observer(&probe);
  sim.simulate(records);
  ASSERT_EQ(probe.outcomes.size(), 2u);
  EXPECT_FALSE(probe.outcomes[0].hit);
  EXPECT_EQ(ctx.format_var(probe.records[0].var), "glScalar");
  EXPECT_TRUE(probe.done);
}

TEST(Sim, ObserverGetsFirstBlockOutcomeForSplitAccess) {
  TraceContext ctx;
  // 8-byte access crossing a 32-byte boundary.
  const auto records =
      trace::read_trace_string(ctx, "L 00000101c 8 main\n");
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  Probe probe;
  sim.add_observer(&probe);
  sim.simulate(records);
  ASSERT_EQ(probe.outcomes.size(), 1u);
  EXPECT_EQ(probe.outcomes[0].block, 0x101cu / 32u);
  EXPECT_EQ(h.l1().stats().accesses(), 2u);  // both blocks simulated
}

TEST(Sim, StreamingSinkInterface) {
  TraceContext ctx;
  CacheHierarchy h(tiny());
  TraceCacheSim sim(h);
  trace::TraceSink& sink = sim;
  TraceRecord rec;
  rec.kind = trace::AccessKind::Load;
  rec.address = 0x1000;
  rec.size = 4;
  rec.function = ctx.intern("main");
  sink.on_record(rec);
  sink.on_end();
  EXPECT_EQ(sim.records_simulated(), 1u);
}

}  // namespace
}  // namespace tdt::cache
