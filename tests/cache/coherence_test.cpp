#include "cache/coherence.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tdt::cache {
namespace {

CacheConfig tiny() {
  CacheConfig c;
  c.size = 256;
  c.block_size = 32;
  c.assoc = 2;
  return c;
}

TEST(Mesi, FirstReadIsExclusive) {
  MesiSystem sys(tiny(), 2);
  const CoherenceOutcome o = sys.access(0, 0x1000, false);
  EXPECT_FALSE(o.hit);
  EXPECT_EQ(o.new_state, Mesi::Exclusive);
  EXPECT_EQ(sys.state_of(0, 0x1000 / 32), Mesi::Exclusive);
  EXPECT_EQ(sys.state_of(1, 0x1000 / 32), Mesi::Invalid);
}

TEST(Mesi, SecondReaderDemotesToShared) {
  MesiSystem sys(tiny(), 2);
  (void)sys.access(0, 0x1000, false);
  const CoherenceOutcome o = sys.access(1, 0x1000, false);
  EXPECT_FALSE(o.hit);
  EXPECT_EQ(o.new_state, Mesi::Shared);
  EXPECT_EQ(sys.state_of(0, 0x1000 / 32), Mesi::Shared);
  EXPECT_EQ(sys.state_of(1, 0x1000 / 32), Mesi::Shared);
}

TEST(Mesi, WriteOnExclusiveUpgradesSilently) {
  MesiSystem sys(tiny(), 2);
  (void)sys.access(0, 0x1000, false);
  const CoherenceOutcome o = sys.access(0, 0x1000, true);
  EXPECT_TRUE(o.hit);
  EXPECT_EQ(o.invalidated, 0u);
  EXPECT_EQ(o.new_state, Mesi::Modified);
}

TEST(Mesi, WriteOnSharedInvalidatesRemotes) {
  MesiSystem sys(tiny(), 3);
  (void)sys.access(0, 0x1000, false);
  (void)sys.access(1, 0x1000, false);
  (void)sys.access(2, 0x1000, false);
  const CoherenceOutcome o = sys.access(0, 0x1000, true);
  EXPECT_TRUE(o.hit);
  EXPECT_EQ(o.invalidated, 2u);
  EXPECT_EQ(sys.core_stats(0).upgrades, 1u);
  EXPECT_EQ(sys.state_of(1, 0x1000 / 32), Mesi::Invalid);
  EXPECT_EQ(sys.state_of(2, 0x1000 / 32), Mesi::Invalid);
  EXPECT_EQ(sys.core_stats(1).invalidations, 1u);
  EXPECT_EQ(sys.total_invalidations(), 2u);
}

TEST(Mesi, WriteMissInvalidatesRemoteModified) {
  MesiSystem sys(tiny(), 2);
  (void)sys.access(0, 0x1000, true);  // core 0: M
  const CoherenceOutcome o = sys.access(1, 0x1000, true);
  EXPECT_FALSE(o.hit);
  EXPECT_EQ(o.invalidated, 1u);
  EXPECT_EQ(sys.core_stats(0).writebacks, 1u);  // remote M flushed
  EXPECT_EQ(sys.state_of(1, 0x1000 / 32), Mesi::Modified);
  EXPECT_EQ(sys.state_of(0, 0x1000 / 32), Mesi::Invalid);
}

TEST(Mesi, ReadOfRemoteModifiedForcesWritebackAndShares) {
  MesiSystem sys(tiny(), 2);
  (void)sys.access(0, 0x1000, true);  // core 0: M
  const CoherenceOutcome o = sys.access(1, 0x1000, false);
  EXPECT_EQ(o.new_state, Mesi::Shared);
  EXPECT_EQ(sys.state_of(0, 0x1000 / 32), Mesi::Shared);
  EXPECT_EQ(sys.core_stats(0).writebacks, 1u);
}

TEST(Mesi, CoherenceMissClassified) {
  MesiSystem sys(tiny(), 2);
  (void)sys.access(0, 0x1000, false);
  (void)sys.access(1, 0x1000, true);  // invalidates core 0
  const CoherenceOutcome o = sys.access(0, 0x1000, false);
  EXPECT_FALSE(o.hit);
  EXPECT_TRUE(o.coherence_miss);
  EXPECT_EQ(sys.core_stats(0).coherence_misses, 1u);
}

TEST(Mesi, PingPongGeneratesInvalidationPerWrite) {
  MesiSystem sys(tiny(), 2);
  // Alternating writes to one line: every write after the first kills the
  // other core's copy.
  for (int i = 0; i < 10; ++i) {
    (void)sys.access(0, 0x1000, true);
    (void)sys.access(1, 0x1000, true);
  }
  EXPECT_EQ(sys.total_invalidations(), 19u);
}

TEST(Mesi, DistinctLinesDoNotInterfere) {
  MesiSystem sys(tiny(), 2);
  for (int i = 0; i < 10; ++i) {
    (void)sys.access(0, 0x1000, true);
    (void)sys.access(1, 0x1040, true);  // different block
  }
  EXPECT_EQ(sys.total_invalidations(), 0u);
  EXPECT_EQ(sys.core_stats(0).write_hits, 9u);
  EXPECT_EQ(sys.core_stats(1).write_hits, 9u);
}

TEST(Mesi, EvictionWritesBackModified) {
  CacheConfig c;
  c.size = 64;  // one set, two ways
  c.block_size = 32;
  c.assoc = 2;
  MesiSystem sys(c, 1);
  (void)sys.access(0, 0x0, true);
  (void)sys.access(0, 0x40, true);
  (void)sys.access(0, 0x80, true);  // evicts LRU modified line
  EXPECT_EQ(sys.core_stats(0).writebacks, 1u);
}

TEST(Mesi, SingleCoreBehavesLikePlainCache) {
  MesiSystem sys(tiny(), 1);
  (void)sys.access(0, 0x1000, false);
  EXPECT_TRUE(sys.access(0, 0x1000, false).hit);
  EXPECT_TRUE(sys.access(0, 0x1000, true).hit);
  EXPECT_EQ(sys.total_invalidations(), 0u);
}

TEST(Mesi, StatsInvariants) {
  MesiSystem sys(tiny(), 4);
  SplitMix64 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto core = static_cast<std::uint32_t>(rng.next() % 4);
    const std::uint64_t addr = (rng.next() % 64) * 32;
    (void)sys.access(core, addr, rng.next() % 2 == 0);
  }
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    const CoreStats& s = sys.core_stats(c);
    EXPECT_EQ(s.hits() + s.misses(), s.accesses());
    EXPECT_LE(s.coherence_misses, s.misses());
    total += s.accesses();
  }
  EXPECT_EQ(total, 5000u);
}

TEST(Mesi, BadCoreIdThrows) {
  MesiSystem sys(tiny(), 2);
  EXPECT_THROW((void)sys.access(2, 0x0, false), Error);
  EXPECT_THROW((void)sys.core_stats(5), Error);
}

TEST(Mesi, StateNames) {
  EXPECT_EQ(to_string(Mesi::Invalid), "I");
  EXPECT_EQ(to_string(Mesi::Shared), "S");
  EXPECT_EQ(to_string(Mesi::Exclusive), "E");
  EXPECT_EQ(to_string(Mesi::Modified), "M");
}

TEST(Mesi, ReportListsCores) {
  MesiSystem sys(tiny(), 2);
  (void)sys.access(0, 0x1000, true);
  const std::string report = sys.report();
  EXPECT_NE(report.find("core 0"), std::string::npos);
  EXPECT_NE(report.find("core 1"), std::string::npos);
}

}  // namespace
}  // namespace tdt::cache
