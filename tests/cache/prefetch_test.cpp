// Sequential prefetching (DineroIV's -Tfetch family): Always / Miss /
// Tagged next-block prefetch.
#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace tdt::cache {
namespace {

CacheConfig cfg_with(PrefetchPolicy p) {
  CacheConfig c;
  c.size = 1024;  // 32 blocks, plenty for these streams
  c.block_size = 32;
  c.assoc = 0;  // fully associative: no placement interference
  c.prefetch = p;
  return c;
}

std::uint64_t addr_of(int block) {
  return static_cast<std::uint64_t>(block) * 32;
}

TEST(Prefetch, NoneIssuesNothing) {
  CacheLevel cache(cfg_with(PrefetchPolicy::None));
  for (int b = 0; b < 8; ++b) (void)cache.access(addr_of(b), false);
  EXPECT_EQ(cache.stats().prefetches, 0u);
  EXPECT_EQ(cache.stats().prefetch_hits, 0u);
}

TEST(Prefetch, MissPolicyHidesSequentialStream) {
  CacheLevel cache(cfg_with(PrefetchPolicy::Miss));
  // Sequential walk: first block misses and prefetches the next; every
  // subsequent block hits its prefetched line — but a hit does not
  // prefetch further under Miss, so the stream alternates miss/hit.
  std::uint64_t misses = 0;
  for (int b = 0; b < 16; ++b) {
    if (!cache.access(addr_of(b), false).hit) ++misses;
  }
  EXPECT_EQ(misses, 8u);  // every other block
  EXPECT_EQ(cache.stats().prefetch_hits, 8u);
}

TEST(Prefetch, TaggedPolicyHidesWholeStream) {
  CacheLevel cache(cfg_with(PrefetchPolicy::Tagged));
  // Tagged re-arms on the first demand hit of a prefetched line, so a
  // sequential stream misses only once.
  std::uint64_t misses = 0;
  for (int b = 0; b < 16; ++b) {
    if (!cache.access(addr_of(b), false).hit) ++misses;
  }
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(cache.stats().prefetch_hits, 15u);
}

TEST(Prefetch, AlwaysPrefetchesOnHitsToo) {
  CacheLevel cache(cfg_with(PrefetchPolicy::Always));
  (void)cache.access(addr_of(0), false);  // miss, prefetch 1
  (void)cache.access(addr_of(0), false);  // hit, prefetch 1 (resident: no-op)
  EXPECT_EQ(cache.stats().prefetches, 1u);
  (void)cache.access(addr_of(1), false);  // hit on prefetched, prefetch 2
  EXPECT_EQ(cache.stats().prefetches, 2u);
  EXPECT_TRUE(cache.contains_block(2));
}

TEST(Prefetch, ResidentNextBlockNotRefetched) {
  CacheLevel cache(cfg_with(PrefetchPolicy::Miss));
  (void)cache.access(addr_of(5), false);  // miss, prefetch 6
  (void)cache.access(addr_of(4), false);  // miss, prefetch 5 (resident)
  EXPECT_EQ(cache.stats().prefetches, 1u);
}

TEST(Prefetch, PrefetchTrafficReachesNextLevel) {
  CacheConfig l2_cfg = cfg_with(PrefetchPolicy::None);
  l2_cfg.size = 4096;
  CacheLevel l2(l2_cfg);
  CacheConfig l1_cfg = cfg_with(PrefetchPolicy::Miss);
  CacheLevel l1(l1_cfg, &l2);
  (void)l1.access(addr_of(0), false);
  // L2 saw the demand fetch and the prefetch fetch.
  EXPECT_EQ(l2.stats().accesses(), 2u);
}

TEST(Prefetch, RandomStrideDefeatsSequentialPrefetch) {
  CacheLevel cache(cfg_with(PrefetchPolicy::Tagged));
  // Stride-7 walk: prefetched block+1 is never the next reference.
  std::uint64_t hits = 0;
  for (int i = 0; i < 16; ++i) {
    if (cache.access(addr_of((i * 7) % 128), false).hit) ++hits;
  }
  EXPECT_EQ(hits, 0u);
  EXPECT_GT(cache.stats().prefetches, 0u);
  EXPECT_EQ(cache.stats().prefetch_hits, 0u);
}

TEST(Prefetch, StatsInvariantHolds) {
  CacheLevel cache(cfg_with(PrefetchPolicy::Always));
  for (int i = 0; i < 500; ++i) {
    (void)cache.access(addr_of((i * 13) % 64), i % 4 == 0);
  }
  const LevelStats& s = cache.stats();
  EXPECT_EQ(s.hits() + s.misses(), 500u);
  EXPECT_LE(s.prefetch_hits, s.hits());
  EXPECT_EQ(s.compulsory + s.capacity + s.conflict, s.misses());
}

TEST(Prefetch, PolicyNames) {
  EXPECT_EQ(to_string(PrefetchPolicy::None), "no-prefetch");
  EXPECT_EQ(to_string(PrefetchPolicy::Always), "prefetch-always");
  EXPECT_EQ(to_string(PrefetchPolicy::Miss), "prefetch-on-miss");
  EXPECT_EQ(to_string(PrefetchPolicy::Tagged), "tagged-prefetch");
}

}  // namespace
}  // namespace tdt::cache
