#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tdt::cache {
namespace {

CacheConfig small(const char* name, std::uint64_t size) {
  CacheConfig c;
  c.name = name;
  c.size = size;
  c.block_size = 32;
  c.assoc = 2;
  return c;
}

TEST(Hierarchy, SingleLevel) {
  CacheHierarchy h(small("only", 256));
  EXPECT_EQ(h.depth(), 1u);
  (void)h.l1().access(0x100, false);
  EXPECT_EQ(h.l1().stats().accesses(), 1u);
}

TEST(Hierarchy, MissesPropagateToNextLevel) {
  CacheHierarchy h({small("l1", 256), small("l2", 4096)});
  EXPECT_EQ(h.depth(), 2u);
  (void)h.l1().access(0x100, false);
  EXPECT_EQ(h.level(1).stats().accesses(), 1u);  // demand fetch
  (void)h.l1().access(0x100, false);             // L1 hit: L2 untouched
  EXPECT_EQ(h.level(1).stats().accesses(), 1u);
}

TEST(Hierarchy, L2HitsAfterL1Eviction) {
  CacheHierarchy h({small("l1", 64), small("l2", 4096)});
  // L1 is 2 blocks (1 set x 2 ways); touch 3 conflicting blocks.
  (void)h.l1().access(0x0, false);
  (void)h.l1().access(0x40, false);
  (void)h.l1().access(0x80, false);  // evicts 0x0 from L1
  (void)h.l1().access(0x0, false);   // L1 miss, L2 hit
  EXPECT_GE(h.level(1).stats().read_hits, 1u);
}

TEST(Hierarchy, LevelsOrderedFrontFirst) {
  CacheHierarchy h({small("l1", 256), small("l2", 4096)});
  EXPECT_EQ(h.level(0).config().name, "l1");
  EXPECT_EQ(h.level(1).config().name, "l2");
  EXPECT_EQ(&h.l1(), &h.level(0));
  EXPECT_EQ(h.level(0).next(), &h.level(1));
  EXPECT_EQ(h.level(1).next(), nullptr);
}

TEST(Hierarchy, ThreeLevels) {
  CacheHierarchy h({small("l1", 64), small("l2", 256), small("l3", 4096)});
  (void)h.l1().access(0x100, false);
  EXPECT_EQ(h.level(1).stats().accesses(), 1u);
  EXPECT_EQ(h.level(2).stats().accesses(), 1u);
}

TEST(Hierarchy, ResetClearsAllLevels) {
  CacheHierarchy h({small("l1", 256), small("l2", 4096)});
  (void)h.l1().access(0x100, true);
  h.reset();
  EXPECT_EQ(h.l1().stats().accesses(), 0u);
  EXPECT_EQ(h.level(1).stats().accesses(), 0u);
}

TEST(Hierarchy, InclusionHoldsForLruUnderReadStream) {
  // With LRU and L2 >= L1 (same block size), any L1 hit implies the block
  // is also present in L2 for a read-only stream.
  CacheHierarchy h({small("l1", 128), small("l2", 1024)});
  Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.next_below(64) * 32;
    const bool l1_hit = h.l1().access(addr, false).hit;
    if (l1_hit) {
      EXPECT_TRUE(h.level(1).contains_block(addr / 32));
    }
  }
}

TEST(Hierarchy, EmptyConfigRejected) {
  EXPECT_THROW(CacheHierarchy h(std::vector<CacheConfig>{}), Error);
}

TEST(Hierarchy, ReportMentionsEveryLevel) {
  CacheHierarchy h({small("alpha", 256), small("beta", 4096)});
  (void)h.l1().access(0x0, false);
  const std::string report = h.report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("miss ratio"), std::string::npos);
}

}  // namespace
}  // namespace tdt::cache
