// Differential oracle for the cache simulator: an obviously-correct
// list-based reference cache is replayed access-by-access against
// CacheLevel (and a CacheHierarchy's L1) on a fixed-seed random stream,
// comparing every AccessOutcome field and the final LevelStats.
//
// The reference trades all efficiency for transparency: each set is an
// ordered vector (LRU recency order / FIFO fill order), the shadow cache
// is a plain front-ordered list, and every policy decision is a direct
// transcription of the documented semantics. Both models are exact, not
// statistical: CacheLevel's clock_ strictly increases, so its
// min-last_use / min-fill_time victim is unique and equals the list
// front.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"

namespace tdt::cache {
namespace {

/// What the reference predicts for one access.
struct RefOutcome {
  bool hit = false;
  MissClass miss_class = MissClass::None;
  std::uint64_t set = 0;
  bool evicted = false;
  std::uint64_t evicted_block = 0;
  bool writeback = false;
};

/// List-based single-level reference cache (write-back, write-allocate).
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config)
      : config_(config), sets_(config.num_sets()) {}

  RefOutcome access(std::uint64_t address, bool is_write) {
    const std::uint64_t block = address / config_.block_size;
    const std::uint64_t set_idx = block % config_.num_sets();
    std::vector<Entry>& set = sets_[set_idx];

    RefOutcome out;
    out.set = set_idx;
    auto it = set.begin();
    while (it != set.end() && it->block != block) ++it;
    if (it != set.end()) {
      out.hit = true;
      if (is_write) it->dirty = true;
      if (config_.replacement == ReplacementPolicy::Lru) {
        // Move to the most-recently-used end; FIFO keeps fill order.
        Entry touched = *it;
        set.erase(it);
        set.push_back(touched);
      }
    } else {
      if (!ever_seen_.contains(block)) {
        out.miss_class = MissClass::Compulsory;
        ++stats_.compulsory;
      } else if (!in_shadow(block)) {
        out.miss_class = MissClass::Capacity;
        ++stats_.capacity;
      } else {
        out.miss_class = MissClass::Conflict;
        ++stats_.conflict;
      }
      if (set.size() >= config_.effective_assoc()) {
        // All ways valid: evict the front (least recent / first filled).
        out.evicted = true;
        out.evicted_block = set.front().block;
        out.writeback = set.front().dirty;
        ++stats_.evictions;
        if (set.front().dirty) ++stats_.writebacks;
        set.erase(set.begin());
      }
      set.push_back(Entry{block, is_write});
    }
    if (is_write) {
      ++(out.hit ? stats_.write_hits : stats_.write_misses);
    } else {
      ++(out.hit ? stats_.read_hits : stats_.read_misses);
    }
    ever_seen_.insert(block);
    touch_shadow(block);
    return out;
  }

  [[nodiscard]] const LevelStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t block;
    bool dirty;
  };

  [[nodiscard]] bool in_shadow(std::uint64_t block) const {
    for (std::uint64_t b : shadow_) {
      if (b == block) return true;
    }
    return false;
  }

  /// Fully associative LRU of num_blocks capacity, most recent in front.
  void touch_shadow(std::uint64_t block) {
    for (auto it = shadow_.begin(); it != shadow_.end(); ++it) {
      if (*it == block) {
        shadow_.erase(it);
        shadow_.push_front(block);
        return;
      }
    }
    if (shadow_.size() >= config_.num_blocks()) shadow_.pop_back();
    shadow_.push_front(block);
  }

  CacheConfig config_;
  std::vector<std::vector<Entry>> sets_;
  std::deque<std::uint64_t> shadow_;
  std::set<std::uint64_t> ever_seen_;
  LevelStats stats_;
};

/// 10k accesses over a footprint a few times the cache size, so hits,
/// all three miss classes, evictions, and writebacks all occur.
struct Access {
  std::uint64_t address;
  bool is_write;
};

std::vector<Access> fixed_seed_accesses() {
  std::mt19937_64 rng(0xB10CACE5u);
  std::vector<Access> accesses;
  accesses.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Mix a hot region (re-references -> hits and conflicts) with a wide
    // region (streaming -> compulsory and capacity misses).
    const bool hot = rng() % 4 != 0;
    const std::uint64_t span = hot ? 8 * 1024 : 64 * 1024;
    accesses.push_back({rng() % span, rng() % 3 == 0});
  }
  return accesses;
}

class ReferenceModelTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                ReplacementPolicy>> {};

TEST_P(ReferenceModelTest, MatchesCacheLevelAndHierarchyL1) {
  const auto [assoc, policy] = GetParam();
  CacheConfig config;
  config.size = 4096;
  config.block_size = 32;
  config.assoc = assoc;
  config.replacement = policy;

  ReferenceCache reference(config);
  CacheLevel level(config);
  CacheHierarchy hierarchy(config);

  const std::vector<Access> accesses = fixed_seed_accesses();
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const auto [address, is_write] = accesses[i];
    const RefOutcome expected = reference.access(address, is_write);
    const AccessOutcome got = level.access(address, is_write);
    const AccessOutcome via_l1 = hierarchy.l1().access(address, is_write);

    ASSERT_EQ(expected.hit, got.hit) << "access " << i;
    ASSERT_EQ(expected.miss_class, got.miss_class) << "access " << i;
    ASSERT_EQ(expected.set, got.set) << "access " << i;
    ASSERT_EQ(expected.evicted, got.evicted) << "access " << i;
    if (expected.evicted) {
      ASSERT_EQ(expected.evicted_block, got.evicted_block) << "access " << i;
    }
    ASSERT_EQ(expected.writeback, got.writeback) << "access " << i;
    // The hierarchy's L1 must behave identically to a bare level.
    ASSERT_EQ(got.hit, via_l1.hit) << "access " << i;
    ASSERT_EQ(got.miss_class, via_l1.miss_class) << "access " << i;
  }

  EXPECT_EQ(reference.stats(), level.stats());
  EXPECT_EQ(reference.stats(), hierarchy.l1().stats());
  // Sanity: the stream exercised every interesting event at least once.
  EXPECT_GT(level.stats().hits(), 0u);
  EXPECT_GT(level.stats().compulsory, 0u);
  EXPECT_GT(level.stats().capacity, 0u);
  EXPECT_GT(level.stats().evictions, 0u);
  EXPECT_GT(level.stats().writebacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReferenceModelTest,
    ::testing::Values(std::pair{1u, ReplacementPolicy::Lru},
                      std::pair{2u, ReplacementPolicy::Lru},
                      std::pair{8u, ReplacementPolicy::Lru},
                      std::pair{1u, ReplacementPolicy::Fifo},
                      std::pair{2u, ReplacementPolicy::Fifo},
                      std::pair{8u, ReplacementPolicy::Fifo}),
    [](const auto& info) {
      return "assoc" + std::to_string(info.param.first) +
             (info.param.second == ReplacementPolicy::Lru ? "Lru" : "Fifo");
    });

}  // namespace
}  // namespace tdt::cache
