#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hpp"

namespace tdt::cache {
namespace {

CacheConfig one_set(std::uint32_t ways, ReplacementPolicy policy) {
  CacheConfig c;
  c.size = 32ull * ways;  // exactly one set
  c.block_size = 32;
  c.assoc = ways;
  c.replacement = policy;
  return c;
}

std::uint64_t addr_of(int block) {
  return static_cast<std::uint64_t>(block) * 32;
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  CacheLevel cache(one_set(2, ReplacementPolicy::Lru));
  (void)cache.access(addr_of(0), false);
  (void)cache.access(addr_of(1), false);
  (void)cache.access(addr_of(0), false);  // 0 now MRU
  (void)cache.access(addr_of(2), false);  // evicts 1
  EXPECT_TRUE(cache.contains_block(0));
  EXPECT_FALSE(cache.contains_block(1));
  EXPECT_TRUE(cache.contains_block(2));
}

TEST(Lru, StackProperty) {
  // LRU inclusion: a hit in a k-way LRU set is also a hit in any larger
  // LRU set fed the same single-set stream.
  const int trace[] = {0, 1, 2, 0, 3, 1, 0, 2, 4, 0, 1, 2, 3, 4, 0};
  CacheLevel small(one_set(2, ReplacementPolicy::Lru));
  CacheLevel big(one_set(4, ReplacementPolicy::Lru));
  for (int b : trace) {
    const bool small_hit = small.access(addr_of(b), false).hit;
    const bool big_hit = big.access(addr_of(b), false).hit;
    if (small_hit) {
      EXPECT_TRUE(big_hit);
    }
  }
}

TEST(Fifo, EvictsOldestFillRegardlessOfUse) {
  CacheLevel cache(one_set(2, ReplacementPolicy::Fifo));
  (void)cache.access(addr_of(0), false);
  (void)cache.access(addr_of(1), false);
  (void)cache.access(addr_of(0), false);  // touch does not refresh FIFO age
  (void)cache.access(addr_of(2), false);  // evicts 0 (oldest fill)
  EXPECT_FALSE(cache.contains_block(0));
  EXPECT_TRUE(cache.contains_block(1));
  EXPECT_TRUE(cache.contains_block(2));
}

TEST(RoundRobin, CyclesThroughWays) {
  CacheLevel cache(one_set(4, ReplacementPolicy::RoundRobin));
  for (int b = 0; b < 4; ++b) (void)cache.access(addr_of(b), false);
  // Set full. Next 4 misses evict ways 0,1,2,3 in order: blocks 0,1,2,3.
  for (int b = 4; b < 8; ++b) {
    const AccessOutcome o = cache.access(addr_of(b), false);
    EXPECT_TRUE(o.evicted);
    EXPECT_EQ(o.evicted_block, static_cast<std::uint64_t>(b - 4));
  }
}

TEST(RoundRobin, CursorIgnoresHits) {
  CacheLevel cache(one_set(2, ReplacementPolicy::RoundRobin));
  (void)cache.access(addr_of(0), false);
  (void)cache.access(addr_of(1), false);
  for (int i = 0; i < 10; ++i) (void)cache.access(addr_of(1), false);
  const AccessOutcome o = cache.access(addr_of(2), false);
  EXPECT_EQ(o.evicted_block, 0u);  // cursor still at way 0
}

TEST(Random, IsDeterministicForSeed) {
  CacheConfig a_cfg = one_set(4, ReplacementPolicy::Random);
  a_cfg.random_seed = 11;
  CacheConfig b_cfg = a_cfg;
  CacheLevel a(a_cfg), b(b_cfg);
  for (int i = 0; i < 200; ++i) {
    const int blk = (i * 7) % 13;
    EXPECT_EQ(a.access(addr_of(blk), false).hit,
              b.access(addr_of(blk), false).hit);
  }
}

TEST(Random, EventuallyEvictsEveryWay) {
  CacheLevel cache(one_set(4, ReplacementPolicy::Random));
  for (int b = 0; b < 4; ++b) (void)cache.access(addr_of(b), false);
  std::set<std::uint64_t> evicted;
  for (int i = 0; i < 200; ++i) {
    const AccessOutcome o = cache.access(addr_of(4 + i), false);
    if (o.evicted) evicted.insert(o.evicted_block % 4 < 4 ? o.set : 0);
  }
  // With 200 random evictions in one set the cursor hit all ways; we just
  // confirm evictions happened continuously.
  EXPECT_EQ(cache.stats().evictions, 200u);
}

TEST(Policies, InvalidWaysFilledBeforeEviction) {
  for (ReplacementPolicy p :
       {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
        ReplacementPolicy::Random, ReplacementPolicy::RoundRobin}) {
    CacheLevel cache(one_set(4, p));
    for (int b = 0; b < 4; ++b) {
      EXPECT_FALSE(cache.access(addr_of(b), false).evicted)
          << to_string(p);
    }
    EXPECT_EQ(cache.stats().evictions, 0u) << to_string(p);
  }
}

TEST(Policies, SequentialSweepBehavesIdentically) {
  // A pure cold sweep has no replacement decisions that differ: all
  // policies produce the same miss count.
  std::uint64_t misses[4];
  int i = 0;
  for (ReplacementPolicy p :
       {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
        ReplacementPolicy::Random, ReplacementPolicy::RoundRobin}) {
    CacheLevel cache(one_set(8, p));
    for (int b = 0; b < 64; ++b) (void)cache.access(addr_of(b), false);
    misses[i++] = cache.stats().misses();
  }
  EXPECT_EQ(misses[0], 64u);
  EXPECT_EQ(misses[1], misses[0]);
  EXPECT_EQ(misses[2], misses[0]);
  EXPECT_EQ(misses[3], misses[0]);
}

TEST(Policies, CyclicPatternIsLruWorstCase) {
  // Classic anomaly: cycling over assoc+1 blocks thrashes LRU completely
  // (the block about to be reused is always the one just evicted).
  CacheLevel lru(one_set(4, ReplacementPolicy::Lru));
  std::uint64_t lru_hits = 0;
  for (int i = 0; i < 50; ++i) {
    if (lru.access(addr_of(i % 5), false).hit) ++lru_hits;
  }
  EXPECT_EQ(lru_hits, 0u);  // 5 blocks cycling through 4 ways: thrash
}

}  // namespace
}  // namespace tdt::cache
