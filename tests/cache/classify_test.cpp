// Miss classification: compulsory (first ever touch), capacity (fully
// associative same-capacity cache would also miss), conflict (only the
// set mapping caused it).
#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace tdt::cache {
namespace {

CacheConfig dm(std::uint64_t size) {
  CacheConfig c;
  c.size = size;
  c.block_size = 32;
  c.assoc = 1;
  return c;
}

TEST(Classify, ColdMissesAreCompulsory) {
  CacheLevel cache(dm(256));
  for (int i = 0; i < 8; ++i) {
    const AccessOutcome o =
        cache.access(static_cast<std::uint64_t>(i) * 32, false);
    EXPECT_EQ(o.miss_class, MissClass::Compulsory);
  }
  EXPECT_EQ(cache.stats().compulsory, 8u);
}

TEST(Classify, ConflictWhenFullyAssociativeWouldHit) {
  CacheLevel cache(dm(256));  // 8 sets
  (void)cache.access(0x0, false);
  (void)cache.access(0x100, false);  // same set, cache only 1/8 full
  const AccessOutcome o = cache.access(0x0, false);
  EXPECT_EQ(o.miss_class, MissClass::Conflict);
  EXPECT_EQ(cache.stats().conflict, 1u);
  EXPECT_EQ(cache.stats().capacity, 0u);
}

TEST(Classify, CapacityWhenWorkingSetExceedsCache) {
  CacheLevel cache(dm(256));  // 8 blocks
  // Cycle over 16 blocks repeatedly: after warmup, misses are capacity
  // (a fully associative LRU cache of 8 also thrashes on a 16-block loop).
  for (int round = 0; round < 4; ++round) {
    for (int b = 0; b < 16; ++b) {
      (void)cache.access(static_cast<std::uint64_t>(b) * 32, false);
    }
  }
  EXPECT_EQ(cache.stats().compulsory, 16u);
  EXPECT_GT(cache.stats().capacity, 0u);
  EXPECT_EQ(cache.stats().conflict, 0u);  // every miss also misses shadow
}

TEST(Classify, FullyAssociativeNeverConflicts) {
  CacheConfig c = dm(256);
  c.assoc = 0;
  CacheLevel cache(c);
  Xoshiro256 rng(9);
  for (int i = 0; i < 5000; ++i) {
    (void)cache.access(rng.next_below(100) * 32, false);
  }
  EXPECT_EQ(cache.stats().conflict, 0u);
}

TEST(Classify, SumOfClassesEqualsMisses) {
  CacheLevel cache(dm(512));
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) {
    (void)cache.access(rng.next_below(200) * 32, rng.next_below(2) == 0);
  }
  const LevelStats& s = cache.stats();
  EXPECT_EQ(s.compulsory + s.capacity + s.conflict, s.misses());
}

TEST(Classify, PaperT1StoryDirectMappedConflicts) {
  // The SoA kernel's mX and mY regions are 4 KiB apart within a 32 KiB
  // direct-mapped cache: alternating accesses 8 KiB apart would conflict
  // only if they map to the same set. Construct the conflicting variant
  // explicitly: stride == cache size.
  CacheLevel cache(dm(32768));
  for (int i = 0; i < 100; ++i) {
    (void)cache.access(0x0, false);
    (void)cache.access(32768, false);  // same set, conflicting tag
  }
  const LevelStats& s = cache.stats();
  EXPECT_EQ(s.misses(), 200u);
  EXPECT_EQ(s.conflict, 198u);  // all but the two compulsory
}

TEST(Classify, MissClassNames) {
  EXPECT_EQ(to_string(MissClass::None), "hit");
  EXPECT_EQ(to_string(MissClass::Compulsory), "compulsory");
  EXPECT_EQ(to_string(MissClass::Capacity), "capacity");
  EXPECT_EQ(to_string(MissClass::Conflict), "conflict");
}

}  // namespace
}  // namespace tdt::cache
