# CLI fault-injection matrix (docs/robustness.md): deterministic faults
# across {reader, writer, queue, worker} x {strict, skip, repair} must
# produce stable diagnostics and exit codes for a fixed seed, and the
# disarmed binary must stay byte-identical to an un-instrumented run.
file(MAKE_DIRECTORY ${WORKDIR})

function(check_rc what expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${what}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

function(check_same what file_a file_b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${file_a} ${file_b}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: stdout differs (${file_a} vs ${file_b})")
  endif()
endfunction()

# -- Fixtures -----------------------------------------------------------------
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 512 --out ${WORKDIR}/good.out
  RESULT_VARIABLE rc)
check_rc("gtracer" 0 "${rc}")
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 512 --binary
          --out ${WORKDIR}/good.tdtb
  RESULT_VARIABLE rc)
check_rc("gtracer --binary" 0 "${rc}")

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
  OUTPUT_FILE ${WORKDIR}/baseline.stdout RESULT_VARIABLE rc)
check_rc("dinerosim baseline" 0 "${rc}")

# -- Control: an armed-but-silent spec changes nothing. -----------------------
# probability 0 exercises every injection hook (enabled() is true at each
# site) without firing once: stdout and exit code must match the baseline.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
          --fault-spec "queue.push-delay:0;reader.read:0;writer.flush:0"
  OUTPUT_FILE ${WORKDIR}/control.stdout RESULT_VARIABLE rc)
check_rc("dinerosim silent fault spec" 0 "${rc}")
check_same("silent fault spec" ${WORKDIR}/baseline.stdout
           ${WORKDIR}/control.stdout)

# A malformed spec is a usage error.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out
          --fault-spec "no.such-site:1"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("bad fault spec" 2 "${rc}")
if(NOT err MATCHES "unknown site")
  message(FATAL_ERROR "bad fault spec missing diagnostic: ${err}")
endif()

# -- Reader row: the istream dies after the first refill. ---------------------
# The 512-record trace fits one 256 KiB read block, so every line is
# salvaged before the second refill fails: skip/repair still produce the
# full baseline report plus a trace-io-error diagnostic.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
          --on-error=strict --fault-spec "seed=7;reader.read:1:1"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("reader fault strict" 2 "${rc}")
if(NOT err MATCHES "trace read failed")
  message(FATAL_ERROR "reader fault strict missing diagnostic: ${err}")
endif()

foreach(policy skip repair)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
            --on-error=${policy} --fault-spec "seed=7;reader.read:1:1"
    OUTPUT_FILE ${WORKDIR}/reader_${policy}.stdout
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  check_rc("reader fault ${policy}" 1 "${rc}")
  if(NOT err MATCHES "trace-io-error")
    message(FATAL_ERROR "reader fault ${policy} missing T004: ${err}")
  endif()
  check_same("reader fault ${policy} salvages everything"
             ${WORKDIR}/baseline.stdout ${WORKDIR}/reader_${policy}.stdout)
endforeach()

# Fixed seed -> identical run: same stdout, same exit code, same diag.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
          --on-error=skip --fault-spec "seed=7;reader.read:1:1"
  OUTPUT_FILE ${WORKDIR}/reader_rerun.stdout
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("reader fault rerun" 1 "${rc}")
if(NOT err MATCHES "trace-io-error")
  message(FATAL_ERROR "reader fault rerun missing T004: ${err}")
endif()
check_same("reader fault determinism" ${WORKDIR}/reader_skip.stdout
           ${WORKDIR}/reader_rerun.stdout)

# -- Reader row x ingest backends. --------------------------------------------
# The ReaderRead site must fire identically whichever ByteSource feeds the
# parser: mmap slices and overlapped prefetch reads pass the same
# injection point as synchronous stream refills, so the salvage+T004
# contract is backend-independent.
foreach(ingest mmap overlapped)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
            --ingest ${ingest}
            --on-error=strict --fault-spec "seed=7;reader.read:1:1"
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  check_rc("reader fault strict (${ingest})" 2 "${rc}")
  if(NOT err MATCHES "trace read failed")
    message(FATAL_ERROR "reader fault strict (${ingest}) missing diagnostic: ${err}")
  endif()

  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
            --ingest ${ingest}
            --on-error=skip --fault-spec "seed=7;reader.read:1:1"
    OUTPUT_FILE ${WORKDIR}/reader_${ingest}.stdout
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  check_rc("reader fault skip (${ingest})" 1 "${rc}")
  if(NOT err MATCHES "trace-io-error")
    message(FATAL_ERROR "reader fault skip (${ingest}) missing T004: ${err}")
  endif()
  check_same("reader fault (${ingest}) salvages everything"
             ${WORKDIR}/baseline.stdout ${WORKDIR}/reader_${ingest}.stdout)
endforeach()

# Stdin ingest ("-" reads through the overlapped source) keeps the same
# report and exit code as the file-backed baseline.
execute_process(
  COMMAND ${DINEROSIM} --trace - --size 4096
  INPUT_FILE ${WORKDIR}/good.out
  OUTPUT_FILE ${WORKDIR}/stdin.stdout RESULT_VARIABLE rc)
check_rc("stdin ingest clean" 0 "${rc}")
check_same("stdin ingest bit-identity" ${WORKDIR}/baseline.stdout
           ${WORKDIR}/stdin.stdout)

# -- Writer row: the transformed-trace flush fails (ENOSPC). ------------------
# A write failure is fatal under every policy: skipping output corruption
# is never an option.
foreach(policy strict skip repair)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
            --rules ${RULES} --xform-out ${WORKDIR}/xform_${policy}.out
            --on-error=${policy} --fault-spec "writer.flush:1"
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  check_rc("writer fault ${policy}" 2 "${rc}")
  if(NOT err MATCHES "trace write failed")
    message(FATAL_ERROR "writer fault ${policy} missing diagnostic: ${err}")
  endif()
endforeach()

# -- Queue row: push/pop jitter must never change results. --------------------
foreach(policy strict skip repair)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096 --jobs 2
            --on-error=${policy}
            --fault-spec "seed=3;queue.push-delay:0.5;queue.pop-delay:0.5"
    OUTPUT_FILE ${WORKDIR}/queue_${policy}.stdout RESULT_VARIABLE rc)
  check_rc("queue jitter ${policy}" 0 "${rc}")
  check_same("queue jitter ${policy}" ${WORKDIR}/baseline.stdout
             ${WORKDIR}/queue_${policy}.stdout)
endforeach()

# -- Worker row: throw / stall / exit under supervision. ----------------------
# A four-point sweep gives the fan-out four sinks, so --jobs 4 really
# spawns four workers. The sequential reference is the same sweep at
# --jobs 1 (inline mode).
set(SWEEP "assoc=1;assoc=2;assoc=4;assoc=8")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
          --sweep "${SWEEP}"
  OUTPUT_FILE ${WORKDIR}/sweep_baseline.stdout RESULT_VARIABLE rc)
check_rc("sweep baseline" 0 "${rc}")

# Recovery re-simulates the failed worker's batches sequentially: exit 1
# (recovered), report bit-identical to the sequential baseline. The
# --on-error policy governs input errors and is orthogonal.
foreach(policy strict skip repair)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
            --sweep "${SWEEP}" --jobs 4
            --worker-timeout 5 --on-error=${policy}
            --fault-spec "seed=5;worker.throw:1:1"
    OUTPUT_FILE ${WORKDIR}/worker_${policy}.stdout
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  check_rc("worker throw ${policy}" 1 "${rc}")
  # A thrown worker surfaces as P002 (caught at join) or P001 (flagged by
  # the watchdog when the reader blocked on its queue) depending on
  # timing; either way the recovery diagnostic must be present.
  if(NOT err MATCHES "pipe-worker")
    message(FATAL_ERROR "worker throw ${policy} missing P001/P002: ${err}")
  endif()
  check_same("worker throw ${policy} bit-identity"
             ${WORKDIR}/sweep_baseline.stdout
             ${WORKDIR}/worker_${policy}.stdout)
endforeach()

# The acceptance case: a deliberately stalled worker under --jobs 4 is
# detected within --worker-timeout, the run exits 1, and the recovered
# totals equal the sequential baseline bit-for-bit.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
          --sweep "${SWEEP}" --jobs 4
          --worker-timeout 1 --fault-spec "seed=11;worker.stall:1:2"
  OUTPUT_FILE ${WORKDIR}/worker_stall.stdout
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("worker stall recovery" 1 "${rc}")
if(NOT err MATCHES "pipe-worker-stalled")
  message(FATAL_ERROR "worker stall missing P001: ${err}")
endif()
check_same("worker stall bit-identity" ${WORKDIR}/sweep_baseline.stdout
           ${WORKDIR}/worker_stall.stdout)

# Premature worker exit is recovered the same way.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096
          --sweep "${SWEEP}" --jobs 2
          --worker-timeout 5 --fault-spec "seed=13;worker.exit:1:1"
  OUTPUT_FILE ${WORKDIR}/worker_exit.stdout RESULT_VARIABLE rc)
check_rc("worker exit recovery" 1 "${rc}")
check_same("worker exit bit-identity" ${WORKDIR}/sweep_baseline.stdout
           ${WORKDIR}/worker_exit.stdout)

# Without supervision the same worker fault is fatal (the original
# contract: exit 2, error on stderr).
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096 --jobs 2
          --fault-spec "seed=5;worker.throw:1:1"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("worker throw unsupervised" 2 "${rc}")
if(NOT err MATCHES "worker thread failure")
  message(FATAL_ERROR "unsupervised worker fault missing diagnostic: ${err}")
endif()

# -- TDT_FAULT_SPEC environment wiring (flag-free arming). --------------------
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "TDT_FAULT_SPEC=seed=5;worker.throw:1:1"
          ${DINEROSIM} --trace ${WORKDIR}/good.out --size 4096 --jobs 2
          --worker-timeout 5
  OUTPUT_FILE ${WORKDIR}/env_worker.stdout RESULT_VARIABLE rc)
check_rc("TDT_FAULT_SPEC worker throw" 1 "${rc}")
check_same("TDT_FAULT_SPEC bit-identity" ${WORKDIR}/baseline.stdout
           ${WORKDIR}/env_worker.stdout)

# -- Binary-trace corruption sites (TDTB v2 integrity). -----------------------
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.tdtb --size 4096
          --fault-spec "binary.crc-flip:1:0"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("crc flip strict" 2 "${rc}")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.tdtb --size 4096
          --on-error=skip --fault-spec "binary.crc-flip:1:0"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("crc flip skip" 1 "${rc}")
if(NOT err MATCHES "bin-crc-mismatch")
  message(FATAL_ERROR "crc flip skip missing B010: ${err}")
endif()

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.tdtb --size 4096
          --fault-spec "binary.bad-footer:1"
  RESULT_VARIABLE rc)
check_rc("bad footer strict" 2 "${rc}")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good.tdtb --size 4096
          --on-error=repair --fault-spec "binary.bad-footer:1"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("bad footer repair" 1 "${rc}")
if(NOT err MATCHES "bin-bad-footer")
  message(FATAL_ERROR "bad footer repair missing B009: ${err}")
endif()

# -- Frame-decode site (TDTB v3 shard isolation). -----------------------------
# The framed container degrades per frame: an injected frame-decode
# failure is fatal under strict, drops exactly the hit frames under
# repair, and the pre-sampled schedule makes --jobs 4 report the same
# diagnostics and records as the sequential decode.
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 512 --binary --compress none
          --out ${WORKDIR}/good_v3.tdtb
  RESULT_VARIABLE rc)
check_rc("gtracer v3 fixture" 0 "${rc}")
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good_v3.tdtb --size 4096
  OUTPUT_FILE ${WORKDIR}/v3_baseline.stdout RESULT_VARIABLE rc)
check_rc("v3 baseline" 0 "${rc}")
check_same("v3 container matches text baseline" ${WORKDIR}/baseline.stdout
           ${WORKDIR}/v3_baseline.stdout)

# Armed-but-silent: the FrameDecode hook costs nothing when it never fires.
execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good_v3.tdtb --size 4096
          --fault-spec "binary.frame-decode:0"
  OUTPUT_FILE ${WORKDIR}/frame_silent.stdout RESULT_VARIABLE rc)
check_rc("frame-decode silent" 0 "${rc}")
check_same("frame-decode silent spec" ${WORKDIR}/v3_baseline.stdout
           ${WORKDIR}/frame_silent.stdout)

execute_process(
  COMMAND ${DINEROSIM} --trace ${WORKDIR}/good_v3.tdtb --size 4096
          --fault-spec "seed=9;binary.frame-decode:1"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("frame-decode strict" 2 "${rc}")
if(NOT err MATCHES "frame")
  message(FATAL_ERROR "frame-decode strict missing diagnostic: ${err}")
endif()

foreach(jobs 1 4)
  execute_process(
    COMMAND ${DINEROSIM} --trace ${WORKDIR}/good_v3.tdtb --size 4096
            --jobs ${jobs} --on-error=repair
            --fault-spec "seed=9;binary.frame-decode:1"
    OUTPUT_FILE ${WORKDIR}/frame_repair_j${jobs}.stdout
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  check_rc("frame-decode repair jobs=${jobs}" 1 "${rc}")
  if(NOT err MATCHES "bin-frame-corrupt")
    message(FATAL_ERROR "frame-decode repair jobs=${jobs} missing B014: ${err}")
  endif()
endforeach()
check_same("frame-decode repair schedule parity (jobs 1 vs 4)"
           ${WORKDIR}/frame_repair_j1.stdout
           ${WORKDIR}/frame_repair_j4.stdout)

# -- Resource governance rides the same contract. -----------------------------
# tracediff must hold both traces: an absurdly small budget is a hard
# failure (exit 2, resource diagnostic), never a truncated diff.
execute_process(
  COMMAND ${TRACEDIFF} ${WORKDIR}/good.out ${WORKDIR}/good.out --summary
          --max-memory 4k
  RESULT_VARIABLE rc ERROR_VARIABLE err)
check_rc("tracediff --max-memory exhaustion" 2 "${rc}")
if(NOT err MATCHES "memory budget exhausted")
  message(FATAL_ERROR "tracediff budget failure missing diagnostic: ${err}")
endif()
execute_process(
  COMMAND ${TRACEDIFF} ${WORKDIR}/good.out ${WORKDIR}/good.out --summary
          --max-memory 64m
  RESULT_VARIABLE rc)
check_rc("tracediff --max-memory ample" 0 "${rc}")

# An already-expired deadline still produces a partial report and exit 1.
# Expiry is checked at 4096-record batch boundaries, so the trace must be
# longer than one batch for the check to run at all.
execute_process(
  COMMAND ${GTRACER} --kernel t1_soa --len 4096 --out ${WORKDIR}/big.out
  RESULT_VARIABLE rc)
check_rc("gtracer big" 0 "${rc}")
execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/big.out --deadline 0.000001
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
check_rc("traceinfo --deadline expired" 1 "${rc}")
if(NOT err MATCHES "deadline expired")
  message(FATAL_ERROR "traceinfo deadline missing diagnostic: ${err}")
endif()
execute_process(
  COMMAND ${TRACEINFO} ${WORKDIR}/big.out --deadline 3600
  RESULT_VARIABLE rc)
check_rc("traceinfo --deadline ample" 0 "${rc}")
