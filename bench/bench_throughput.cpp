// Microbenchmarks (google-benchmark): throughput of every pipeline stage —
// tracing, text/binary parse and write, cache simulation, transformation,
// and layout queries. Rates are reported as records (or lines) per second
// via the Items counter.
#include <benchmark/benchmark.h>

#include <sstream>

#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "layout/path.hpp"
#include "trace/binary.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

namespace {

using namespace tdt;

constexpr std::int64_t kLen = 1024;

struct SharedTrace {
  layout::TypeTable types;
  trace::TraceContext ctx;
  std::vector<trace::TraceRecord> records;
  std::string text;
  std::vector<char> blob;

  SharedTrace() {
    records = tracer::run_program(types, ctx, tracer::make_t1_soa(types, kLen));
    text = trace::write_trace_string(ctx, records);
    blob = trace::write_binary_trace(ctx, records);
  }
};

SharedTrace& shared() {
  static SharedTrace instance;
  return instance;
}

void BM_TracerEmit(benchmark::State& state) {
  for (auto _ : state) {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto records =
        tracer::run_program(types, ctx, tracer::make_t1_soa(types, kLen));
    benchmark::DoNotOptimize(records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_TracerEmit);

void BM_TextParse(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    trace::TraceContext ctx;
    const auto records = trace::read_trace_string(ctx, s.text);
    benchmark::DoNotOptimize(records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_TextParse);

void BM_TextWrite(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    const std::string text = trace::write_trace_string(s.ctx, s.records);
    benchmark::DoNotOptimize(text.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_TextWrite);

void BM_BinaryParse(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    trace::TraceContext ctx;
    const auto records = trace::read_binary_trace(ctx, s.blob);
    benchmark::DoNotOptimize(records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_BinaryParse);

void BM_BinaryWrite(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    const auto blob = trace::write_binary_trace(s.ctx, s.records);
    benchmark::DoNotOptimize(blob.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_BinaryWrite);

void BM_CacheSim(benchmark::State& state) {
  SharedTrace& s = shared();
  cache::CacheConfig cfg = cache::paper_direct_mapped();
  cfg.assoc = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    cache::CacheHierarchy hierarchy(cfg);
    cache::TraceCacheSim sim(hierarchy);
    sim.simulate(s.records);
    benchmark::DoNotOptimize(hierarchy.l1().stats().misses());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_CacheSim)->Arg(1)->Arg(8)->Arg(64);

void BM_Transform(benchmark::State& state) {
  SharedTrace& s = shared();
  const core::RuleSet rules = core::parse_rules(
      "in:\nstruct lSoA { int mX[" + std::to_string(kLen) +
      "]; double mY[" + std::to_string(kLen) +
      "]; };\nout:\nstruct lAoS { int mX; double mY; }[" +
      std::to_string(kLen) + "];\n");
  for (auto _ : state) {
    const auto out = core::transform_trace(rules, s.ctx, s.records);
    benchmark::DoNotOptimize(out.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_Transform);

void BM_LayoutResolve(benchmark::State& state) {
  layout::TypeTable types;
  const auto inner = types.define_struct(
      "Inner", {{"y", types.double_type()},
                {"z", types.array_of(types.int_type(), 4)}});
  const auto outer = types.array_of(
      types.define_struct("Outer",
                          {{"hot", types.int_type()}, {"cold", inner}}),
      64);
  layout::Path path;
  path.push_back(layout::PathStep::make_index(17));
  path.push_back(layout::PathStep::make_field("cold"));
  path.push_back(layout::PathStep::make_field("z"));
  path.push_back(layout::PathStep::make_index(3));
  for (auto _ : state) {
    const auto r = layout::resolve_path(types, outer, {path.data(), path.size()});
    benchmark::DoNotOptimize(r.offset);
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_LayoutResolve);

void BM_RuleParse(benchmark::State& state) {
  const std::string text =
      "in:\nstruct lSoA { int mX[16]; double mY[16]; };\n"
      "out:\nstruct lAoS { int mX; double mY; }[16];\n";
  for (auto _ : state) {
    const core::RuleSet rules = core::parse_rules(text);
    benchmark::DoNotOptimize(rules.rules().size());
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_RuleParse);

}  // namespace

BENCHMARK_MAIN();
