// Microbenchmarks (google-benchmark): throughput of every pipeline stage —
// tracing, text/binary parse and write, cache simulation, transformation,
// and layout queries. Rates are reported as records (or lines) per second
// via the Items counter.
//
// With --jobs N the binary switches to the parallel-pipeline harness
// instead: a synthetic multi-million-record trace is swept over 8 cache
// configurations once sequentially and once through the N-worker one-pass
// pipeline, the two reports are compared byte for byte, and the aggregate
// simulation throughput plus speedup are printed.
//
//   bench_throughput --jobs 4 [--records 10000000] [--batch 4096]
//                    [--queue-depth 8]
//
// With --perf-report FILE the binary instead times the PR 3 fast paths
// against their reference implementations on a T1 trace — zero-copy ASCII
// read vs the diagnostic-rich slow parse, plan-cached transform vs the
// uncached slow path, plus raw simulation throughput — verifies that fast
// and reference outputs are byte-identical, and writes the rates and
// speedups to FILE as JSON:
//
//   bench_throughput --perf-report BENCH_PR3.json [--len 16384] [--repeat 5]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "cache/sweep.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "layout/path.hpp"
#include "trace/binary.hpp"
#include "trace/parallel.hpp"
#include "trace/reader.hpp"
#include "trace/sink.hpp"
#include "trace/stream.hpp"
#include "trace/writer.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "trace/source.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/obs.hpp"
#include "util/simd_scan.hpp"

namespace {

using namespace tdt;

constexpr std::int64_t kLen = 1024;

struct SharedTrace {
  layout::TypeTable types;
  trace::TraceContext ctx;
  std::vector<trace::TraceRecord> records;
  std::string text;
  std::vector<char> blob;

  SharedTrace() {
    records = tracer::run_program(types, ctx, tracer::make_t1_soa(types, kLen));
    text = trace::write_trace_string(ctx, records);
    blob = trace::write_binary_trace(ctx, records);
  }
};

SharedTrace& shared() {
  static SharedTrace instance;
  return instance;
}

void BM_TracerEmit(benchmark::State& state) {
  for (auto _ : state) {
    layout::TypeTable types;
    trace::TraceContext ctx;
    const auto records =
        tracer::run_program(types, ctx, tracer::make_t1_soa(types, kLen));
    benchmark::DoNotOptimize(records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_TracerEmit);

void BM_TextParse(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    trace::TraceContext ctx;
    const auto records = trace::read_trace_string(ctx, s.text);
    benchmark::DoNotOptimize(records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_TextParse);

void BM_TextWrite(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    const std::string text = trace::write_trace_string(s.ctx, s.records);
    benchmark::DoNotOptimize(text.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_TextWrite);

void BM_BinaryParse(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    trace::TraceContext ctx;
    const auto records = trace::read_binary_trace(ctx, s.blob);
    benchmark::DoNotOptimize(records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_BinaryParse);

void BM_BinaryWrite(benchmark::State& state) {
  SharedTrace& s = shared();
  for (auto _ : state) {
    const auto blob = trace::write_binary_trace(s.ctx, s.records);
    benchmark::DoNotOptimize(blob.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_BinaryWrite);

void BM_CacheSim(benchmark::State& state) {
  SharedTrace& s = shared();
  cache::CacheConfig cfg = cache::paper_direct_mapped();
  cfg.assoc = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    cache::CacheHierarchy hierarchy(cfg);
    cache::TraceCacheSim sim(hierarchy);
    sim.simulate(s.records);
    benchmark::DoNotOptimize(hierarchy.l1().stats().misses());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_CacheSim)->Arg(1)->Arg(8)->Arg(64);

void BM_Transform(benchmark::State& state) {
  SharedTrace& s = shared();
  const core::RuleSet rules = core::parse_rules(
      "in:\nstruct lSoA { int mX[" + std::to_string(kLen) +
      "]; double mY[" + std::to_string(kLen) +
      "]; };\nout:\nstruct lAoS { int mX; double mY; }[" +
      std::to_string(kLen) + "];\n");
  for (auto _ : state) {
    const auto out = core::transform_trace(rules, s.ctx, s.records);
    benchmark::DoNotOptimize(out.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(s.records.size()));
  }
}
BENCHMARK(BM_Transform);

void BM_LayoutResolve(benchmark::State& state) {
  layout::TypeTable types;
  const auto inner = types.define_struct(
      "Inner", {{"y", types.double_type()},
                {"z", types.array_of(types.int_type(), 4)}});
  const auto outer = types.array_of(
      types.define_struct("Outer",
                          {{"hot", types.int_type()}, {"cold", inner}}),
      64);
  layout::Path path;
  path.push_back(layout::PathStep::make_index(17));
  path.push_back(layout::PathStep::make_field("cold"));
  path.push_back(layout::PathStep::make_field("z"));
  path.push_back(layout::PathStep::make_index(3));
  for (auto _ : state) {
    const auto r = layout::resolve_path(types, outer, {path.data(), path.size()});
    benchmark::DoNotOptimize(r.offset);
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_LayoutResolve);

void BM_RuleParse(benchmark::State& state) {
  const std::string text =
      "in:\nstruct lSoA { int mX[16]; double mY[16]; };\n"
      "out:\nstruct lAoS { int mX; double mY; }[16];\n";
  for (auto _ : state) {
    const core::RuleSet rules = core::parse_rules(text);
    benchmark::DoNotOptimize(rules.rules().size());
    state.SetItemsProcessed(state.items_processed() + 1);
  }
}
BENCHMARK(BM_RuleParse);

// --- parallel-pipeline harness (bench_throughput --jobs N) -----------------

/// Deterministic synthetic record: a pure function of its index, so the
/// trace never has to be materialized. Two thirds of the accesses walk an
/// 8 MiB region sequentially; one third jump pseudo-randomly inside
/// 64 MiB; ~30% are stores.
trace::TraceRecord synth_record(std::uint64_t i, Symbol fn) {
  std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  trace::TraceRecord rec;
  if (h % 3 != 0) {
    rec.address = 0x10000000ULL + (i * 8) % (8ULL << 20);
  } else {
    rec.address = 0x10000000ULL + (h >> 8) % (64ULL << 20);
  }
  rec.kind = h % 10 < 7 ? trace::AccessKind::Load : trace::AccessKind::Store;
  rec.size = 8;
  rec.function = fn;
  return rec;
}

std::vector<cache::SweepPoint> harness_grid() {
  std::vector<cache::SweepPoint> points;
  for (std::uint64_t size : {16384ull, 32768ull}) {
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
      cache::CacheConfig cfg;
      cfg.size = size;
      cfg.block_size = 64;
      cfg.assoc = assoc;
      points.push_back(cache::SweepPoint{{cfg}});
    }
  }
  return points;
}

struct HarnessResult {
  std::string report;
  trace::PipelineCounters counters;
  double seconds = 0;
};

HarnessResult run_pipeline(std::uint64_t records, std::size_t jobs,
                           std::size_t batch, std::size_t queue_depth) {
  trace::TraceContext ctx;
  const Symbol fn = ctx.intern("synth");
  cache::ParallelSweep sweep(harness_grid());
  trace::ParallelOptions options;
  options.jobs = jobs <= 1 ? 0 : jobs;
  options.batch_records = batch;
  options.queue_batches = queue_depth;
  const auto start = std::chrono::steady_clock::now();
  {
    trace::ParallelFanOut fanout(sweep.sinks(), options);
    std::vector<trace::TraceRecord> chunk;
    chunk.reserve(batch);
    for (std::uint64_t i = 0; i < records; ++i) {
      chunk.push_back(synth_record(i, fn));
      if (chunk.size() == batch) {
        fanout.push_batch(chunk);
        chunk.clear();
      }
    }
    if (!chunk.empty()) fanout.push_batch(chunk);
    fanout.on_end();
    HarnessResult result;
    result.report = sweep.report();
    result.counters = fanout.counters();
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
  }
}

int pipeline_harness(int argc, char** argv) {
  FlagParser flags("bench_throughput", "parallel one-pass pipeline harness");
  const auto* jobs = flags.add_uint("jobs", 4, "pipeline worker threads");
  const auto* records = flags.add_uint(
      "records", 10'000'000, "synthetic records to stream");
  const auto* batch = flags.add_uint("batch", 4096, "records per batch");
  const auto* queue_depth =
      flags.add_uint("queue-depth", 8, "per-worker queue capacity (batches)");
  if (!flags.parse(argc, argv)) return 0;

  const std::size_t points = harness_grid().size();
  std::printf("pipeline harness: %llu records x %zu configurations\n",
              static_cast<unsigned long long>(*records), points);

  const HarnessResult seq =
      run_pipeline(*records, 1, *batch, *queue_depth);
  const double seq_rate =
      static_cast<double>(*records * points) / seq.seconds;
  std::printf("sequential (inline): %.3f s, %.2f Mrec/s aggregate\n",
              seq.seconds, seq_rate / 1e6);

  const HarnessResult par =
      run_pipeline(*records, *jobs, *batch, *queue_depth);
  const double par_rate =
      static_cast<double>(*records * points) / par.seconds;
  std::printf("pipelined (--jobs %llu): %.3f s, %.2f Mrec/s aggregate "
              "(speedup %.2fx)\n",
              static_cast<unsigned long long>(*jobs), par.seconds,
              par_rate / 1e6, seq.seconds / par.seconds);
  std::fputs(par.counters.summary().c_str(), stdout);

  if (seq.report != par.report) {
    std::puts("ERROR: parallel sweep report differs from sequential run!");
    std::fputs(seq.report.c_str(), stdout);
    std::fputs(par.report.c_str(), stdout);
    return 1;
  }
  std::puts("stats reports byte-identical across job counts");
  return 0;
}

// --- machine-readable perf report (bench_throughput --perf-report) ---------

/// Best-of-`repeat` throughput of `fn` in items per second. Best-of (not
/// mean) because the interesting number is the rate with the least noise.
template <typename Fn>
double best_rate(std::uint64_t items, std::uint64_t repeat, Fn&& fn) {
  double best = 0;
  for (std::uint64_t r = 0; r < repeat; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (secs > 0) best = std::max(best, static_cast<double>(items) / secs);
  }
  return best;
}

std::vector<trace::TraceRecord> drain_reader(trace::GleipnirReader& reader) {
  std::vector<trace::TraceRecord> records;
  while (auto ev = reader.next()) {
    if (ev->kind == trace::TraceEvent::Kind::Record) {
      records.push_back(std::move(ev->record));
    }
  }
  return records;
}

std::vector<trace::TraceRecord> read_via_source(trace::TraceContext& ctx,
                                                const std::string& path,
                                                trace::IngestMode mode,
                                                std::size_t reserve = 0) {
  trace::GleipnirReader reader(ctx,
                               trace::open_trace_byte_source(path, mode));
  std::vector<trace::TraceRecord> records;
  records.reserve(reserve + 4096);
  while (reader.next_batch(records, 4096) != 0) {
  }
  return records;
}

/// Record-counting sink: decode throughput without sink-side work.
class CountingSink final : public trace::TraceSink {
 public:
  void on_record(const trace::TraceRecord&) override { ++n_; }
  void push_batch(std::span<const trace::TraceRecord> batch) override {
    n_ += batch.size();
  }
  void on_end() override {}
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

 private:
  std::uint64_t n_ = 0;
};

/// TDTB v3 container rows: per-codec compressed size and sequential vs
/// parallel (--jobs 4) decode rate, with the jobs-4 ≡ jobs-1 ≡ source
/// identity check re-encoded to a plain v2 blob (cheap byte compare).
/// Returns false when any identity check fails.
bool container_rows(obs::Registry& registry, std::uint64_t repeat) {
  obs::PhaseTimer phase(&registry, "bench-container");
  constexpr std::uint64_t kRecords = 2'000'000;
  constexpr int kJobs = 4;
  trace::TraceContext ctx;
  const Symbol fn = ctx.intern("synth");
  std::vector<trace::TraceRecord> records;
  records.reserve(kRecords);
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    records.push_back(synth_record(i, fn));
  }
  const auto plain = trace::write_binary_trace(ctx, records);
  registry.counter("container.records").add(kRecords);
  registry.gauge("container.jobs").set(kJobs);
  registry.gauge("container.plain_bytes")
      .set(static_cast<double>(plain.size()));

  bool all_identical = true;
  double best_par = 0;
  for (const trace::Codec codec :
       {trace::Codec::None, trace::Codec::Zstd, trace::Codec::Lz4}) {
    const std::string name(trace::codec_name(codec));
    const std::string key = "container." + name;
    registry.gauge(key + ".codec_id")
        .set(static_cast<double>(static_cast<std::uint8_t>(codec)));
    if (!trace::codec_available(codec)) {
      registry.gauge(key + ".available").set(0);
      std::printf("container %-4s: codec unavailable; row skipped\n",
                  name.c_str());
      continue;
    }
    registry.gauge(key + ".available").set(1);
    trace::BinaryWriterOptions options;
    options.version = trace::kTdtbVersionFramed;
    options.codec = codec;
    std::vector<char> blob;
    const double write_rate = best_rate(kRecords, repeat, [&] {
      blob = trace::write_binary_trace(ctx, records, 0, options);
      benchmark::DoNotOptimize(blob.data());
    });
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("tdt_bench_container_" + name + ".tdtb"))
            .string();
    {
      std::ofstream out(path, std::ios::binary);
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    const auto info = trace::probe_tdtb({blob.data(), blob.size()});
    const double frames =
        info && info->has_index ? static_cast<double>(info->frames.size()) : 0;

    const auto decode_rate = [&](int jobs) {
      return best_rate(kRecords, repeat, [&] {
        trace::TraceContext c;
        CountingSink sink;
        trace::StreamOptions so;
        so.jobs = jobs;
        benchmark::DoNotOptimize(
            trace::stream_trace_file(c, path, sink, so).records);
      });
    };
    const double seq_rate = decode_rate(1);
    const double par_rate = decode_rate(kJobs);

    bool identical;
    {
      trace::TraceContext c1;
      trace::TraceContext c4;
      trace::VectorSink s1;
      trace::VectorSink s4;
      trace::StreamOptions so1;
      so1.jobs = 1;
      trace::StreamOptions so4;
      so4.jobs = kJobs;
      (void)trace::stream_trace_file(c1, path, s1, so1);
      (void)trace::stream_trace_file(c4, path, s4, so4);
      const auto b1 = trace::write_binary_trace(c1, s1.records());
      const auto b4 = trace::write_binary_trace(c4, s4.records());
      identical = b1 == b4 && b1 == plain;
    }
    std::filesystem::remove(path);
    all_identical = all_identical && identical;
    best_par = std::max(best_par, par_rate);

    const double ratio =
        blob.empty() ? 0
                     : static_cast<double>(plain.size()) /
                           static_cast<double>(blob.size());
    std::printf("container %-4s: %8.2f MB (%5.2fx), write %12.0f rec/s, "
                "decode %12.0f rec/s seq, %12.0f rec/s --jobs %d (%.2fx)%s\n",
                name.c_str(), static_cast<double>(blob.size()) / 1e6, ratio,
                write_rate, seq_rate, par_rate, kJobs,
                seq_rate > 0 ? par_rate / seq_rate : 0,
                identical ? "" : "  OUTPUT MISMATCH");
    registry.gauge(key + ".bytes").set(static_cast<double>(blob.size()));
    registry.gauge(key + ".ratio").set(ratio);
    registry.gauge(key + ".frames").set(frames);
    registry.gauge(key + ".write_records_per_s").set(write_rate);
    registry.gauge(key + ".seq_records_per_s").set(seq_rate);
    registry.gauge(key + ".par_records_per_s").set(par_rate);
    registry.gauge(key + ".par_speedup")
        .set(seq_rate > 0 ? par_rate / seq_rate : 0);
    registry.gauge(key + ".identical").set(identical ? 1 : 0);
  }
  registry.gauge("container.best_par_records_per_s").set(best_par);
  return all_identical;
}

/// The daemon-side sweep op, registered exactly as tdtd registers it:
/// the dinerosim tool body under the run_tool_body exit contract.
service::OpHandler sweep_op() {
  service::OpHandler handler;
  handler.op = std::string(service::kOpSweep);
  handler.input_flags = {"trace"};
  handler.bool_flags = {"per-set", "per-var", "conflicts", "advise",
                        "modify-read-write", "progress"};
  handler.run = [](const service::ToolIO& io,
                   const std::vector<std::string>& args) {
    std::vector<std::string> storage;
    storage.reserve(args.size() + 1);
    storage.emplace_back("dinerosim");
    storage.insert(storage.end(), args.begin(), args.end());
    std::vector<char*> argv;
    argv.reserve(storage.size());
    for (std::string& s : storage) argv.push_back(s.data());
    return tools::run_tool_body("dinerosim", io, [&] {
      return tools::dinerosim_run(io, static_cast<int>(argv.size()),
                                  argv.data());
    });
  };
  return handler;
}

/// tdtd service rows: an in-process daemon on a temp socket serving the
/// real dinerosim sweep body over tdt-rpc/1. Times a 20-point sweep
/// cold (distinct memo keys, each request genuinely simulates) and
/// memo-warm (identical repeats), plus the sustained warm request rate
/// on one connection. The warm replies must carry the cold run's exact
/// bytes — that identity gates the report like every other row.
bool service_rows(obs::Registry& registry, const std::string& text,
                  std::uint64_t repeat) {
  obs::PhaseTimer phase(&registry, "bench-service");
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string trace_path = (tmp / "tdt_bench_service.trace").string();
  const std::string socket_path = (tmp / "tdt_bench_service.sock").string();
  {
    std::ofstream out(trace_path, std::ios::binary);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }

  service::DaemonConfig config;
  config.socket_path = socket_path;
  config.workers = 2;
  config.queue_capacity = 16;
  config.memo_bytes = 64ull << 20;
  service::Daemon daemon(config);
  daemon.register_op(sweep_op());
  daemon.start();

  // 20 configurations: 5 sizes x 4 associativities.
  std::string sweep;
  for (const char* size : {"4k", "8k", "16k", "32k", "64k"}) {
    for (const int assoc : {1, 2, 4, 8}) {
      if (!sweep.empty()) sweep.push_back(';');
      sweep += "size=";
      sweep += size;
      sweep += ",assoc=" + std::to_string(assoc);
    }
  }
  constexpr int kSweepPoints = 20;
  const std::vector<std::string> base_args = {"--trace", trace_path,
                                              "--sweep", sweep};

  bool all_ok = true;
  bool warm_hit = true;
  bool warm_identical = true;
  double cold_us = 0;
  double warm_us = 0;
  double warm_req_s = 0;
  try {
    service::Session session(socket_path);

    // Cold: each probe varies --max-errors, so it owns a distinct memo
    // key and genuinely runs the sweep. Best-of, like every other row.
    double best_cold = 0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
      std::vector<std::string> args = base_args;
      args.emplace_back("--max-errors");
      args.push_back(std::to_string(1000 + r));
      const auto start = std::chrono::steady_clock::now();
      const service::Reply reply = session.call(service::kOpSweep, args);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      all_ok = all_ok && reply.ok() && reply.exit_code == 0 &&
               !reply.memo_hit;
      if (secs > 0) best_cold = std::max(best_cold, 1.0 / secs);
    }
    cold_us = best_cold > 0 ? 1e6 / best_cold : 0;

    // Warm: the identical request repeated must be answered from the
    // memo with the cold run's exact bytes.
    const service::Reply cold_reply =
        session.call(service::kOpSweep, base_args);
    all_ok = all_ok && cold_reply.ok() && cold_reply.exit_code == 0;
    double best_warm = 0;
    for (std::uint64_t r = 0; r < repeat; ++r) {
      const auto start = std::chrono::steady_clock::now();
      const service::Reply reply =
          session.call(service::kOpSweep, base_args);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      warm_hit = warm_hit && reply.memo_hit;
      warm_identical = warm_identical && reply.out == cold_reply.out &&
                       reply.err == cold_reply.err &&
                       reply.exit_code == cold_reply.exit_code;
      if (secs > 0) best_warm = std::max(best_warm, 1.0 / secs);
    }
    warm_us = best_warm > 0 ? 1e6 / best_warm : 0;

    // Sustained memo-warm request rate over one connection.
    constexpr int kWarmCalls = 200;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kWarmCalls; ++i) {
      const service::Reply reply =
          session.call(service::kOpSweep, base_args);
      all_ok = all_ok && reply.ok();
      warm_hit = warm_hit && reply.memo_hit;
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    warm_req_s = secs > 0 ? kWarmCalls / secs : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "service rows failed: %s\n", e.what());
    all_ok = false;
  }

  daemon.request_shutdown();
  daemon.wait();
  std::filesystem::remove(trace_path);

  const double cold_req_s = cold_us > 0 ? 1e6 / cold_us : 0;
  std::printf("service:   sweep(%dpt) %10.0f us cold (%.1f req/s), "
              "%8.0f us warm, %10.0f req/s memo-warm%s%s\n",
              kSweepPoints, cold_us, cold_req_s, warm_us, warm_req_s,
              warm_hit ? "" : "  MEMO MISS",
              warm_identical ? "" : "  OUTPUT MISMATCH");
  registry.gauge("service.sweep_points").set(kSweepPoints);
  registry.gauge("service.cold_sweep_latency_us").set(cold_us);
  registry.gauge("service.warm_sweep_latency_us").set(warm_us);
  registry.gauge("service.cold_sweep_requests_per_s").set(cold_req_s);
  registry.gauge("service.warm_sweep_requests_per_s").set(warm_req_s);
  registry.gauge("service.memo_warm_hit").set(warm_hit ? 1 : 0);
  registry.gauge("service.warm_identical").set(warm_identical ? 1 : 0);
  return all_ok && warm_hit && warm_identical;
}

int perf_report(int argc, char** argv) {
  FlagParser flags("bench_throughput",
                   "fast-path vs reference perf report (JSON)");
  const auto* out_path =
      flags.add_string("perf-report", "BENCH_PR3.json", "output JSON file");
  const auto* repeat =
      flags.add_uint("repeat", 5, "timing repetitions (best-of)");
  const auto* len = flags.add_uint("len", 16384, "T1 kernel length");
  if (!flags.parse(argc, argv)) return 0;

  obs::Registry registry("bench_throughput");

  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records = tracer::run_program(
      types, ctx, tracer::make_t1_soa(types, static_cast<std::int64_t>(*len)));
  const std::string text = trace::write_trace_string(ctx, records);
  const std::uint64_t n = records.size();
  std::printf("perf report: %llu-element T1 kernel, %llu records, "
              "best of %llu runs\n",
              static_cast<unsigned long long>(*len),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(*repeat));

  // ASCII read: zero-copy in-place tokenizer vs the previous pipeline
  // (istringstream + per-line std::vector field split + throwing parser).
  obs::PhaseTimer read_phase(&registry, "bench-read");
  const double read_fast = best_rate(n, *repeat, [&] {
    trace::TraceContext c;
    benchmark::DoNotOptimize(trace::read_trace_string(c, text).data());
  });
  const double read_slow = best_rate(n, *repeat, [&] {
    trace::TraceContext c;
    std::istringstream in{text};
    trace::GleipnirReader reader(c, in);
    reader.force_slow_parse(true);
    benchmark::DoNotOptimize(drain_reader(reader).data());
  });
  bool read_identical;
  {
    trace::TraceContext fast_ctx;
    trace::TraceContext slow_ctx;
    std::istringstream in{text};
    trace::GleipnirReader slow_reader(slow_ctx, in);
    slow_reader.force_slow_parse(true);
    read_identical =
        trace::write_trace_string(fast_ctx,
                                  trace::read_trace_string(fast_ctx, text)) ==
        trace::write_trace_string(slow_ctx, drain_reader(slow_reader));
  }

  // SIMD vs scalar tier: rate with the scanner forced to the portable
  // loop, plus the byte-identity check (the tier must never change what
  // is parsed, only how fast).
  const simd::Tier bench_tier = simd::active_tier();
  simd::set_active_tier(simd::Tier::Scalar);
  const double read_scalar = best_rate(n, *repeat, [&] {
    trace::TraceContext c;
    benchmark::DoNotOptimize(trace::read_trace_string(c, text).data());
  });
  bool simd_identical;
  {
    trace::TraceContext scalar_ctx;
    const std::string scalar_out = trace::write_trace_string(
        scalar_ctx, trace::read_trace_string(scalar_ctx, text));
    simd::set_active_tier(bench_tier);
    trace::TraceContext simd_ctx;
    simd_identical = trace::write_trace_string(
                         simd_ctx, trace::read_trace_string(simd_ctx, text)) ==
                     scalar_out;
  }

  // File-backed ingest backends (mmap slices / overlapped prefetch),
  // timed end to end through the batched reader.
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "tdt_bench_ingest.trace")
          .string();
  {
    std::ofstream out(trace_path, std::ios::binary);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
  const double read_mmap = best_rate(n, *repeat, [&] {
    trace::TraceContext c;
    benchmark::DoNotOptimize(
        read_via_source(c, trace_path, trace::IngestMode::Mmap, n).data());
  });
  const double read_overlapped = best_rate(n, *repeat, [&] {
    trace::TraceContext c;
    benchmark::DoNotOptimize(
        read_via_source(c, trace_path, trace::IngestMode::Overlapped, n).data());
  });
  bool source_identical;
  {
    trace::TraceContext mem_ctx;
    const std::string mem_out = trace::write_trace_string(
        mem_ctx, trace::read_trace_string(mem_ctx, text));
    trace::TraceContext mmap_ctx;
    trace::TraceContext ov_ctx;
    source_identical =
        trace::write_trace_string(
            mmap_ctx,
            read_via_source(mmap_ctx, trace_path, trace::IngestMode::Mmap)) ==
            mem_out &&
        trace::write_trace_string(
            ov_ctx, read_via_source(ov_ctx, trace_path,
                                    trace::IngestMode::Overlapped)) == mem_out;
  }
  // Transparent .gz text ingest (gzip-magic sniff in the byte-source
  // layer), timed through the same batched reader.
  double read_gzip = 0;
  bool gzip_identical = true;
  const bool have_gzip = trace::gzip_available();
  if (have_gzip) {
    std::string gz;
    (void)trace::gzip_compress(text, gz);
    const std::string gz_path = trace_path + ".gz";
    {
      std::ofstream out(gz_path, std::ios::binary);
      out.write(gz.data(), static_cast<std::streamsize>(gz.size()));
    }
    read_gzip = best_rate(n, *repeat, [&] {
      trace::TraceContext c;
      benchmark::DoNotOptimize(
          read_via_source(c, gz_path, trace::IngestMode::Auto, n).data());
    });
    {
      trace::TraceContext mem_ctx;
      trace::TraceContext gz_ctx;
      gzip_identical =
          trace::write_trace_string(
              gz_ctx,
              read_via_source(gz_ctx, gz_path, trace::IngestMode::Auto)) ==
          trace::write_trace_string(mem_ctx,
                                    trace::read_trace_string(mem_ctx, text));
    }
    std::filesystem::remove(gz_path);
  }
  std::filesystem::remove(trace_path);
  read_phase.stop();

  obs::PhaseTimer xform_phase(&registry, "bench-transform");
  // Transform: plan cache vs the reference slow path, same rule set as
  // BM_Transform. Rates are measured on the rule-matched records (the
  // loop scalars around them cost the same passthrough either way and
  // would only dilute the comparison); the identical-output check below
  // still runs the full trace through both paths.
  const core::RuleSet rules = core::parse_rules(
      "in:\nstruct lSoA { int mX[" + std::to_string(*len) +
      "]; double mY[" + std::to_string(*len) +
      "]; };\nout:\nstruct lAoS { int mX; double mY; }[" +
      std::to_string(*len) + "];\n");
  const Symbol in_sym = ctx.intern("lSoA");
  std::vector<trace::TraceRecord> matched;
  for (const trace::TraceRecord& rec : records) {
    if (rec.var.base == in_sym) matched.push_back(rec);
  }
  const std::uint64_t nm = matched.size();
  core::TransformOptions cached;
  core::TransformOptions uncached;
  uncached.plan_cache = false;
  const double xform_fast = best_rate(nm, *repeat, [&] {
    benchmark::DoNotOptimize(
        core::transform_trace(rules, ctx, matched, cached).data());
  });
  const double xform_slow = best_rate(nm, *repeat, [&] {
    benchmark::DoNotOptimize(
        core::transform_trace(rules, ctx, matched, uncached).data());
  });
  core::TransformStats cached_stats;
  const bool xform_identical =
      trace::write_trace_string(
          ctx, core::transform_trace(rules, ctx, records, cached,
                                     &cached_stats)) ==
      trace::write_trace_string(
          ctx, core::transform_trace(rules, ctx, records, uncached));
  xform_phase.stop();

  // Raw simulation throughput (paper's direct-mapped L1).
  obs::PhaseTimer sim_phase(&registry, "bench-simulate");
  const cache::CacheConfig cfg = cache::paper_direct_mapped();
  const double sim_rate = best_rate(n, *repeat, [&] {
    cache::CacheHierarchy hierarchy(cfg);
    cache::TraceCacheSim sim(hierarchy);
    sim.simulate(records);
    benchmark::DoNotOptimize(hierarchy.l1().stats().misses());
  });
  sim_phase.stop();

  const double read_speedup = read_slow > 0 ? read_fast / read_slow : 0;
  const double xform_speedup = xform_slow > 0 ? xform_fast / xform_slow : 0;
  std::printf("read:      %12.0f rec/s fast, %12.0f rec/s slow  (%.2fx)%s\n",
              read_fast, read_slow, read_speedup,
              read_identical ? "" : "  OUTPUT MISMATCH");
  std::printf("read tier: %s; scalar tier %12.0f rec/s%s\n",
              std::string(simd::tier_name(bench_tier)).c_str(), read_scalar,
              simd_identical ? "" : "  SIMD/SCALAR MISMATCH");
  std::printf("ingest:    %12.0f rec/s mmap, %12.0f rec/s overlapped%s\n",
              read_mmap, read_overlapped,
              source_identical ? "" : "  SOURCE MISMATCH");
  if (have_gzip) {
    std::printf("ingest:    %12.0f rec/s gzip text%s\n", read_gzip,
                gzip_identical ? "" : "  GZIP MISMATCH");
  } else {
    std::puts("ingest:    gzip text row skipped (zlib not built in)");
  }
  std::printf("transform: %12.0f rec/s fast, %12.0f rec/s slow  (%.2fx)%s"
              "  [%llu matched records]\n",
              xform_fast, xform_slow, xform_speedup,
              xform_identical ? "" : "  OUTPUT MISMATCH",
              static_cast<unsigned long long>(nm));
  std::printf("simulate:  %12.0f rec/s\n", sim_rate);

  const bool container_identical = container_rows(registry, *repeat);
  const bool service_ok = service_rows(registry, text, *repeat);

  // Emit through the metrics registry: the report file is a standard
  // tdt-metrics/1 snapshot (docs/OBSERVABILITY.md), same schema the CLI
  // tools write with --metrics-json.
  registry.counter("bench.records").add(n);
  registry.counter("bench.matched_records").add(nm);
  registry.gauge("bench.len").set(static_cast<double>(*len));
  registry.gauge("bench.repeat").set(static_cast<double>(*repeat));
  registry.gauge("read.fast_records_per_s").set(read_fast);
  registry.gauge("read.slow_records_per_s").set(read_slow);
  registry.gauge("read.speedup").set(read_speedup);
  registry.gauge("read.identical_output").set(read_identical ? 1 : 0);
  registry.gauge("read.simd_tier").set(static_cast<double>(bench_tier));
  registry.gauge("read.scalar_records_per_s").set(read_scalar);
  registry.gauge("read.simd_scalar_identical").set(simd_identical ? 1 : 0);
  registry.gauge("read.mmap_records_per_s").set(read_mmap);
  registry.gauge("read.mmap_ingest_mode")
      .set(static_cast<double>(trace::IngestMode::Mmap));
  registry.gauge("read.overlapped_records_per_s").set(read_overlapped);
  registry.gauge("read.overlapped_ingest_mode")
      .set(static_cast<double>(trace::IngestMode::Overlapped));
  registry.gauge("read.source_identical").set(source_identical ? 1 : 0);
  registry.gauge("read.gzip_available").set(have_gzip ? 1 : 0);
  registry.gauge("read.gzip_records_per_s").set(read_gzip);
  registry.gauge("read.gzip_identical").set(gzip_identical ? 1 : 0);
  registry.gauge("transform.cached_records_per_s").set(xform_fast);
  registry.gauge("transform.uncached_records_per_s").set(xform_slow);
  registry.gauge("transform.speedup").set(xform_speedup);
  registry.gauge("transform.identical_output").set(xform_identical ? 1 : 0);
  registry.counter("transform.plan_hits").add(cached_stats.plan_hits);
  registry.counter("transform.plan_misses").add(cached_stats.plan_misses);
  registry.gauge("simulate.records_per_s").set(sim_rate);
  try {
    registry.write_metrics_file(*out_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("wrote %s\n", out_path->c_str());
  return read_identical && xform_identical && simd_identical &&
                 source_identical && gzip_identical && container_identical &&
                 service_ok
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `--jobs` selects the pipeline harness and `--perf-report` the JSON
  // perf report; everything else goes to google-benchmark (which would
  // otherwise reject the flags).
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf-report", 13) == 0) {
      return perf_report(argc, argv);
    }
    if (std::strncmp(argv[i], "--jobs", 6) == 0) {
      return pipeline_harness(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
