// Regenerates Figures 10 and 11: the contiguous array walk on the
// PowerPC 440 cache (32 KiB, 64-way, 32 B lines, round-robin) before and
// after the Listing 11 set-pinning stride rule.
//
// Expected shape: before, lContiguousArray spreads uniformly over sets
// 0..15 (8 lines each); after, every lSetHashingArray access is pinned to
// a single set with the same total miss count (128 lines) and 50% set
// residency (128 lines cycling through 64 round-robin ways).
#include "fig_common.hpp"
#include "core/rule_parser.hpp"
#include "tracer/kernels.hpp"

int main() {
  using namespace tdt;
  constexpr std::int64_t kLen = 1024;
  constexpr std::int64_t kSets = 16;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules =
      core::parse_rules(bench::t3_rules(kLen, kSets));
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t3_contiguous(types, kLen), cache::ppc440(),
      &rules);

  std::printf("cache: %s, LEN=%lld (4 KiB of int)\n\n",
              cache::ppc440().describe().c_str(), (long long)kLen);
  bench::print_figure("Figure 10", "contiguous array over sets 0..15",
                      result.before, {"lContiguousArray", "lI"});
  bench::print_figure("Figure 11", "array striding pinned to one set",
                      result.after,
                      {"lSetHashingArray", "lITEMSPERLINE", "lI"});

  std::uint64_t before_misses = 0, after_misses = 0;
  for (const auto& c : result.before.per_set.at("lContiguousArray")) {
    before_misses += c.misses;
  }
  for (const auto& c : result.after.per_set.at("lSetHashingArray")) {
    after_misses += c.misses;
  }
  std::printf("array misses: before %llu, after %llu (paper: pinning "
              "maintains the same miss count)\n",
              (unsigned long long)before_misses,
              (unsigned long long)after_misses);
  std::printf("footprint: %lld B -> %lld B (the paper's wasted-space "
              "trade-off)\n",
              (long long)(kLen * 4), (long long)(kLen * kSets * 4));
  return 0;
}
