// Ablation: array padding through a stride rule — a transformation class
// the paper's rule machinery enables beyond its three examples. A
// column-order sweep of a flat row-major matrix whose row size is a
// power of two (4 KiB) hammers a handful of sets of the direct-mapped
// cache; padding every row by one cache line via the index formula
//
//   lI + (lI/COLS)*PAD
//
// staggers the columns across all sets and eliminates the conflicts, at
// the cost of PAD ints per row — the same space-for-conflicts trade as
// the paper's T3.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "tracer/interp.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;
using namespace tdt::tracer;

constexpr std::int64_t kRows = 64;
constexpr std::int64_t kCols = 1024;  // 4 KiB rows: the pathological case
constexpr std::int64_t kPad = 8;      // one 32 B line of ints per row

/// for (j) for (i) lMatrix[i*kCols + j] = i;  — column-order sweep.
Program make_column_sweep(layout::TypeTable& types) {
  const auto t_int = types.int_type();
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "lMatrix",
      types.array_of(t_int, static_cast<std::uint64_t>(kRows * kCols))));
  body.push_back(decl_local("lI", t_int));
  body.push_back(decl_local("lJ", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> inner;
  inner.push_back(
      assign(LValue("lMatrix").index(add(mul(rd("lI"), lit(kCols)), rd("lJ"))),
             rd("lI")));
  auto i_loop = count_loop("lI", lit(kRows), block(std::move(inner)));
  std::vector<StmtPtr> outer;
  outer.push_back(std::move(i_loop));
  body.push_back(count_loop("lJ", lit(kCols), block(std::move(outer))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

std::string padding_rule() {
  const std::int64_t total = kRows * kCols;
  const std::int64_t padded = kRows * (kCols + kPad);
  return "in:\nint lMatrix[" + std::to_string(total) +
         "]:lPaddedMatrix;\nout:\nint lPaddedMatrix[" +
         std::to_string(padded) + "(lI+(lI/" + std::to_string(kCols) + ")*" +
         std::to_string(kPad) + ")];\n";
}

}  // namespace

int main() {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(padding_rule());

  const auto result = analysis::run_experiment(
      types, ctx, make_column_sweep(types), cache::paper_direct_mapped(),
      &rules);

  std::printf("column-order sweep of int[%lld][%lld] (row = %lld B) on %s\n",
              (long long)kRows, (long long)kCols, (long long)(kCols * 4),
              cache::paper_direct_mapped().describe().c_str());
  std::printf("padding rule: %lld ints (%lld B) per row\n\n", (long long)kPad,
              (long long)(kPad * 4));

  TextTable table({"layout", "hits", "misses", "miss%", "conflict misses"});
  auto add_row = [&](const char* name,
                     const analysis::SimulationResult& sim) {
    table.add(name, sim.l1.hits(), sim.l1.misses(),
              100.0 * sim.l1.miss_ratio(), sim.l1.conflict);
  };
  add_row("unpadded (4 KiB rows)", result.before);
  add_row("padded (+32 B per row)", result.after);
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nreading: with 4 KiB rows each column walks %lld addresses "
              "4096 B apart — only 8 of 1024 sets absorb all %lld rows; "
              "one line of padding staggers columns across sets. space "
              "cost: %lld -> %lld bytes.\n",
              (long long)kRows, (long long)kRows,
              (long long)(kRows * kCols * 4),
              (long long)(kRows * (kCols + kPad) * 4));
  return 0;
}
