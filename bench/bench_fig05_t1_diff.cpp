// Regenerates Figure 5: side-by-side diff of the original SoA trace and
// the rule-transformed AoS trace at the paper's listing scale (LEN=16).
//
// Expected shape: every structure store is a `~` modified row
// (lSoA.mX[i] -> lAoS[i].mX at a new base address); loop-counter and
// marker lines are byte-identical; nothing is inserted or deleted.
#include <cstdio>

#include "fig_common.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/diff.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

int main() {
  using namespace tdt;
  constexpr std::int64_t kLen = 16;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto original =
      tracer::run_program(types, ctx, tracer::make_t1_soa(types, kLen));
  const core::RuleSet rules = core::parse_rules(bench::t1_rules(kLen));
  core::TransformStats stats;
  const auto transformed =
      core::transform_trace(rules, ctx, original, {}, &stats);

  const auto entries = trace::diff_traces(original, transformed);
  std::puts("=== Figure 5: original (left) vs transformed (right) ===");
  std::fputs(
      trace::render_side_by_side(ctx, original, transformed, entries, 44)
          .c_str(),
      stdout);
  const auto summary = trace::summarize(entries);
  std::printf("\nsame %llu, modified %llu, inserted %llu, deleted %llu\n",
              (unsigned long long)summary.same,
              (unsigned long long)summary.modified,
              (unsigned long long)summary.inserted,
              (unsigned long long)summary.deleted);
  return 0;
}
