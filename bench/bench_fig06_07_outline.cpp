// Regenerates Figures 6 and 7: per-set hits/misses of the nested
// hot/cold kernel (Listing 6) before and after the Listing 8 outlining
// rule, on the 32 KiB direct-mapped cache.
//
// Expected shape: before, a single banded region for lS1; after, two
// regions — lS2 (hot + pointer) and lStorageForRarelyUsed (the cold
// pool) — plus the extra pointer loads changing the per-set uniformity
// exactly as the paper notes for Figure 7.
#include "fig_common.hpp"
#include "core/rule_parser.hpp"
#include "tracer/kernels.hpp"

int main() {
  using namespace tdt;
  constexpr std::int64_t kLen = 1024;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(bench::t2_rules(kLen));
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t2_inline(types, kLen),
      cache::paper_direct_mapped(), &rules);

  std::printf("cache: %s, LEN=%lld\n\n",
              cache::paper_direct_mapped().describe().c_str(),
              (long long)kLen);
  bench::print_figure("Figure 6", "single level nested structure (lS1)",
                      result.before, {"lS1", "lI"});
  bench::print_figure("Figure 7",
                      "structure access through indirection (lS2 + pool)",
                      result.after,
                      {"lS2", "lStorageForRarelyUsed", "lI"});

  std::printf("transform: %llu rewritten, %llu pointer loads inserted\n",
              (unsigned long long)result.transform_stats.rewritten,
              (unsigned long long)result.transform_stats.inserted);
  std::printf("accesses: before %llu, after %llu (+%llu indirection)\n",
              (unsigned long long)result.before.l1.accesses(),
              (unsigned long long)result.after.l1.accesses(),
              (unsigned long long)(result.after.l1.accesses() -
                                   result.before.l1.accesses()));
  return 0;
}
