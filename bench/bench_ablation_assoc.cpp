// Ablation: T1 (SoA vs AoS) across associativity and block size. The
// paper evaluates T1 only on a direct-mapped cache; this sweep shows
// where the layouts converge — higher associativity absorbs the SoA
// banding, larger blocks amortize the AoS padding.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "fig_common.hpp"
#include "tracer/kernels.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;

struct Cell {
  double before = 0;
  double after = 0;
};

Cell run_cell(std::uint32_t assoc, std::uint64_t block) {
  layout::TypeTable types;
  trace::TraceContext ctx;
  constexpr std::int64_t kLen = 1024;
  const core::RuleSet rules = core::parse_rules(bench::t1_rules(kLen));
  cache::CacheConfig cfg;
  cfg.size = 8 * 1024;  // smaller than the 12-16 KiB walk: pressure
  cfg.block_size = block;
  cfg.assoc = assoc;
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t1_soa(types, kLen), cfg, &rules);
  return Cell{result.before.l1.miss_ratio(), result.after.l1.miss_ratio()};
}

}  // namespace

int main() {
  std::puts("=== ablation: T1 miss ratio (SoA -> AoS) over associativity x "
            "block size, 8 KiB cache ===");
  TextTable table(
      {"assoc", "32B soa", "32B aos", "64B soa", "64B aos", "128B soa",
       "128B aos"});
  for (std::uint32_t assoc : {1u, 2u, 4u, 8u, 0u}) {
    std::vector<std::string> row{assoc == 0 ? "full"
                                            : std::to_string(assoc) + "-way"};
    for (std::uint64_t block : {32ull, 64ull, 128ull}) {
      const Cell cell = run_cell(assoc, block);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", cell.before);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.4f", cell.after);
      row.emplace_back(buf);
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nreading: the AoS walk covers 16 KiB (padded elements) vs "
            "SoA's 12 KiB, so under capacity pressure AoS pays more cold "
            "misses; AoS wins when the workload pairs mX/mY per iteration "
            "and conflict (not capacity) misses dominate.");
  return 0;
}
