// Regenerates Figure 8: diff of the nested-structure trace against the
// outlined trace at listing scale (LEN=16), showing the inserted
// indirection loads (the paper's green rows).
//
// Expected shape: hot stores `~` modified to lS2; each cold access gains
// a `+` inserted `L ... lS2[i].mRarelyUsed` row and is `~` rewritten to
// lStorageForRarelyUsed[i].
#include <cstdio>

#include "fig_common.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/diff.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

int main() {
  using namespace tdt;
  constexpr std::int64_t kLen = 16;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto original =
      tracer::run_program(types, ctx, tracer::make_t2_inline(types, kLen));
  const core::RuleSet rules = core::parse_rules(bench::t2_rules(kLen));
  core::TransformStats stats;
  const auto transformed =
      core::transform_trace(rules, ctx, original, {}, &stats);

  const auto entries = trace::diff_traces(original, transformed);
  std::puts("=== Figure 8: nested (left) vs outlined (right) ===");
  std::fputs(
      trace::render_side_by_side(ctx, original, transformed, entries, 40)
          .c_str(),
      stdout);
  const auto summary = trace::summarize(entries);
  std::printf("\nsame %llu, modified %llu, inserted %llu, deleted %llu\n",
              (unsigned long long)summary.same,
              (unsigned long long)summary.modified,
              (unsigned long long)summary.inserted,
              (unsigned long long)summary.deleted);
  return 0;
}
