// Ablation: virtual vs physical indexing (the paper's §VI future-work
// item, implemented as the PageMapper substrate). Two page-sized arrays
// are swept alternately (a[i]; b[i]; ...). Virtually they are adjacent —
// different cache colours, no interference. Physically, a random page
// allocator can land them on the same colour of a direct-mapped,
// physically-indexed cache, and the interleaved sweep then thrashes —
// behaviour that is invisible to the paper's virtual-address simulation.
#include <cstdio>

#include "cache/hierarchy.hpp"
#include "cache/page_map.hpp"
#include "cache/sim.hpp"
#include "tracer/interp.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;
using namespace tdt::tracer;

constexpr std::int64_t kInts = 1024;  // 4 KiB per array = one page
constexpr std::int64_t kSweeps = 4;

/// for (s) for (i) { a[i] += 1; b[i] += 1; }
Program make_ping_pong(layout::TypeTable& types) {
  const auto t_int = types.int_type();
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "a", types.array_of(t_int, static_cast<std::uint64_t>(kInts))));
  body.push_back(decl_local(
      "b", types.array_of(t_int, static_cast<std::uint64_t>(kInts))));
  body.push_back(decl_local("lI", t_int));
  body.push_back(decl_local("lS", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> inner;
  inner.push_back(modify(LValue("a").index(rd("lI")), lit(1)));
  inner.push_back(modify(LValue("b").index(rd("lI")), lit(1)));
  auto i_loop = count_loop("lI", lit(kInts), block(std::move(inner)));
  std::vector<StmtPtr> outer;
  outer.push_back(std::move(i_loop));
  body.push_back(count_loop("lS", lit(kSweeps), block(std::move(outer))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

struct Outcome {
  std::uint64_t misses = 0;
  std::uint64_t conflicts = 0;
};

Outcome misses_under(const std::vector<trace::TraceRecord>& records,
                     cache::PagePolicy policy, std::uint64_t seed) {
  // 32 KiB direct-mapped with 4 KiB pages: 8 page colours.
  cache::CacheConfig cfg = cache::paper_direct_mapped();
  cache::CacheHierarchy hierarchy(cfg);
  cache::PageMapper mapper(policy, 4096, /*frame_count=*/32, seed);
  cache::SimOptions opts;
  opts.page_mapper = &mapper;
  cache::TraceCacheSim sim(hierarchy, opts);
  sim.simulate(records);
  return Outcome{hierarchy.l1().stats().misses(),
                 hierarchy.l1().stats().conflict};
}

}  // namespace

int main() {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records = tracer::run_program(types, ctx, make_ping_pong(types));
  std::printf("interleaved sweep of two 4 KiB arrays x%lld on a 32 KiB "
              "direct-mapped physically-indexed cache (8 page colours, 32 "
              "physical frames)\n\n",
              (long long)kSweeps);

  TextTable table({"page policy", "seed", "misses", "conflict misses"});
  const Outcome ident =
      misses_under(records, cache::PagePolicy::Identity, 0);
  table.add("identity (= virtual)", "-", ident.misses, ident.conflicts);
  const Outcome ft =
      misses_under(records, cache::PagePolicy::FirstTouch, 0);
  table.add("first-touch", "-", ft.misses, ft.conflicts);
  std::uint64_t worst = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Outcome r = misses_under(records, cache::PagePolicy::Random, seed);
    table.add("random", seed, r.misses, r.conflicts);
    worst = std::max(worst, r.misses);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nreading: adjacent virtual pages never collide (identity / "
              "first-touch); random placement puts a and b on the same "
              "colour with probability 1/8, and the interleaved sweep then "
              "thrashes (worst seed: %llux the identity misses). This is "
              "the shared-cache effect the paper's virtual-only traces "
              "cannot capture (§VI).\n",
              (unsigned long long)(worst / std::max<std::uint64_t>(ident.misses, 1)));
  return 0;
}
