// Ablation: why the PPC440's round-robin policy matters for the paper's
// set-pinning transformation (T3). Runs the pinned trace against all four
// replacement policies at several re-walk counts and prints the miss
// counts. Round-robin and FIFO sustain the paper's "50% residency"
// arithmetic; LRU thrashes completely on the cyclic re-walk (128 lines
// through 64 ways); random lands in between.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "fig_common.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;

/// Walks the pinned trace `walks` times through a PPC440-geometry cache
/// with the given policy; returns array misses.
std::uint64_t misses_with(const std::vector<trace::TraceRecord>& records,
                          cache::ReplacementPolicy policy, int walks) {
  cache::CacheConfig cfg = cache::ppc440();
  cfg.replacement = policy;
  cache::CacheHierarchy hierarchy(cfg);
  cache::TraceCacheSim sim(hierarchy);
  for (int w = 0; w < walks; ++w) {
    for (const trace::TraceRecord& r : records) sim.on_record(r);
  }
  sim.on_end();
  return hierarchy.l1().stats().misses();
}

}  // namespace

int main() {
  constexpr std::int64_t kLen = 1024;
  constexpr std::int64_t kSets = 16;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto original = tracer::run_program(
      types, ctx, tracer::make_t3_contiguous(types, kLen));
  const core::RuleSet rules =
      core::parse_rules(bench::t3_rules(kLen, kSets));
  const auto pinned = core::transform_trace(rules, ctx, original);

  std::puts("=== ablation: replacement policy x re-walk count, pinned T3 "
            "trace on PPC440 geometry (L1 misses) ===");
  TextTable table({"policy", "1 walk", "2 walks", "4 walks", "8 walks"});
  for (auto policy :
       {cache::ReplacementPolicy::RoundRobin, cache::ReplacementPolicy::Fifo,
        cache::ReplacementPolicy::Lru, cache::ReplacementPolicy::Random}) {
    table.add(std::string(cache::to_string(policy)),
              misses_with(pinned, policy, 1), misses_with(pinned, policy, 2),
              misses_with(pinned, policy, 4), misses_with(pinned, policy, 8));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nreading: 128 lines cycling through one 64-way set defeat "
            "every deterministic policy identically (the line needed next "
            "is always the one just evicted); only random retains some "
            "residents across walks. The pinning win is therefore "
            "ISOLATION — the other 15 sets never see this array — not a "
            "better hit rate on the pinned array itself, matching the "
            "paper's 'reduce cache trashing ... maintaining the same "
            "amount of cache misses'.");
  return 0;
}
