// Shared helpers for the figure-reproduction benches: canonical rule
// texts for the paper's three transformations (Listings 5, 8, 11) at a
// given LEN, and printing utilities for the per-set series the figures
// plot. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured notes.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"

namespace tdt::bench {

/// Listing 5: SoA -> AoS.
inline std::string t1_rules(std::int64_t len) {
  const std::string n = std::to_string(len);
  return "in:\nstruct lSoA {\n  int mX[" + n + "];\n  double mY[" + n +
         "];\n};\nout:\nstruct lAoS {\n  int mX;\n  double mY;\n}[" + n +
         "];\n";
}

/// Listing 8: nested -> outlined (pool types matching the in elements;
/// the paper's listing swaps them — see EXPERIMENTS.md, T2 note).
inline std::string t2_rules(std::int64_t len) {
  const std::string n = std::to_string(len);
  return "in:\nstruct mRarelyUsed {\n  double mY;\n  int mZ;\n};\n"
         "struct lS1 {\n  int mFrequentlyUsed;\n  struct mRarelyUsed;\n}[" +
         n +
         "];\nout:\nstruct lStorageForRarelyUsed {\n  double mY;\n  int "
         "mZ;\n}[" +
         n +
         "];\nstruct lS2 {\n  int mFrequentlyUsed;\n  + "
         "mRarelyUsed:lStorageForRarelyUsed;\n}[" +
         n + "];\n";
}

/// Listing 11: contiguous -> set-pinning stride, with the injected
/// index-arithmetic loads of Figure 9.
inline std::string t3_rules(std::int64_t len, std::int64_t sets) {
  return "in:\nint lContiguousArray[" + std::to_string(len) +
         "]:lSetHashingArray;\nout:\nint lSetHashingArray[" +
         std::to_string(len * sets) +
         "((lI/8)*(16*8)+(lI%8))];\ninject:\nL lITEMSPERLINE 4;\nL "
         "lITEMSPERLINE 4;\nL lITEMSPERLINE 4;\n";
}

/// Prints one figure's data: the per-set hit/miss series of `variables`.
inline void print_figure(const char* figure_id, const char* caption,
                         const analysis::SimulationResult& sim,
                         const std::vector<std::string>& variables) {
  std::printf("=== %s: %s ===\n", figure_id, caption);
  std::string header = "set";
  for (const std::string& v : variables) {
    header += "," + v + ":hits," + v + ":misses";
  }
  std::printf("%s\n", header.c_str());
  for (std::uint64_t s = 0; s < sim.num_sets; ++s) {
    bool any = false;
    std::string row = std::to_string(s);
    for (const std::string& v : variables) {
      const auto it = sim.per_set.find(v);
      const std::uint64_t hits = it == sim.per_set.end() ? 0 : it->second[s].hits;
      const std::uint64_t misses =
          it == sim.per_set.end() ? 0 : it->second[s].misses;
      any = any || hits != 0 || misses != 0;
      row += "," + std::to_string(hits) + "," + std::to_string(misses);
    }
    if (any) std::printf("%s\n", row.c_str());
  }
  std::printf("\n");
}

}  // namespace tdt::bench
