// Ablation: sequential prefetching vs data-structure layout. Prefetching
// and layout transformation attack the same symptom (cold/streaming
// misses) by different means; this table shows where each wins. The
// sequential T1 walks prefetch almost perfectly; the shuffled linked
// list — the layout problem the paper's future-work targets — defeats a
// next-block prefetcher entirely, so only a layout change can help it.
#include <cstdio>

#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;

std::uint64_t misses_with(const std::vector<trace::TraceRecord>& records,
                          cache::PrefetchPolicy policy) {
  cache::CacheConfig cfg = cache::paper_direct_mapped();
  cfg.prefetch = policy;
  cache::CacheHierarchy hierarchy(cfg);
  cache::TraceCacheSim sim(hierarchy);
  sim.simulate(records);
  return hierarchy.l1().stats().misses();
}

}  // namespace

int main() {
  struct Workload {
    const char* name;
    std::vector<trace::TraceRecord> records;
  };
  std::vector<Workload> workloads;
  {
    layout::TypeTable t;
    trace::TraceContext ctx;
    workloads.push_back(
        {"t1 SoA walk", tracer::run_program(t, ctx, tracer::make_t1_soa(t, 1024))});
  }
  {
    layout::TypeTable t;
    trace::TraceContext ctx;
    workloads.push_back(
        {"t1 AoS walk", tracer::run_program(t, ctx, tracer::make_t1_aos(t, 1024))});
  }
  {
    layout::TypeTable t;
    trace::TraceContext ctx;
    workloads.push_back({"list sequential",
                         tracer::run_program(
                             t, ctx, tracer::make_linked_list(t, 2048, false))});
  }
  {
    layout::TypeTable t;
    trace::TraceContext ctx;
    workloads.push_back({"list shuffled",
                         tracer::run_program(
                             t, ctx, tracer::make_linked_list(t, 2048, true))});
  }

  std::puts("=== ablation: prefetch policy x workload (L1 misses, 32 KiB "
            "direct-mapped) ===");
  TextTable table({"workload", "none", "miss", "tagged", "always"});
  for (const Workload& w : workloads) {
    table.add(w.name, misses_with(w.records, cache::PrefetchPolicy::None),
              misses_with(w.records, cache::PrefetchPolicy::Miss),
              misses_with(w.records, cache::PrefetchPolicy::Tagged),
              misses_with(w.records, cache::PrefetchPolicy::Always));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nreading: tagged prefetch removes nearly all misses of the "
            "sequential walks (layout-independent), but pointer chasing "
            "over a shuffled list keeps half its misses (the next block is "
            "rarely the next node) — there a layout transformation "
            "(re-pooling the nodes in traversal order) is the remaining "
            "lever.");
  return 0;
}
