// Parallel parameter sweep: simulates one immutable trace against many
// cache configurations concurrently (one simulator per thread — the
// simulators mutate only their own state, the trace is shared read-only).
// Prints the sweep table and the threading speedup.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;
using Clock = std::chrono::steady_clock;

struct SweepPoint {
  cache::CacheConfig config;
  std::uint64_t misses = 0;
  double miss_ratio = 0;
};

void simulate_point(const std::vector<trace::TraceRecord>& records,
                    SweepPoint& point) {
  cache::CacheHierarchy hierarchy(point.config);
  cache::TraceCacheSim sim(hierarchy);
  sim.simulate(records);
  point.misses = hierarchy.l1().stats().misses();
  point.miss_ratio = hierarchy.l1().stats().miss_ratio();
}

double run_sweep(const std::vector<trace::TraceRecord>& records,
                 std::vector<SweepPoint>& points, unsigned threads) {
  const auto start = Clock::now();
  if (threads <= 1) {
    for (SweepPoint& p : points) simulate_point(records, p);
  } else {
    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= points.size()) return;
          simulate_point(records, points[i]);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records = tracer::run_program(
      types, ctx, tracer::make_matmul(types, 48, false));
  std::printf("trace: %zu records (matmul ijk, N=48)\n\n", records.size());

  std::vector<SweepPoint> points;
  for (std::uint64_t size : {4096ull, 8192ull, 16384ull, 32768ull, 65536ull}) {
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
      for (std::uint64_t block : {32ull, 64ull}) {
        cache::CacheConfig cfg;
        cfg.size = size;
        cfg.assoc = assoc;
        cfg.block_size = block;
        points.push_back(SweepPoint{cfg, 0, 0});
      }
    }
  }

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<SweepPoint> serial_points = points;
  const double serial_s = run_sweep(records, serial_points, 1);
  const double parallel_s = run_sweep(records, points, hw);

  std::puts("=== sweep results (L1 miss ratio) ===");
  TextTable table({"size", "assoc", "block", "misses", "miss ratio"});
  for (const SweepPoint& p : points) {
    table.add(tdt::format_bytes(p.config.size), p.config.assoc,
              p.config.block_size, p.misses, p.miss_ratio);
  }
  std::fputs(table.render().c_str(), stdout);

  // Parallel and serial runs must agree exactly (determinism check).
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].misses != serial_points[i].misses) {
      std::puts("ERROR: parallel sweep diverged from serial run!");
      return 1;
    }
  }
  std::printf("\n%zu configurations; serial %.3fs, %u threads %.3fs "
              "(speedup %.2fx, results identical)\n",
              points.size(), serial_s, hw, parallel_s,
              serial_s / parallel_s);
  return 0;
}
