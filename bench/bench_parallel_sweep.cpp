// Parallel parameter sweep over one trace of the paper's matmul kernel.
// Compares three ways of covering the same 40-point configuration grid:
//
//   multi-pass : one full pass over the trace per configuration
//   one-pass   : all configurations fed from a single pass, inline
//   pipelined  : the same single pass fanned out over worker threads
//                (trace::ParallelFanOut + cache::ParallelSweep)
//
// All three must produce identical per-point miss counts; the harness
// exits nonzero if they diverge. Prints the sweep table, the speedups,
// and the pipeline's backpressure/starvation counters.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cache/sweep.hpp"
#include "trace/parallel.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;
using Clock = std::chrono::steady_clock;

std::vector<cache::SweepPoint> make_grid() {
  std::vector<cache::SweepPoint> points;
  for (std::uint64_t size : {4096ull, 8192ull, 16384ull, 32768ull, 65536ull}) {
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
      for (std::uint64_t block : {32ull, 64ull}) {
        cache::CacheConfig cfg;
        cfg.size = size;
        cfg.assoc = assoc;
        cfg.block_size = block;
        points.push_back(cache::SweepPoint{{cfg}});
      }
    }
  }
  return points;
}

std::vector<std::uint64_t> misses_of(cache::ParallelSweep& sweep) {
  std::vector<std::uint64_t> misses;
  misses.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    misses.push_back(sweep.hierarchy(i).l1().stats().misses());
  }
  return misses;
}

double one_pass_run(cache::ParallelSweep& sweep,
                    const std::vector<trace::TraceRecord>& records,
                    std::size_t jobs, trace::PipelineCounters* counters) {
  const auto start = Clock::now();
  trace::ParallelOptions options;
  options.jobs = jobs;
  trace::ParallelFanOut fanout(sweep.sinks(), options);
  fanout.push_batch(records);
  fanout.on_end();
  if (counters != nullptr) *counters = fanout.counters();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto records = tracer::run_program(
      types, ctx, tracer::make_matmul(types, 48, false));
  std::printf("trace: %zu records (matmul ijk, N=48)\n\n", records.size());

  // Multi-pass reference: one full trace pass per configuration.
  cache::ParallelSweep multi_pass(make_grid());
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < multi_pass.size(); ++i) {
    multi_pass.sim(i).simulate(records);
  }
  const double multi_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // One pass, inline (the sequential reference mode of the pipeline).
  cache::ParallelSweep one_pass(make_grid());
  const double inline_s = one_pass_run(one_pass, records, 0, nullptr);

  // One pass, pipelined over all hardware threads.
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  cache::ParallelSweep pipelined(make_grid());
  trace::PipelineCounters counters;
  const double parallel_s = one_pass_run(pipelined, records, hw, &counters);

  std::puts("=== sweep results (L1 misses) ===");
  TextTable table({"size", "assoc", "block", "misses", "miss ratio"});
  for (std::size_t i = 0; i < pipelined.size(); ++i) {
    const cache::CacheConfig& cfg = pipelined.point(i).levels.front();
    const cache::LevelStats& s = pipelined.hierarchy(i).l1().stats();
    table.add(format_bytes(cfg.size), cfg.assoc, cfg.block_size, s.misses(),
              s.miss_ratio());
  }
  std::fputs(table.render().c_str(), stdout);

  const auto reference = misses_of(multi_pass);
  if (misses_of(one_pass) != reference ||
      misses_of(pipelined) != reference) {
    std::puts("ERROR: one-pass sweep diverged from the multi-pass run!");
    return 1;
  }

  std::printf("\n%zu configurations; multi-pass %.3fs, one-pass inline "
              "%.3fs, one-pass %u-thread %.3fs (speedup %.2fx vs "
              "multi-pass, results identical)\n",
              pipelined.size(), multi_s, inline_s, hw, parallel_s,
              multi_s / parallel_s);
  std::fputs(counters.summary().c_str(), stdout);
  return 0;
}
