// Regenerates Figures 3 and 4: per-set hits/misses of the SoA kernel
// (Listing 4) before and after the Listing 5 SoA->AoS trace
// transformation, on the paper's 32 KiB direct-mapped 32 B-block cache.
//
// Expected shape (paper vs ours): before, lSoA's mX and mY accesses form
// two disjoint banded set ranges; after, lAoS covers one contiguous range
// with both fields in every touched set. The loop scalar lI concentrates
// its traffic in one set in both runs.
#include "fig_common.hpp"
#include "core/rule_parser.hpp"
#include "tracer/kernels.hpp"

int main() {
  using namespace tdt;
  constexpr std::int64_t kLen = 1024;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(bench::t1_rules(kLen));
  const auto result = analysis::run_experiment(
      types, ctx, tracer::make_t1_soa(types, kLen),
      cache::paper_direct_mapped(), &rules);

  std::printf("cache: %s, LEN=%lld\n\n",
              cache::paper_direct_mapped().describe().c_str(),
              (long long)kLen);
  bench::print_figure("Figure 3", "Structure of Arrays (lSoA + lI)",
                      result.before, {"lSoA", "lI"});
  bench::print_figure("Figure 4", "transformed to Array of Structures",
                      result.after, {"lAoS", "lI"});

  std::printf("transform: %llu rewritten, %llu inserted; diff: %llu "
              "modified / %llu same\n",
              (unsigned long long)result.transform_stats.rewritten,
              (unsigned long long)result.transform_stats.inserted,
              (unsigned long long)result.diff.modified,
              (unsigned long long)result.diff.same);
  std::printf("L1 miss ratio: before %.4f, after %.4f\n",
              result.before.l1.miss_ratio(), result.after.l1.miss_ratio());
  return 0;
}
