// Multicore extension study: false sharing quantified and fixed by a
// trace transformation. Two/four cores increment adjacent per-thread
// counters packed into one cache line; the MESI simulation counts the
// invalidation ping-pong; a stride rule pads the counters onto separate
// lines and the traffic disappears. (Beyond the paper: its traces carry
// thread ids but its evaluation is single-core; this is where the rule
// machinery naturally extends.)
#include <cstdio>

#include "cache/multicore.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "tracer/interp.hpp"
#include "util/table.hpp"

namespace {

using namespace tdt;
using namespace tdt::tracer;

constexpr std::int64_t kIterations = 2048;

Program make_worker(layout::TypeTable& types, std::int64_t slot) {
  Program prog;
  prog.globals.push_back({"counters", types.array_of(types.int_type(), 16)});
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("lI", types.int_type()));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(modify(LValue("counters").index(lit(slot)), lit(1)));
  body.push_back(count_loop("lI", lit(kIterations), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

std::vector<trace::TraceRecord> make_trace(trace::TraceContext& ctx,
                                           std::uint32_t threads) {
  InterpOptions opts;
  opts.emit_zzq_marker = false;
  std::vector<std::vector<trace::TraceRecord>> per_thread;
  for (std::uint32_t t = 0; t < threads; ++t) {
    layout::TypeTable types;
    // Distinct per-thread stacks (1 MiB apart); shared globals.
    opts.address_space.stack_base = 0x7ff000000ULL - t * 0x100000ULL;
    per_thread.push_back(
        run_program(types, ctx, make_worker(types, t), opts));
  }
  return trace::interleave_threads(std::move(per_thread));
}

struct Row {
  std::uint64_t invalidations = 0;
  std::uint64_t coherence_misses = 0;
  std::uint64_t false_sharing = 0;
};

Row run(const trace::TraceContext& ctx,
        const std::vector<trace::TraceRecord>& records,
        std::uint32_t cores) {
  cache::CacheConfig cfg;
  cfg.size = 32768;
  cfg.block_size = 32;
  cfg.assoc = 8;
  cache::MesiSystem sys(cfg, cores);
  cache::MultiCoreSim sim(sys, ctx);
  sim.simulate(records);
  Row row;
  row.invalidations = sys.total_invalidations();
  row.false_sharing = sim.false_sharing_invalidations();
  for (std::uint32_t c = 0; c < cores; ++c) {
    row.coherence_misses += sys.core_stats(c).coherence_misses;
  }
  return row;
}

}  // namespace

int main() {
  const core::RuleSet rules = core::parse_rules(R"(
in:
int counters[16]:spreadCounters;
out:
int spreadCounters[128(lI*8)];
)");

  std::printf("per-thread counters packed in one 32 B line, %lld increments "
              "per thread; fix: stride rule spreading counters 32 B apart\n\n",
              (long long)kIterations);

  TextTable table({"cores", "layout", "invalidations", "coherence misses",
                   "false sharing"});
  for (std::uint32_t cores : {2u, 4u}) {
    trace::TraceContext ctx;
    const auto packed = make_trace(ctx, cores);
    const Row before = run(ctx, packed, cores);
    const auto spread = core::transform_trace(rules, ctx, packed);
    const Row after = run(ctx, spread, cores);
    table.add(cores, "packed", before.invalidations, before.coherence_misses,
              before.false_sharing);
    table.add(cores, "spread", after.invalidations, after.coherence_misses,
              after.false_sharing);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nreading: packed counters bounce one line between cores on "
            "every increment; after the stride transformation each core "
            "owns its line in M state and the coherence traffic drops to "
            "zero — the layout change needs no source edit, only a rule.");
  return 0;
}
