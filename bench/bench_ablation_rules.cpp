// Microbenchmark ablation (google-benchmark): cost of the rule-matching
// fast path. The transformer looks up each record's variable name in a
// hash index; this measures how throughput scales with the number of
// loaded rules (it should stay flat) and with the fraction of records
// that actually match (rewriting costs more than passing through).
#include <benchmark/benchmark.h>

#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/reader.hpp"

namespace {

using namespace tdt;

/// Builds a rule set with `n` independent struct rules (var0..var{n-1}).
core::RuleSet make_rules(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    text += "in:\nstruct var" + id + " { int a[8]; double b[8]; };\n";
    text += "out:\nstruct out" + id + " { int a; double b; }[8];\n";
  }
  return core::parse_rules(text);
}

/// Trace with `match_pct` percent of records matching rule var0.
std::vector<trace::TraceRecord> make_trace(trace::TraceContext& ctx,
                                           int match_pct) {
  std::string text;
  for (int i = 0; i < 4096; ++i) {
    if (i % 100 < match_pct) {
      text += "S 7ff000400 4 main LS 0 1 var0.a[" + std::to_string(i % 8) +
              "]\n";
    } else {
      text += "L 7ff000100 4 main LV 0 1 unrelated\n";
    }
  }
  return trace::read_trace_string(ctx, text);
}

void BM_RuleCountScaling(benchmark::State& state) {
  trace::TraceContext ctx;
  const core::RuleSet rules = make_rules(static_cast<int>(state.range(0)));
  const auto records = make_trace(ctx, 50);
  for (auto _ : state) {
    const auto out = core::transform_trace(rules, ctx, records);
    benchmark::DoNotOptimize(out.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_RuleCountScaling)->Arg(1)->Arg(8)->Arg(64);

void BM_MatchFraction(benchmark::State& state) {
  trace::TraceContext ctx;
  const core::RuleSet rules = make_rules(1);
  const auto records = make_trace(ctx, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto out = core::transform_trace(rules, ctx, records);
    benchmark::DoNotOptimize(out.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_MatchFraction)->Arg(0)->Arg(10)->Arg(50)->Arg(100);

void BM_IndirectionInsertion(benchmark::State& state) {
  // T2-style rule: every matching record costs an extra inserted load.
  trace::TraceContext ctx;
  const core::RuleSet rules = core::parse_rules(R"(
in:
struct cold { double y; int z; };
struct var0 { int hot; struct cold; }[8];
out:
struct pool { double y; int z; }[8];
struct var0out { int hot; + cold:pool; }[8];
)");
  std::string text;
  for (int i = 0; i < 4096; ++i) {
    text += "S 7ff000408 8 main LS 0 1 var0[" + std::to_string(i % 8) +
            "].cold.y\n";
  }
  const auto records = trace::read_trace_string(ctx, text);
  for (auto _ : state) {
    const auto out = core::transform_trace(rules, ctx, records);
    benchmark::DoNotOptimize(out.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_IndirectionInsertion);

}  // namespace

BENCHMARK_MAIN();
