// Regenerates Figure 9: diff of the contiguous-array trace against the
// stride-remapped trace at listing scale, showing the injected
// ITEMSPERLINE index-arithmetic loads.
//
// Expected shape: each `S lContiguousArray[i]` becomes `+` injected
// lITEMSPERLINE loads followed by a `~` modified
// `S lSetHashingArray[f(i)]` at a remapped address; everything else is
// unchanged.
#include <cstdio>

#include "fig_common.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/diff.hpp"
#include "tracer/interp.hpp"
#include "tracer/kernels.hpp"

int main() {
  using namespace tdt;
  constexpr std::int64_t kLen = 16;
  constexpr std::int64_t kSets = 16;

  layout::TypeTable types;
  trace::TraceContext ctx;
  const auto original = tracer::run_program(
      types, ctx, tracer::make_t3_contiguous(types, kLen));
  const core::RuleSet rules =
      core::parse_rules(bench::t3_rules(kLen, kSets));
  core::TransformStats stats;
  const auto transformed =
      core::transform_trace(rules, ctx, original, {}, &stats);

  const auto entries = trace::diff_traces(original, transformed);
  std::puts("=== Figure 9: contiguous (left) vs strided (right) ===");
  std::fputs(
      trace::render_side_by_side(ctx, original, transformed, entries, 48)
          .c_str(),
      stdout);
  const auto summary = trace::summarize(entries);
  std::printf("\nsame %llu, modified %llu, inserted %llu, deleted %llu\n",
              (unsigned long long)summary.same,
              (unsigned long long)summary.modified,
              (unsigned long long)summary.inserted,
              (unsigned long long)summary.deleted);
  return 0;
}
